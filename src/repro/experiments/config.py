"""Experiment configuration: scale presets and the Table 4 QC grid.

Experiments run at one of three scales:

* ``full``  — the paper's 30-minute trace (minutes of wall-clock per run);
* ``standard`` — a 5-minute slice with identical rates (the default for the
  benchmark harness; tens of seconds per policy);
* ``smoke`` — a 1-minute slice for CI-grade checks.

Scale is selected by the ``REPRO_SCALE`` environment variable (or
explicitly); rates, service times, and contention are identical across
scales by construction, so shapes are preserved.
"""

from __future__ import annotations

import dataclasses
import os
import typing

from repro.parallel import resolve_workers
from repro.qc.generator import QCFactory
from repro.workload.synthetic import (PAPER_DURATION_MS,
                                      StockWorkloadGenerator, WorkloadSpec)
from repro.workload.traces import Trace

#: Named experiment scales: duration of the generated trace, milliseconds.
SCALES: dict[str, float] = {
    "smoke": 60_000.0,
    "standard": 300_000.0,
    "full": PAPER_DURATION_MS,
}

DEFAULT_SCALE = "standard"

#: The four policies compared throughout §5.
POLICY_NAMES = ("FIFO", "UH", "QH", "QUTS")


def chosen_scale(explicit: str | None = None) -> str:
    """Resolve the experiment scale (explicit > $REPRO_SCALE > default)."""
    scale = explicit or os.environ.get("REPRO_SCALE", DEFAULT_SCALE)
    if scale not in SCALES:
        raise ValueError(
            f"unknown scale {scale!r}; choose from {sorted(SCALES)}")
    return scale


@dataclasses.dataclass(frozen=True)
class ExperimentConfig:
    """Workload + seeds for one experiment family."""

    scale: str = DEFAULT_SCALE
    workload_seed: int = 7
    run_seed: int = 1
    #: Worker processes for sweep fan-out (1 = sequential in-process).
    #: Results are bit-identical for any value — see :mod:`repro.parallel`.
    workers: int = 1

    @property
    def duration_ms(self) -> float:
        return SCALES[self.scale]

    def spec(self) -> WorkloadSpec:
        return WorkloadSpec().scaled(self.duration_ms)

    def trace(self) -> Trace:
        """The (deterministic) trace for this configuration."""
        return StockWorkloadGenerator(self.spec(),
                                      self.workload_seed).generate()

    @classmethod
    def from_env(cls, scale: str | None = None,
                 workers: int | None = None) -> "ExperimentConfig":
        """Config from ``$REPRO_SCALE`` / ``$REPRO_WORKERS`` with optional
        explicit overrides (explicit > environment > default)."""
        return cls(scale=chosen_scale(scale),
                   workers=resolve_workers(workers))


def table4_grid() -> list[tuple[float, QCFactory]]:
    """Table 4: the nine QC mixes, ``QODmax% ∈ {0.1, ..., 0.9}``."""
    grid: list[tuple[float, QCFactory]] = []
    for decile in range(1, 10):
        qod_percent = decile / 10.0
        grid.append((qod_percent, QCFactory.spectrum_point(qod_percent)))
    return grid


def table4_rows() -> list[dict[str, typing.Any]]:
    """Table 4 rendered as data rows (for the tables report/bench)."""
    rows = []
    for qod_percent, factory in table4_grid():
        rows.append({
            "QODmax%": qod_percent,
            "QOSmax%": round(1.0 - qod_percent, 1),
            "qodmax": f"${factory.qodmax_range[0]:.0f} ~ "
                      f"${factory.qodmax_range[1]:.0f}",
            "qosmax": f"${factory.qosmax_range[0]:.0f} ~ "
                      f"${factory.qosmax_range[1]:.0f}",
            "rtmax": f"{factory.rtmax_range[0]:.0f}ms ~ "
                     f"{factory.rtmax_range[1]:.0f}ms",
            "uumax": f"{factory.uumax:.0f}",
        })
    return rows
