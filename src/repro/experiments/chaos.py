"""Chaos search: sampled gray-failure schedules vs the invariant oracle.

``repro chaos`` closes the robustness loop.  The fault taxonomy
(:mod:`repro.faults`) can *express* gray failures and the defense layer
(:mod:`repro.cluster.health`, brownout admission) claims to *survive*
them — this harness goes looking for counterexamples:

1. **sample** — each seed index derives a random incident schedule from
   the master seed (named stream ``chaos.schedule-<i>``): slowdowns,
   lossy broadcast windows, WAL corruption, crashes;
2. **run** — every schedule is replayed against every policy under an
   armed :class:`~repro.sim.invariants.InvariantMonitor`, with
   durability and the health layer on.  The oracle is the monitor: a
   run either completes with every conservation law intact, or raises
   :class:`~repro.sim.invariants.InvariantViolation`;
3. **shrink** — a failing schedule is delta-debugged
   (:func:`repro.faults.shrink_incidents`) down to a minimal incident
   list that still reproduces, and the result is written as a JSON repro
   artifact embedding the exact :class:`~repro.faults.FaultPlan`.

Everything is deterministic: the same master seed produces bit-identical
schedules, verdicts, shrunk repros, and artifact bytes.  The
``planted_bug`` mode arms the deliberately-broken re-sync path
(:data:`repro.cluster.portal.PLANTED_RESYNC_BUG`) and *expects* the
harness to catch it — the meta-test that proves the oracle can see and
the shrinker can localise.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import typing

from repro.cluster import HealthConfig, HedgedRouter, run_cluster_simulation
from repro.db.wal import DurabilityConfig
from repro.faults import (DROP_UPDATES, FaultIncident, ShrinkResult,
                          expand_incidents, sample_incidents,
                          shrink_incidents)
from repro.parallel import Task, run_tasks
from repro.qc.generator import QCFactory
from repro.scheduling import make_scheduler
from repro.sim.invariants import InvariantViolation
from repro.sim.rng import StreamRegistry
from repro.workload.traces import Trace

from .config import ExperimentConfig

CHAOS_POLICIES = ("FIFO", "QUTS")
CHAOS_REPLICAS = 3
#: Oracle-run budget for shrinking one failing schedule.
DEFAULT_SHRINK_BUDGET = 48


def _chaos_trace(config: ExperimentConfig,
                 horizon_ms: float | None) -> Trace:
    trace = config.trace()
    if horizon_ms is not None and horizon_ms < trace.duration_ms:
        return trace.slice(horizon_ms, name=f"{trace.name}-chaos")
    return trace


def _verdict(policy: str, trace: Trace, n_replicas: int,
             incidents: typing.Sequence[FaultIncident], sim_seed: int,
             health: HealthConfig, durability: DurabilityConfig,
             ) -> str | None:
    """Run one schedule under the invariant oracle; the violation
    message when a law broke, None on a clean run."""
    try:
        run_cluster_simulation(
            n_replicas, lambda: make_scheduler(policy), trace,
            QCFactory.balanced(), router=HedgedRouter(),
            master_seed=sim_seed,
            fault_plan=expand_incidents(incidents),
            durability=durability, invariants=True, health=health)
    except InvariantViolation as violation:
        # Keep only the law message: the "most recent events" debug tail
        # quotes absolute txn ids from the process-global transaction
        # counter, which depend on how many simulations ran before this
        # one — the artifact must stay byte-identical regardless.
        return str(violation).split("\nmost recent events:", 1)[0]
    return None


def _chaos_cell(policy: str, trace: Trace, n_replicas: int,
                incidents: typing.Sequence[FaultIncident], sim_seed: int,
                health: HealthConfig, durability: DurabilityConfig,
                planted_bug: bool, shrink_budget: int,
                ) -> tuple[str | None, ShrinkResult | None]:
    """One seed × policy cell: verdict, plus the shrink when it failed.

    Module-level and picklable on both ends so :func:`chaos_search` can
    fan the matrix out over a :mod:`repro.parallel` worker pool.  The
    planted-bug flag is set (and restored) *inside* the cell because
    that is the process the oracle actually runs in.
    """
    from repro.cluster import portal as portal_module
    previous_flag = portal_module.PLANTED_RESYNC_BUG
    if planted_bug:
        portal_module.PLANTED_RESYNC_BUG = True
    try:
        violation = _verdict(policy, trace, n_replicas, incidents,
                             sim_seed, health, durability)
        if violation is None:
            return None, None
        result = shrink_incidents(
            incidents,
            lambda candidate: _verdict(
                policy, trace, n_replicas, candidate,
                sim_seed, health, durability) is not None,
            max_checks=shrink_budget)
        return violation, result
    finally:
        portal_module.PLANTED_RESYNC_BUG = previous_flag


def chaos_search(config: ExperimentConfig, *,
                 seeds: int = 8,
                 policies: typing.Sequence[str] = CHAOS_POLICIES,
                 n_replicas: int = CHAOS_REPLICAS,
                 horizon_ms: float | None = None,
                 out_dir: str | pathlib.Path = "chaos_repros",
                 planted_bug: bool = False,
                 shrink_budget: int = DEFAULT_SHRINK_BUDGET,
                 mean_incidents: float = 3.0,
                 workers: int | None = None,
                 log: typing.Callable[[str], None] = lambda line: None,
                 ) -> list[dict[str, typing.Any]]:
    """Run the seed × policy chaos matrix; one verdict row per run.

    Failing runs are shrunk and emitted as JSON repro artifacts under
    ``out_dir`` (``chaos_repro_seed<i>_<policy>.json``).  With
    ``planted_bug`` the deliberately broken heal re-sync is armed inside
    every cell (restored on exit, even on error) and every schedule gets
    one guaranteed drop-window incident so the bug has something to
    break.

    The matrix fans out over ``workers`` processes via
    :mod:`repro.parallel`.  Rows, log lines, and artifact bytes are
    identical for any worker count: schedules are sampled up front from
    order-independent named streams, each cell (oracle run + shrink) is
    self-contained, and the parent writes every artifact in submission
    order.
    """
    if seeds < 1:
        raise ValueError(f"seeds must be >= 1, got {seeds}")
    trace = _chaos_trace(config, horizon_ms)
    horizon = trace.duration_ms
    health = HealthConfig()
    durability = DurabilityConfig(
        checkpoint_interval_ms=max(2_000.0, horizon / 6.0), flush_every=8)
    registry = StreamRegistry(config.run_seed)

    cells: list[tuple[int, str, list[FaultIncident], int]] = []
    for index in range(seeds):
        rng = registry.stream(f"chaos.schedule-{index}")
        incidents = sample_incidents(rng, n_replicas, horizon,
                                     mean_incidents=mean_incidents)
        if planted_bug:
            # Guarantee a drop window so the broken heal must fire.
            # Incidents are exclusive per replica, so evict sampled
            # incidents that would overlap the planted window.
            planted = FaultIncident(
                DROP_UPDATES, min(1, n_replicas - 1),
                horizon * 0.25, horizon * 0.25)
            incidents = sorted(
                [i for i in incidents
                 if i.replica != planted.replica
                 or i.end_ms <= planted.at_ms
                 or i.at_ms >= planted.end_ms] + [planted],
                key=lambda i: (i.at_ms, i.replica, i.kind))
        sim_seed = config.run_seed + index
        for policy in policies:
            cells.append((index, policy, list(incidents), sim_seed))

    tasks = [Task(fn=_chaos_cell,
                  args=(policy, trace, n_replicas, tuple(incidents),
                        sim_seed, health, durability, planted_bug,
                        shrink_budget),
                  key=f"chaos-seed{index}-{policy}")
             for index, policy, incidents, sim_seed in cells]
    outcomes = run_tasks(tasks, workers)

    rows: list[dict[str, typing.Any]] = []
    for (index, policy, incidents, sim_seed), (violation, result) in zip(
            cells, outcomes):
        row: dict[str, typing.Any] = {
            "seed_index": index, "policy": policy,
            "incidents": len(incidents),
            "failed": violation is not None,
        }
        if violation is not None and result is not None:
            log(f"seed {index} × {policy}: INVARIANT VIOLATION — "
                f"shrinking ({len(incidents)} incidents)")
            artifact = _write_artifact(
                pathlib.Path(out_dir), index, policy, sim_seed,
                config, trace, n_replicas, incidents, result, violation)
            row["shrunk_incidents"] = len(result.incidents)
            row["oracle_runs"] = result.checks
            row["artifact"] = str(artifact)
            log(f"  shrunk to {len(result.incidents)} incident(s) "
                f"in {result.checks} oracle run(s) -> {artifact}")
        else:
            log(f"seed {index} × {policy}: ok "
                f"({len(incidents)} incidents)")
        rows.append(row)
    return rows


def _write_artifact(out_dir: pathlib.Path, index: int, policy: str,
                    sim_seed: int, config: ExperimentConfig, trace: Trace,
                    n_replicas: int,
                    sampled: typing.Sequence[FaultIncident],
                    result: typing.Any, violation: str) -> pathlib.Path:
    """One self-contained JSON repro: everything needed to re-run the
    minimal failing schedule (bit-identical for a given master seed)."""
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"chaos_repro_seed{index}_{policy}.json"
    payload = {
        "schema": "repro.chaos/1",
        "master_seed": config.run_seed,
        "schedule_stream": f"chaos.schedule-{index}",
        "sim_seed": sim_seed,
        "policy": policy,
        "scale": config.scale,
        "trace": trace.name,
        "horizon_ms": trace.duration_ms,
        "n_replicas": n_replicas,
        "violation": violation,
        "sampled_incidents": [i.as_dict() for i in sampled],
        "shrunk_incidents": [i.as_dict() for i in result.incidents],
        "fault_plan": expand_incidents(result.incidents).as_dicts(),
        "shrink": {"oracle_runs": result.checks,
                   "incidents_removed": result.removed,
                   "durations_narrowed": result.narrowed,
                   "budget_exhausted": result.exhausted},
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


# ----------------------------------------------------------------------
# CLI: ``repro chaos`` (dispatched before the experiment parser)
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro chaos",
        description="Deterministic chaos search: sampled gray-failure "
                    "schedules vs the invariant oracle, with automatic "
                    "shrinking of failing schedules to minimal JSON "
                    "repros")
    parser.add_argument("--seeds", type=int, default=8,
                        help="number of sampled schedules (default 8)")
    parser.add_argument("--policies", default=",".join(CHAOS_POLICIES),
                        help="comma-separated policies to run each "
                             "schedule against")
    parser.add_argument("--scale", default=None,
                        choices=("smoke", "standard", "full"),
                        help="workload scale (default: $REPRO_SCALE or "
                             "'standard')")
    parser.add_argument("--horizon-ms", type=float, default=None,
                        help="truncate the trace to this horizon "
                             "(shorter = faster oracle runs)")
    parser.add_argument("--replicas", type=int, default=CHAOS_REPLICAS,
                        help=f"cluster size (default {CHAOS_REPLICAS})")
    parser.add_argument("--out", default="chaos_repros",
                        help="directory for shrunk JSON repro artifacts")
    parser.add_argument("--seed", type=int, default=1,
                        help="master seed (schedules, sim seeds)")
    parser.add_argument("--shrink-budget", type=int,
                        default=DEFAULT_SHRINK_BUDGET,
                        help="max oracle runs per shrink")
    parser.add_argument("--mean-incidents", type=float, default=3.0,
                        help="mean incidents per replica per schedule")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes for the seed × policy "
                             "matrix (default: $REPRO_WORKERS or 1; "
                             "results are identical for any count)")
    parser.add_argument("--planted-bug", action="store_true",
                        help="arm the deliberately broken heal re-sync; "
                             "exit 0 iff the harness catches it (the "
                             "self-proving meta-run)")
    return parser


def main(argv: typing.Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    from .config import chosen_scale
    config = ExperimentConfig(scale=chosen_scale(args.scale),
                              run_seed=args.seed)
    policies = tuple(p.strip() for p in args.policies.split(",")
                     if p.strip())
    if not policies:
        print("no policies given")
        return 2
    rows = chaos_search(config, seeds=args.seeds, policies=policies,
                        n_replicas=args.replicas,
                        horizon_ms=args.horizon_ms, out_dir=args.out,
                        planted_bug=args.planted_bug,
                        shrink_budget=args.shrink_budget,
                        mean_incidents=args.mean_incidents,
                        workers=args.workers, log=print)
    failures = [row for row in rows if row["failed"]]
    print(f"\nchaos: {len(rows)} run(s), {len(failures)} failure(s)")
    if args.planted_bug:
        # Meta-mode: the harness must catch the planted bug.
        if not failures:
            print("planted bug NOT caught — the chaos harness is blind")
            return 1
        print("planted bug caught and shrunk (harness verified)")
        return 0
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    import sys
    sys.exit(main())
