"""Recovery experiment: checkpoint interval vs. recovery cost.

A scripted portal-wide outage hits mid-run (at the paper-scale runs,
t = 600 s; shorter scales crash at 60 % of the trace) while every replica
carries a write-ahead log with periodic crash-consistent checkpoints.
The sweep varies the checkpoint interval and reports, per policy:

* **RPO** — applied updates whose durability died with the crash (the
  unflushed WAL tail), in the paper's own QoD unit (#uu);
* **RTO** — ms from the recovery instant until the re-sync backlog fully
  drained (the replicas are caught up and #uu parity with a fault-free
  run is restorable);
* WAL replay volume and re-sync counts, plus the profit retained
  relative to the same deployment's fault-free baseline.

Checkpoints bound the WAL tail that recovery must replay, so shorter
intervals buy faster recovery with more checkpoint work — the classic
durability trade-off, here measured against QUTS vs. FIFO scheduling of
the re-sync backlog itself (a preference-aware scheduler interleaves
catching up with serving paying queries).
"""

from __future__ import annotations

import typing

from repro.cluster import ClusterResult, HedgedRouter, run_cluster_simulation
from repro.db.wal import DurabilityConfig
from repro.faults import FaultPlan
from repro.parallel import Task, run_tasks
from repro.qc.generator import QCFactory
from repro.scheduling import make_scheduler

from .config import ExperimentConfig

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.workload.traces import Trace

#: Checkpoint intervals of the sweep (ms).
RECOVERY_CHECKPOINTS_MS = (15_000.0, 30_000.0, 60_000.0)
RECOVERY_POLICIES = ("FIFO", "QUTS")
RECOVERY_REPLICAS = 2
#: The acceptance scenario crashes the portal at t = 600 s; traces
#: shorter than that crash at 60 % of their span instead.
RECOVERY_CRASH_AT_MS = 600_000.0
RECOVERY_DOWN_MS = 5_000.0


def recovery_crash_time(trace_duration_ms: float) -> float:
    """Crash instant for a trace: t=600 s, or 60 % of shorter traces."""
    return min(RECOVERY_CRASH_AT_MS, 0.6 * trace_duration_ms)


def recovery_sweep(config: ExperimentConfig, *,
                   trace: "Trace | None" = None,
                   policies: typing.Sequence[str] = RECOVERY_POLICIES,
                   n_replicas: int = RECOVERY_REPLICAS,
                   checkpoints_ms: typing.Sequence[float] =
                   RECOVERY_CHECKPOINTS_MS,
                   down_ms: float = RECOVERY_DOWN_MS,
                   invariants: bool = True,
                   ) -> list[dict[str, typing.Any]]:
    """Sweep the checkpoint interval under a scripted portal crash.

    Returns one row per (policy, checkpoint interval) pair plus each
    policy's fault-free baseline row (``checkpoint_s = inf``).  Every
    run is audited by the invariant monitor unless ``invariants`` is
    switched off.
    """
    trace = trace if trace is not None else config.trace()
    crash_at = recovery_crash_time(trace.duration_ms)
    plan = FaultPlan.portal_crash(crash_at, down_ms)
    # Every (policy, interval) cell is an independent run; fan the whole
    # grid (baselines included) out and assemble rows afterwards.
    points = [(policy, interval_ms) for policy in policies
              for interval_ms in (None, *checkpoints_ms)]
    results = run_tasks(
        [Task(_recovery_task,
              (policy, trace, n_replicas,
               None if interval_ms is None else plan,
               None if interval_ms is None else DurabilityConfig(
                   checkpoint_interval_ms=interval_ms),
               invariants, config.run_seed),
              key=f"{policy}/ckpt="
                  f"{'inf' if interval_ms is None else f'{interval_ms:g}'}")
         for policy, interval_ms in points],
        config.workers)
    by_point = dict(zip(points, results))
    rows: list[dict[str, typing.Any]] = []
    for policy in policies:
        baseline = by_point[(policy, None)]
        rows.append(_row(policy, float("inf"), crash_at, baseline,
                         baseline))
        for interval_ms in checkpoints_ms:
            rows.append(_row(policy, interval_ms / 1000.0, crash_at,
                             by_point[(policy, interval_ms)], baseline))
    return rows


def _recovery_task(policy: str, trace: Trace, n_replicas: int,
                   plan: FaultPlan | None,
                   durability: DurabilityConfig | None,
                   invariants: bool, master_seed: int) -> ClusterResult:
    # Fresh router per run: routers are stateful (cycle position, hedges).
    return run_cluster_simulation(
        n_replicas, lambda: make_scheduler(policy), trace,
        QCFactory.balanced(), router=HedgedRouter(),
        master_seed=master_seed, fault_plan=plan,
        durability=durability, invariants=invariants)


def _uu_applied(result: ClusterResult) -> int:
    return result.counters.get("updates_applied", 0)


def _row(policy: str, checkpoint_s: float, crash_at: float,
         result: ClusterResult, baseline: ClusterResult,
         ) -> dict[str, typing.Any]:
    counters = result.counters
    baseline_percent = baseline.total_percent
    retention = (result.total_percent / baseline_percent
                 if baseline_percent > 0 else 0.0)
    return {
        "policy": policy,
        "checkpoint_s": checkpoint_s,
        "crash_at_s": crash_at / 1000.0,
        "total%": result.total_percent,
        "retention": retention,
        "availability": result.availability,
        "rpo_uu": result.rpo_uu,
        "rto_ms": result.rto_ms_max,
        "wal_replayed": counters.get("wal_records_replayed", 0),
        "resynced": counters.get("updates_resynced", 0),
        "checkpoints": counters.get("checkpoints_taken", 0),
        "applied": _uu_applied(result),
        "applied_baseline": _uu_applied(baseline),
        "invariants": result.invariants_checked,
    }
