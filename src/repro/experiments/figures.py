"""Per-figure experiment drivers.

Each ``figN`` function regenerates the data behind the corresponding figure
of the paper and returns it in a structured form; ``main``-style callers
(the CLI and the benchmark harness) render it with
:mod:`repro.experiments.report`.  See EXPERIMENTS.md for paper-vs-measured
comparisons.
"""

from __future__ import annotations

import statistics
import typing

from repro.metrics.results import SimulationResult, improvement_percent
from repro.parallel import Task, run_tasks
from repro.qc.generator import PhasedQCFactory, QCFactory
from repro.scheduling import QUTSScheduler, make_scheduler
from repro.workload import stats as trace_stats
from repro.workload.synthetic import StockWorkloadGenerator
from repro.workload.traces import Trace

from .config import (POLICY_NAMES, ExperimentConfig, table4_grid)
from .runner import QCSource, run_simulation


# ----------------------------------------------------------------------
# Worker task functions (module-level so they pickle; schedulers are
# constructed *inside* the task — they are stateful once bound)
# ----------------------------------------------------------------------
def _policy_run_task(policy: str, trace: Trace,
                     qc_source: QCSource | None,
                     master_seed: int) -> SimulationResult:
    return run_simulation(make_scheduler(policy), trace, qc_source,
                          master_seed=master_seed)


def _quts_param_task(param: str, value: float, trace: Trace,
                     qc_source: QCSource | None,
                     master_seed: int) -> SimulationResult:
    scheduler = QUTSScheduler(**{param: value})
    return run_simulation(scheduler, trace, qc_source,
                          master_seed=master_seed)


# ----------------------------------------------------------------------
# Figure 1 — the trade-off triangle of the naive policies
# ----------------------------------------------------------------------
def fig1(config: ExperimentConfig | None = None,
         trace: Trace | None = None) -> list[dict[str, typing.Any]]:
    """FIFO / FIFO-UH / FIFO-QH: mean response time vs mean staleness.

    No quality contracts — this is the motivating experiment showing that
    all three naive points are mutually non-dominating.
    """
    config = config or ExperimentConfig.from_env()
    trace = trace if trace is not None else config.trace()
    names = ("FIFO", "FIFO-UH", "FIFO-QH")
    results = run_tasks(
        [Task(_policy_run_task, (name, trace, None, config.run_seed),
              key=name) for name in names],
        config.workers)
    return [{
        "policy": name,
        "response_time_ms": result.mean_response_time,
        "staleness_uu": result.mean_staleness,
    } for name, result in zip(names, results)]


# ----------------------------------------------------------------------
# Figure 5 — trace characteristics
# ----------------------------------------------------------------------
def fig5(config: ExperimentConfig | None = None) -> dict[str, typing.Any]:
    """Query/update rate series and the per-stock scatter summary."""
    config = config or ExperimentConfig.from_env()
    generator = StockWorkloadGenerator(config.spec(), config.workload_seed)
    trace = generator.generate()
    query_rates = trace_stats.query_rate_series(trace)
    update_rates = trace_stats.update_rate_series(trace)
    per_stock = trace_stats.per_stock_counts(trace)
    return {
        "trace": trace,
        "query_rates": query_rates,
        "update_rates": update_rates,
        "per_stock": per_stock,
        "summary": {
            "query_rate_mean": query_rates.mean,
            "query_rate_max": query_rates.maximum,
            "update_rate_first_half": update_rates.first_half_mean(),
            "update_rate_second_half": update_rates.second_half_mean(),
            "fraction_below_diagonal":
                per_stock.fraction_below_diagonal(),
            "n_crowds": len(generator.crowds),
        },
    }


# ----------------------------------------------------------------------
# Figures 6/7/8 — profit percentages under QCs
# ----------------------------------------------------------------------
def _profit_row(result: SimulationResult) -> dict[str, typing.Any]:
    return {
        "policy": result.scheduler_name,
        "QOS%": result.qos_percent,
        "QOD%": result.qod_percent,
        "total%": result.total_percent,
        "rt_ms": result.mean_response_time,
        "uu": result.mean_staleness,
    }


def fig6(config: ExperimentConfig | None = None,
         trace: Trace | None = None) -> dict[str, list[dict]]:
    """Step vs linear QCs for the four policies (balanced preferences)."""
    config = config or ExperimentConfig.from_env()
    trace = trace if trace is not None else config.trace()
    shapes = ("step", "linear")
    tasks = [
        Task(_policy_run_task,
             (name, trace,
              QCFactory.balanced(shape=shape),  # type: ignore[arg-type]
              config.run_seed),
             key=f"{shape}/{name}")
        for shape in shapes for name in POLICY_NAMES]
    results = iter(run_tasks(tasks, config.workers))
    return {shape: [_profit_row(next(results)) for __ in POLICY_NAMES]
            for shape in shapes}


def _spectrum_tasks(policy: str, config: ExperimentConfig,
                    trace: Trace) -> list[Task]:
    return [Task(_policy_run_task, (policy, trace, factory,
                                    config.run_seed),
                 key=f"{policy}/qod={qod_percent:g}")
            for qod_percent, factory in table4_grid()]


def _spectrum_rows(results: typing.Sequence[SimulationResult],
                   ) -> list[dict[str, typing.Any]]:
    rows = []
    for (qod_percent, __), result in zip(table4_grid(), results):
        row = _profit_row(result)
        row["QODmax%"] = qod_percent
        row["QOSmax%"] = result.ledger.qos_max_percent
        rows.append(row)
    return rows


def _spectrum(policy: str, config: ExperimentConfig,
              trace: Trace) -> list[dict[str, typing.Any]]:
    return _spectrum_rows(run_tasks(_spectrum_tasks(policy, config, trace),
                                    config.workers))


def fig7(config: ExperimentConfig | None = None,
         trace: Trace | None = None) -> list[dict[str, typing.Any]]:
    """FIFO across the Table 4 spectrum."""
    config = config or ExperimentConfig.from_env()
    trace = trace if trace is not None else config.trace()
    return _spectrum("FIFO", config, trace)


def fig8(config: ExperimentConfig | None = None,
         trace: Trace | None = None,
         policies: typing.Sequence[str] = ("UH", "QH", "QUTS"),
         ) -> dict[str, list[dict[str, typing.Any]]]:
    """UH / QH / QUTS across the Table 4 spectrum, plus the paper's
    headline improvement factors."""
    config = config or ExperimentConfig.from_env()
    trace = trace if trace is not None else config.trace()
    # One flat task list over the full policy × Table-4 cross product, so
    # --workers parallelises across policies as well as spectrum points.
    tasks = [task for name in policies
             for task in _spectrum_tasks(name, config, trace)]
    flat = iter(run_tasks(tasks, config.workers))
    n_points = len(table4_grid())
    out: dict[str, list[dict[str, typing.Any]]] = {
        name: _spectrum_rows([next(flat) for __ in range(n_points)])
        for name in policies}
    if {"UH", "QH", "QUTS"} <= set(out):
        out["improvements"] = [{
            "QODmax%": quts_row["QODmax%"],
            "QUTS_vs_UH_%": improvement_percent(
                quts_row["total%"], uh_row["total%"]),
            "QUTS_vs_QH_%": improvement_percent(
                quts_row["total%"], qh_row["total%"]),
        } for quts_row, uh_row, qh_row in zip(
            out["QUTS"], out["UH"], out["QH"])]
    return out


# ----------------------------------------------------------------------
# Figure 9 — adaptability to changing user preferences
# ----------------------------------------------------------------------
#: The paper's interval length: the 300 s experiment is split into four
#: 75 s phases with the qosmax:qodmax ratio flipping 1:5 <-> 5:1.
FIG9_PHASE_MS = 75_000.0
FIG9_RATIOS = (0.2, 5.0, 0.2, 5.0)


def fig9(config: ExperimentConfig | None = None,
         trace: Trace | None = None,
         scheduler: QUTSScheduler | None = None) -> dict[str, typing.Any]:
    """QUTS under flip-flopping preferences: profit tracking + ρ."""
    config = config or ExperimentConfig.from_env()
    trace = trace if trace is not None else config.trace()
    n_phases = max(1, round(trace.duration_ms / FIG9_PHASE_MS))
    ratios = [FIG9_RATIOS[i % len(FIG9_RATIOS)] for i in range(n_phases)]
    factory = PhasedQCFactory.flip_flop(FIG9_PHASE_MS, ratios)
    scheduler = scheduler or QUTSScheduler()
    result = run_simulation(scheduler, trace, factory,
                            master_seed=config.run_seed)
    assert result.rho_series is not None
    phase_rho = []
    for k in range(n_phases):
        start, end = k * FIG9_PHASE_MS, (k + 1) * FIG9_PHASE_MS
        values = [v for t, v in result.rho_series.items()
                  if start <= t < end]
        phase_rho.append({
            "phase": k,
            "ratio_qos_to_qod": ratios[k],
            "mean_rho": statistics.fmean(values) if values else float("nan"),
        })
    return {
        "result": result,
        "phase_rho": phase_rho,
        "gained_total": result.profit_timeline("total"),
        "max_total": result.profit_timeline("total", gained=False),
        "gained_qos": result.profit_timeline("qos"),
        "max_qos": result.profit_timeline("qos", gained=False),
        "gained_qod": result.profit_timeline("qod"),
        "max_qod": result.profit_timeline("qod", gained=False),
        "rho_series": result.rho_series,
    }


# ----------------------------------------------------------------------
# Figure 10 — sensitivity to ω and τ
# ----------------------------------------------------------------------
#: The paper's sweeps: ω over 0.1-100 s, τ over 1-1000 ms.
FIG10_OMEGAS_MS = (100.0, 1_000.0, 10_000.0, 100_000.0)
FIG10_TAUS_MS = (1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1_000.0)


def fig10(config: ExperimentConfig | None = None,
          trace: Trace | None = None,
          omegas: typing.Sequence[float] = FIG10_OMEGAS_MS,
          taus: typing.Sequence[float] = FIG10_TAUS_MS,
          ) -> dict[str, list[dict[str, typing.Any]]]:
    """Total profit percentage as ω and τ vary (Fig 9 workload setup)."""
    config = config or ExperimentConfig.from_env()
    trace = trace if trace is not None else config.trace()
    n_phases = max(1, round(trace.duration_ms / FIG9_PHASE_MS))
    ratios = [FIG9_RATIOS[i % len(FIG9_RATIOS)] for i in range(n_phases)]
    factory = PhasedQCFactory.flip_flop(FIG9_PHASE_MS, ratios)

    sweep = ([("omega", omega) for omega in omegas]
             + [("tau", tau) for tau in taus])
    results = run_tasks(
        [Task(_quts_param_task, (param, value, trace, factory,
                                 config.run_seed),
              key=f"{param}={value:g}") for param, value in sweep],
        config.workers)
    omega_rows = [{"omega_ms": value, "total%": result.total_percent}
                  for (param, value), result in zip(sweep, results)
                  if param == "omega"]
    tau_rows = [{"tau_ms": value, "total%": result.total_percent}
                for (param, value), result in zip(sweep, results)
                if param == "tau"]
    return {"omega": omega_rows, "tau": tau_rows}
