"""Table drivers: Table 3 (workload information) and Table 4 (QC grid)."""

from __future__ import annotations

import typing

from repro.scheduling.quts import DEFAULT_OMEGA_MS, DEFAULT_TAU_MS
from repro.workload import stats as trace_stats

from .config import ExperimentConfig, table4_rows


def table3(config: ExperimentConfig | None = None
           ) -> list[tuple[str, str]]:
    """Table 3: workload information and system parameters.

    Regenerated from the actual trace so the reported counts are what the
    simulations really replay (scaled runs report their scaled totals).
    """
    config = config or ExperimentConfig.from_env()
    summary = trace_stats.summarize(config.trace())
    rows = summary.rows()
    rows.extend([
        ("default atom time (tau)", f"{DEFAULT_TAU_MS:.0f}ms"),
        ("default adaptation period (omega)", f"{DEFAULT_OMEGA_MS:.0f}ms"),
    ])
    return rows


def table4() -> list[dict[str, typing.Any]]:
    """Table 4: the nine-point QC grid of §5.1.2."""
    return table4_rows()
