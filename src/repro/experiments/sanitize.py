"""``repro sanitize``: the simsan harness over real experiment cells.

This is the operational entry point of the determinism sanitizer
(:mod:`repro.sim.sanitizer`).  For each requested experiment scenario it
runs three checks:

1. **Race mode** — the scenario under a tracking :class:`Sanitizer`:
   same-``(time, priority)`` events with conflicting accesses to shared
   state (database cells, scheduler queue/ρ) that were ordered only by
   the eid tie-break become findings.
2. **Perturbation mode** — the scenario re-run with bijectively permuted
   eids (``salt=1..N``).  A clean program is invariant to the tie-break
   permutation; a fingerprint mismatch against the unperturbed baseline
   is a finding, localised to the first diverging dispatch by a
   trace-recording replay.
3. **Static pass** — the call-graph-aware determinism rules
   (``no-entropy-taint``, ``no-set-iteration``) over ``src/``, unless
   ``--skip-static``.

``--planted-bug {order,set-iter}`` runs the corresponding *meta-test*:
it injects a known nondeterminism bug and exits 0 only if the sanitizer
reports it at the expected location — proving the oracle can fail
before trusting its silence (the same contract as ``repro chaos
--planted-bug``).

Exit codes match ``repro lint``: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import dataclasses
import pathlib
import pickle
import sys
import typing

from repro.analysis.core import (EXIT_CLEAN, EXIT_ERROR, EXIT_FINDINGS,
                                 Finding, LintConfig, SourceModule,
                                 apply_rules, find_project_root,
                                 lint_paths, render_json, render_sarif,
                                 render_text)
from repro.analysis.rules import EntropyTaintRule, SetIterationRule
from repro.db.transactions import Update
from repro.experiments.config import (ExperimentConfig, SCALES,
                                      chosen_scale)
from repro.experiments.figures import FIG9_PHASE_MS, FIG9_RATIOS
from repro.experiments.runner import QCSource, run_simulation
from repro.metrics.results import SimulationResult
from repro.qc.generator import PhasedQCFactory, QCFactory
from repro.scheduling import QUTSScheduler, make_scheduler
from repro.scheduling.base import Scheduler
from repro.sim import Environment
from repro.sim.process import ProcessGenerator
from repro.sim.sanitizer import RaceFinding, Sanitizer
from repro.workload.traces import Trace

__all__ = ["DivergenceFinding", "check_perturbation", "check_races",
           "main", "result_fingerprint", "sanitize_scenarios"]

EXPERIMENT_NAMES = ("fig5", "fig9")
DEFAULT_POLICIES = ("QH", "QUTS")

#: Findings rendered through the shared reporters use these rule ids.
RACE_RULE_ID = "sim-order-race"
DIVERGENCE_RULE_ID = "sim-tiebreak-divergence"
STATIC_RULE_IDS = ("no-entropy-taint", "no-set-iteration")

#: Where divergence findings anchor: they name a whole-run property,
#: not a source line, so they point at this harness.
_HARNESS_PATH = "src/repro/experiments/sanitize.py"


# ----------------------------------------------------------------------
# Scenarios
# ----------------------------------------------------------------------
ScenarioBuild = typing.Callable[[], tuple[Scheduler, Trace, QCSource]]


@dataclasses.dataclass(frozen=True)
class Scenario:
    """One experiment cell; ``build`` returns *fresh* run components
    (schedulers are stateful once bound, so every run rebuilds)."""

    name: str
    build: ScenarioBuild


def sanitize_scenarios(config: ExperimentConfig,
                       experiments: typing.Sequence[str],
                       policies: typing.Sequence[str]) -> list[Scenario]:
    """The scenario list for ``experiments``: fig5 (the paper's trace
    under each requested policy with the balanced §5.1.1 QC mix) and
    fig9 (QUTS under the flip-flopping preference phases)."""
    trace = config.trace()
    scenarios: list[Scenario] = []
    if "fig5" in experiments:
        for policy in policies:
            def build(policy: str = policy) \
                    -> tuple[Scheduler, Trace, QCSource]:
                return (make_scheduler(policy), trace,
                        QCFactory.balanced())
            scenarios.append(Scenario(f"fig5/{policy}", build))
    if "fig9" in experiments:
        n_phases = max(1, round(trace.duration_ms / FIG9_PHASE_MS))
        ratios = [FIG9_RATIOS[i % len(FIG9_RATIOS)]
                  for i in range(n_phases)]

        def build_fig9() -> tuple[Scheduler, Trace, QCSource]:
            return (QUTSScheduler(), trace,
                    PhasedQCFactory.flip_flop(FIG9_PHASE_MS, ratios))
        scenarios.append(Scenario("fig9/flip-flop", build_fig9))
    return scenarios


# ----------------------------------------------------------------------
# Fingerprints and findings
# ----------------------------------------------------------------------
def result_fingerprint(result: SimulationResult) -> bytes:
    """A byte-stable digest of everything a run reports.

    Two runs are "the same experiment outcome" iff their fingerprints
    are equal: scheduler, profit percentages, QoS/QoD aggregates,
    outcome counters, and (for QUTS) the full ρ time series.
    """
    rho = (sorted(result.rho_series.items())
           if result.rho_series is not None else None)
    payload = (result.scheduler_name, result.duration,
               result.qos_percent, result.qod_percent,
               result.total_percent, result.mean_response_time,
               result.mean_staleness,
               tuple(sorted(result.counters.items())), rho)
    return pickle.dumps(payload)


@dataclasses.dataclass(frozen=True)
class DivergenceFinding:
    """A perturbed run produced a different result than the baseline."""

    scenario: str
    salt: int
    #: index of the first diverging dispatch in the event trace
    index: int
    baseline: tuple[float, int, str] | None
    perturbed: tuple[float, int, str] | None

    @staticmethod
    def _describe(entry: tuple[float, int, str] | None) -> str:
        if entry is None:
            return "<run ended>"
        time, priority, label = entry
        return f"'{label}' at t={time:g}ms (priority {priority})"

    def format(self) -> str:
        return (f"sim-tiebreak-divergence[{self.scenario}] salt="
                f"{self.salt}: results change under eid permutation; "
                f"first diverging dispatch is #{self.index} — baseline "
                f"{self._describe(self.baseline)} vs perturbed "
                f"{self._describe(self.perturbed)}")

    def to_dict(self) -> dict[str, typing.Any]:
        return dataclasses.asdict(self)


# ----------------------------------------------------------------------
# The three checks
# ----------------------------------------------------------------------
def check_races(scenario: Scenario,
                config: ExperimentConfig) -> tuple[list[RaceFinding],
                                                   int]:
    """Run ``scenario`` in race mode; findings plus events dispatched."""
    sanitizer = Sanitizer(track_state=True)
    scheduler, trace, qc_source = scenario.build()
    run_simulation(scheduler, trace, qc_source,
                   master_seed=config.run_seed, sanitizer=sanitizer)
    return sanitizer.findings, sanitizer.events_seen


def check_perturbation(scenario: Scenario, config: ExperimentConfig,
                       salts: typing.Sequence[int]
                       ) -> list[DivergenceFinding]:
    """Diff ``scenario`` fingerprints across eid-permutation salts.

    On a mismatch, both runs are replayed with ``record_trace=True``
    and the first diverging dispatch pair names the finding.
    """
    def run(salt: int | None, record_trace: bool = False
            ) -> tuple[bytes, list[tuple[float, int, str]]]:
        sanitizer = Sanitizer(track_state=False, salt=salt,
                              record_trace=record_trace)
        scheduler, trace, qc_source = scenario.build()
        result = run_simulation(scheduler, trace, qc_source,
                                master_seed=config.run_seed,
                                sanitizer=sanitizer)
        return result_fingerprint(result), sanitizer.trace

    baseline_fp, _ = run(None)
    findings: list[DivergenceFinding] = []
    for salt in salts:
        salted_fp, _ = run(salt)
        if salted_fp == baseline_fp:
            continue
        _, baseline_trace = run(None, record_trace=True)
        _, salted_trace = run(salt, record_trace=True)
        index = next(
            (i for i, (a, b) in enumerate(zip(baseline_trace,
                                              salted_trace))
             if a != b),
            min(len(baseline_trace), len(salted_trace)))
        findings.append(DivergenceFinding(
            scenario=scenario.name, salt=salt, index=index,
            baseline=(baseline_trace[index]
                      if index < len(baseline_trace) else None),
            perturbed=(salted_trace[index]
                       if index < len(salted_trace) else None)))
    return findings


def static_findings(root: pathlib.Path) -> list[Finding]:
    """The simsan static layer: the two call-graph determinism rules
    over ``src/`` (the full ruleset stays with ``repro lint``)."""
    config = dataclasses.replace(LintConfig.load(root),
                                 select=STATIC_RULE_IDS)
    return lint_paths([root / "src"], config=config, root=root)


def _relativize(root: pathlib.Path, path: str) -> str:
    try:
        return pathlib.Path(path).resolve() \
            .relative_to(root.resolve()).as_posix()
    except ValueError:
        return pathlib.PurePosixPath(path).as_posix()


def dynamic_findings(root: pathlib.Path,
                     races: typing.Sequence[tuple[str, RaceFinding]],
                     divergences: typing.Sequence[DivergenceFinding]
                     ) -> list[Finding]:
    """Convert sanitizer findings into reporter-ready :class:`Finding`
    records (text/JSON/SARIF all share the lint reporters)."""
    findings: list[Finding] = []
    for scenario_name, race in races:
        findings.append(Finding(
            _relativize(root, race.first.path), race.first.line, 1,
            RACE_RULE_ID, f"[{scenario_name}] {race.format()}"))
    for divergence in divergences:
        findings.append(Finding(_HARNESS_PATH, 1, 1,
                                DIVERGENCE_RULE_ID, divergence.format()))
    return findings


# ----------------------------------------------------------------------
# Planted-bug meta-tests
# ----------------------------------------------------------------------
def planted_order_findings() -> list[RaceFinding]:
    """A deliberate same-timestamp order dependence.

    Two processes sleep the same simulated delay and then both write
    item ``PLANTED`` — the committed value is whichever ran second,
    i.e. pure eid tie-break.  The race detector must flag it.
    """
    env = Environment()
    sanitizer = Sanitizer(track_state=True)
    sanitizer.install(env)
    database = sanitizer.tracked_database()

    def writer(value: float) -> ProcessGenerator:
        yield env.timeout(5.0)
        database.register_update(
            Update(env.now, 1.0, "PLANTED", value=value), env.now)

    env.process(writer(1.0), name="planted-a")
    env.process(writer(2.0), name="planted-b")
    env.run(until=20.0)
    sanitizer.finish()
    return sanitizer.findings


#: The planted set-iteration module; the ``for`` sits on line 6.
PLANTED_SET_ITER_SOURCE = """\
members: set[int] = {3, 1, 2}


def drain() -> list[int]:
    out = []
    for member in members:
        out.append(member)
    return out
"""
PLANTED_SET_ITER_LINE = 6


def planted_set_iter_findings() -> list[Finding]:
    """A deliberate set iteration, checked by the static oracle.

    The fixture is synthesised with a ``src/repro``-scoped relpath so
    the library-code-only rule applies, and run through the same rule
    object CI uses — hash order is stable *within* one process, so
    only the static rule can prove this class of bug.
    """
    module = SourceModule(pathlib.Path("planted_setiter.py"),
                          "src/repro/_planted_setiter.py",
                          PLANTED_SET_ITER_SOURCE)
    return apply_rules(module, [SetIterationRule()])


def _planted_main(which: str) -> int:
    if which == "order":
        races = planted_order_findings()
        hits = [race for race in races
                if "db.items[PLANTED]" in race.cells]
        for race in hits:
            print(race.format())
        if hits:
            print("planted-bug order: detected (oracle works)")
            return EXIT_CLEAN
        print("planted-bug order: NOT detected — the race oracle is "
              "broken", file=sys.stderr)
        return EXIT_FINDINGS
    findings = planted_set_iter_findings()
    hits = [finding for finding in findings
            if finding.rule_id == "no-set-iteration"
            and finding.line == PLANTED_SET_ITER_LINE]
    for finding in hits:
        print(finding.format())
    if hits:
        print("planted-bug set-iter: detected (oracle works)")
        return EXIT_CLEAN
    print(f"planted-bug set-iter: NOT detected at line "
          f"{PLANTED_SET_ITER_LINE} — the static oracle is broken",
          file=sys.stderr)
    return EXIT_FINDINGS


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro sanitize",
        description="simsan: run experiments under the determinism "
                    "sanitizer (same-timestamp races, tie-break "
                    "perturbation) plus the static determinism rules")
    # No ``choices=`` here: argparse 3.11 rejects the empty list that
    # ``nargs="*"`` produces when no experiment is named.  Validated in
    # :func:`main`.
    parser.add_argument("experiments", nargs="*", default=None,
                        metavar="{fig5,fig9}",
                        help="experiment cells to sanitize "
                             "(default: all)")
    parser.add_argument("--policies", default=",".join(DEFAULT_POLICIES),
                        help="comma-separated fig5 policies "
                             "(default: QH,QUTS)")
    parser.add_argument("--scale", default=None,
                        choices=sorted(SCALES),
                        help="workload scale (default: $REPRO_SCALE or "
                             "standard)")
    parser.add_argument("--seed", type=int, default=1,
                        help="run seed (default: 1)")
    parser.add_argument("--perturb", type=int, default=2,
                        help="number of eid-permutation salts to try "
                             "(default: 2; 0 disables)")
    parser.add_argument("--skip-static", action="store_true",
                        help="skip the static determinism rules")
    parser.add_argument("--format", default="text",
                        choices=("text", "json", "sarif"),
                        help="report format (default: text)")
    parser.add_argument("--out", default=None,
                        help="write the report to this file instead of "
                             "stdout")
    parser.add_argument("--planted-bug", default=None,
                        choices=("order", "set-iter"),
                        help="meta-test: inject this known bug and "
                             "exit 0 only if simsan reports it")
    return parser


def main(argv: typing.Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.planted_bug is not None:
        return _planted_main(args.planted_bug)

    try:
        config = ExperimentConfig(scale=chosen_scale(args.scale),
                                  run_seed=args.seed)
        policies = tuple(part.strip()
                         for part in args.policies.split(",")
                         if part.strip())
        experiments = list(dict.fromkeys(args.experiments
                                         or EXPERIMENT_NAMES))
        unknown = [name for name in experiments
                   if name not in EXPERIMENT_NAMES]
        if unknown:
            raise ValueError(f"unknown experiment(s) {unknown}; "
                             f"choose from {list(EXPERIMENT_NAMES)}")
        scenarios = sanitize_scenarios(config, experiments, policies)
    except (ValueError, KeyError) as exc:
        print(f"repro sanitize: error: {exc}", file=sys.stderr)
        return EXIT_ERROR
    root = find_project_root(pathlib.Path.cwd())

    summaries: list[str] = []
    races: list[tuple[str, RaceFinding]] = []
    divergences: list[DivergenceFinding] = []
    salts = list(range(1, args.perturb + 1))
    for scenario in scenarios:
        scenario_races, events = check_races(scenario, config)
        races.extend((scenario.name, race) for race in scenario_races)
        scenario_divs = check_perturbation(scenario, config, salts)
        divergences.extend(scenario_divs)
        summaries.append(
            f"{scenario.name}: {events} events, "
            f"{len(scenario_races)} race finding(s), "
            f"{len(scenario_divs)} divergence(s) over "
            f"{len(salts)} salt(s)")

    findings = dynamic_findings(root, races, divergences)
    if not args.skip_static:
        findings.extend(static_findings(root))
    findings.sort()

    if args.format == "json":
        report = render_json(findings)
    elif args.format == "sarif":
        rule_index = {RACE_RULE_ID: ("same-timestamp events with "
                                     "conflicting shared-state access, "
                                     "ordered only by the eid "
                                     "tie-break"),
                      DIVERGENCE_RULE_ID: ("simulation results change "
                                           "under eid tie-break "
                                           "permutation")}
        rule_index.update({rule.rule_id: rule.summary for rule in
                           (EntropyTaintRule, SetIterationRule)})
        report = render_sarif(findings, rule_index, tool_name="simsan")
    else:
        report = "\n".join((*summaries, render_text(findings)))

    if args.out:
        pathlib.Path(args.out).write_text(report + "\n")
    else:
        print(report)
    return EXIT_FINDINGS if findings else EXIT_CLEAN


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
