"""Ablation studies of the design choices DESIGN.md calls out.

Four sweeps, each returning report-ready rows:

* :func:`ablation_rho` — adaptive ρ (Eq. 4-6) vs a grid of fixed ρ under
  the Figure 9 flip-flop preferences;
* :func:`ablation_low_level` — QUTS with each low-level query policy
  (VRD / FCFS / EDF / profit-rate) plus the inherited-QoD update policy,
  against a UH yardstick;
* :func:`ablation_invalidation` — the update register table on vs off;
* :func:`ablation_preemption` — restart vs suspend semantics for
  cross-class-preempted updates, on QH and QUTS.

These back the ``benchmarks/test_ablation_*.py`` harness and the
``repro ablation`` CLI command.
"""

from __future__ import annotations

import typing

from repro.db.server import ServerConfig
from repro.qc.generator import PhasedQCFactory, QCFactory
from repro.scheduling import (InheritanceQUTSScheduler, QUTSScheduler,
                              make_priority, make_qh, make_uh)
from repro.workload.traces import Trace

from .config import ExperimentConfig
from .figures import FIG9_PHASE_MS, FIG9_RATIOS
from .runner import run_simulation

Row = dict[str, typing.Any]

#: Fixed-ρ grid for the adaptation ablation.
FIXED_RHOS = (0.5, 0.6, 0.7, 0.8, 0.9, 1.0)
#: Low-level query policies exercised by the modularity ablation.
QUERY_POLICIES = ("vrd", "fcfs", "edf", "profit-rate")


def _flip_flop_factory(trace: Trace) -> PhasedQCFactory:
    n_phases = max(1, round(trace.duration_ms / FIG9_PHASE_MS))
    ratios = [FIG9_RATIOS[i % len(FIG9_RATIOS)] for i in range(n_phases)]
    return PhasedQCFactory.flip_flop(FIG9_PHASE_MS, ratios)


def _profit_cells(result) -> Row:
    return {"QOS%": result.qos_percent, "QOD%": result.qod_percent,
            "total%": result.total_percent}


def ablation_rho(config: ExperimentConfig,
                 trace: Trace | None = None) -> list[Row]:
    """Fixed-ρ grid + the adaptive scheduler, Figure 9 workload."""
    trace = trace if trace is not None else config.trace()
    factory = _flip_flop_factory(trace)
    rows: list[Row] = []
    for rho in FIXED_RHOS:
        result = run_simulation(QUTSScheduler(fixed_rho=rho), trace,
                                factory, master_seed=config.run_seed)
        rows.append({"rho": f"fixed {rho:.1f}", **_profit_cells(result)})
    adaptive = run_simulation(QUTSScheduler(), trace, factory,
                              master_seed=config.run_seed)
    rows.append({"rho": "adaptive (Eq. 4-6)", **_profit_cells(adaptive)})
    return rows


def ablation_low_level(config: ExperimentConfig,
                       trace: Trace | None = None) -> list[Row]:
    """QUTS low-level plug-ins (balanced QCs), with UH for scale."""
    trace = trace if trace is not None else config.trace()
    factory = QCFactory.balanced()
    rows: list[Row] = []
    for policy_name in QUERY_POLICIES:
        scheduler = QUTSScheduler(query_policy=make_priority(policy_name))
        result = run_simulation(scheduler, trace, factory,
                                master_seed=config.run_seed)
        rows.append({"low_level": f"queries: {policy_name}",
                     **_profit_cells(result)})
    inherited = run_simulation(InheritanceQUTSScheduler(), trace, factory,
                               master_seed=config.run_seed)
    rows.append({"low_level": "updates: inherited-QoD",
                 **_profit_cells(inherited)})
    yardstick = run_simulation(make_uh(), trace, factory,
                               master_seed=config.run_seed)
    rows.append({"low_level": "(UH baseline, for scale)",
                 **_profit_cells(yardstick)})
    return rows


def ablation_invalidation(config: ExperimentConfig,
                          trace: Trace | None = None) -> list[Row]:
    """Update register table on vs off (QH, balanced QCs)."""
    trace = trace if trace is not None else config.trace()
    factory = QCFactory.balanced()
    rows: list[Row] = []
    for invalidation in (True, False):
        result = run_simulation(make_qh(), trace, factory,
                                master_seed=config.run_seed,
                                invalidation=invalidation)
        rows.append({
            "register table": "on (paper)" if invalidation else "off",
            **_profit_cells(result),
            "uu": result.mean_staleness,
            "superseded": result.counters.get("updates_superseded", 0),
            "unfinished_updates":
                result.counters.get("updates_unfinished", 0),
        })
    return rows


def ablation_preemption(config: ExperimentConfig,
                        trace: Trace | None = None) -> list[Row]:
    """Restart vs suspend semantics for preempted updates (QH, QUTS)."""
    trace = trace if trace is not None else config.trace()
    factory = QCFactory.balanced()
    rows: list[Row] = []
    for policy_name, make in (("QH", make_qh), ("QUTS", QUTSScheduler)):
        for semantics in ("restart", "suspend"):
            result = run_simulation(
                make(), trace, factory, master_seed=config.run_seed,
                server_config=ServerConfig(update_preemption=semantics))
            rows.append({
                "policy": policy_name,
                "preempted update": semantics,
                **_profit_cells(result),
                "update_restarts":
                    result.counters.get("restarts_updates", 0),
            })
    return rows


#: Registry for the CLI.
ABLATIONS: dict[str, typing.Callable[..., list[Row]]] = {
    "rho": ablation_rho,
    "low-level": ablation_low_level,
    "invalidation": ablation_invalidation,
    "preemption": ablation_preemption,
}
