"""Ablation studies of the design choices DESIGN.md calls out.

Four sweeps, each returning report-ready rows:

* :func:`ablation_rho` — adaptive ρ (Eq. 4-6) vs a grid of fixed ρ under
  the Figure 9 flip-flop preferences;
* :func:`ablation_low_level` — QUTS with each low-level query policy
  (VRD / FCFS / EDF / profit-rate) plus the inherited-QoD update policy,
  against a UH yardstick;
* :func:`ablation_invalidation` — the update register table on vs off;
* :func:`ablation_preemption` — restart vs suspend semantics for
  cross-class-preempted updates, on QH and QUTS.

These back the ``benchmarks/test_ablation_*.py`` harness and the
``repro ablation`` CLI command.
"""

from __future__ import annotations

import typing

from repro.db.server import ServerConfig
from repro.parallel import Task, run_tasks
from repro.qc.generator import PhasedQCFactory, QCFactory
from repro.scheduling import (InheritanceQUTSScheduler, QUTSScheduler,
                              make_priority, make_qh, make_uh)
from repro.workload.traces import Trace

from repro.metrics.results import SimulationResult

from .config import ExperimentConfig
from .figures import FIG9_PHASE_MS, FIG9_RATIOS
from .runner import QCSource, run_simulation

Row = dict[str, typing.Any]

#: Fixed-ρ grid for the adaptation ablation.
FIXED_RHOS = (0.5, 0.6, 0.7, 0.8, 0.9, 1.0)
#: Low-level query policies exercised by the modularity ablation.
QUERY_POLICIES = ("vrd", "fcfs", "edf", "profit-rate")


def _flip_flop_factory(trace: Trace) -> PhasedQCFactory:
    n_phases = max(1, round(trace.duration_ms / FIG9_PHASE_MS))
    ratios = [FIG9_RATIOS[i % len(FIG9_RATIOS)] for i in range(n_phases)]
    return PhasedQCFactory.flip_flop(FIG9_PHASE_MS, ratios)


def _profit_cells(result: SimulationResult) -> Row:
    return {"QOS%": result.qos_percent, "QOD%": result.qod_percent,
            "total%": result.total_percent}


# ----------------------------------------------------------------------
# Worker task functions (module-level so they pickle; schedulers are
# constructed inside the worker — they are stateful once bound)
# ----------------------------------------------------------------------
def _rho_task(fixed_rho: float | None, trace: Trace, factory: QCSource,
              master_seed: int) -> SimulationResult:
    scheduler = (QUTSScheduler() if fixed_rho is None
                 else QUTSScheduler(fixed_rho=fixed_rho))
    return run_simulation(scheduler, trace, factory,
                          master_seed=master_seed)


def _low_level_task(kind: str, trace: Trace, factory: QCSource,
                    master_seed: int) -> SimulationResult:
    if kind == "inherited":
        scheduler = InheritanceQUTSScheduler()
    elif kind == "uh":
        scheduler = make_uh()
    else:
        scheduler = QUTSScheduler(query_policy=make_priority(kind))
    return run_simulation(scheduler, trace, factory,
                          master_seed=master_seed)


def _invalidation_task(invalidation: bool, trace: Trace,
                       factory: QCSource,
                       master_seed: int) -> SimulationResult:
    return run_simulation(make_qh(), trace, factory,
                          master_seed=master_seed,
                          invalidation=invalidation)


def _preemption_task(policy_name: str, semantics: str, trace: Trace,
                     factory: QCSource,
                     master_seed: int) -> SimulationResult:
    scheduler = make_qh() if policy_name == "QH" else QUTSScheduler()
    return run_simulation(
        scheduler, trace, factory, master_seed=master_seed,
        server_config=ServerConfig(update_preemption=semantics))


def ablation_rho(config: ExperimentConfig,
                 trace: Trace | None = None) -> list[Row]:
    """Fixed-ρ grid + the adaptive scheduler, Figure 9 workload."""
    trace = trace if trace is not None else config.trace()
    factory = _flip_flop_factory(trace)
    points = list(FIXED_RHOS) + [None]  # None = adaptive (Eq. 4-6)
    results = run_tasks(
        [Task(_rho_task, (rho, trace, factory, config.run_seed),
              key="rho=adaptive" if rho is None else f"rho={rho:g}")
         for rho in points],
        config.workers)
    return [{"rho": ("adaptive (Eq. 4-6)" if rho is None
                     else f"fixed {rho:.1f}"),
             **_profit_cells(result)}
            for rho, result in zip(points, results)]


def ablation_low_level(config: ExperimentConfig,
                       trace: Trace | None = None) -> list[Row]:
    """QUTS low-level plug-ins (balanced QCs), with UH for scale."""
    trace = trace if trace is not None else config.trace()
    factory = QCFactory.balanced()
    kinds = list(QUERY_POLICIES) + ["inherited", "uh"]
    labels = ([f"queries: {name}" for name in QUERY_POLICIES]
              + ["updates: inherited-QoD", "(UH baseline, for scale)"])
    results = run_tasks(
        [Task(_low_level_task, (kind, trace, factory, config.run_seed),
              key=kind) for kind in kinds],
        config.workers)
    return [{"low_level": label, **_profit_cells(result)}
            for label, result in zip(labels, results)]


def ablation_invalidation(config: ExperimentConfig,
                          trace: Trace | None = None) -> list[Row]:
    """Update register table on vs off (QH, balanced QCs)."""
    trace = trace if trace is not None else config.trace()
    factory = QCFactory.balanced()
    settings = (True, False)
    results = run_tasks(
        [Task(_invalidation_task, (invalidation, trace, factory,
                                   config.run_seed),
              key=f"invalidation={invalidation}")
         for invalidation in settings],
        config.workers)
    return [{
        "register table": "on (paper)" if invalidation else "off",
        **_profit_cells(result),
        "uu": result.mean_staleness,
        "superseded": result.counters.get("updates_superseded", 0),
        "unfinished_updates":
            result.counters.get("updates_unfinished", 0),
    } for invalidation, result in zip(settings, results)]


def ablation_preemption(config: ExperimentConfig,
                        trace: Trace | None = None) -> list[Row]:
    """Restart vs suspend semantics for preempted updates (QH, QUTS)."""
    trace = trace if trace is not None else config.trace()
    factory = QCFactory.balanced()
    combos = [(policy_name, semantics)
              for policy_name in ("QH", "QUTS")
              for semantics in ("restart", "suspend")]
    results = run_tasks(
        [Task(_preemption_task, (policy_name, semantics, trace, factory,
                                 config.run_seed),
              key=f"{policy_name}/{semantics}")
         for policy_name, semantics in combos],
        config.workers)
    return [{
        "policy": policy_name,
        "preempted update": semantics,
        **_profit_cells(result),
        "update_restarts": result.counters.get("restarts_updates", 0),
    } for (policy_name, semantics), result in zip(combos, results)]


#: Registry for the CLI.
ABLATIONS: dict[str, typing.Callable[..., list[Row]]] = {
    "rho": ablation_rho,
    "low-level": ablation_low_level,
    "invalidation": ablation_invalidation,
    "preemption": ablation_preemption,
}
