"""Multi-seed replication: means and confidence intervals for any metric.

A single simulation run is a point estimate; a credible comparison
replicates it over independent seeds.  :func:`replicate` runs a
policy × workload configuration across ``n`` seed pairs (workload seed
and run seed both vary) and aggregates any set of
:class:`~repro.metrics.results.SimulationResult` metrics into mean,
standard deviation, and a normal-approximation 95% confidence interval.

Example::

    from repro.experiments.replication import replicate

    summary = replicate("QUTS", lambda: QCFactory.balanced(),
                        duration_ms=60_000, n_seeds=5)
    print(summary["total%"].mean, summary["total%"].ci95)
"""

from __future__ import annotations

import dataclasses
import math
import typing

from repro.metrics.results import SimulationResult
from repro.parallel import Task, run_tasks
from repro.scheduling import make_scheduler
from repro.workload.synthetic import StockWorkloadGenerator, WorkloadSpec

if typing.TYPE_CHECKING:
    from .runner import QCSource

#: Metric extractors over a SimulationResult, by report column name.
METRICS: dict[str, typing.Callable[[SimulationResult], float]] = {
    "QOS%": lambda r: r.qos_percent,
    "QOD%": lambda r: r.qod_percent,
    "total%": lambda r: r.total_percent,
    "rt_ms": lambda r: r.mean_response_time,
    "uu": lambda r: r.mean_staleness,
}


@dataclasses.dataclass(frozen=True)
class MetricSummary:
    """Aggregate of one metric over replications."""

    name: str
    samples: tuple[float, ...]

    @property
    def n(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        return sum(self.samples) / self.n if self.n else 0.0

    @property
    def stdev(self) -> float:
        if self.n < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(sum((x - mu) ** 2 for x in self.samples)
                         / (self.n - 1))

    @property
    def ci95(self) -> tuple[float, float]:
        """Normal-approximation 95% confidence interval for the mean."""
        half = 1.96 * self.stdev / math.sqrt(self.n) if self.n else 0.0
        return (self.mean - half, self.mean + half)

    def overlaps(self, other: "MetricSummary") -> bool:
        """Do the two 95% CIs overlap (i.e. no clear separation)?"""
        lo_a, hi_a = self.ci95
        lo_b, hi_b = other.ci95
        return lo_a <= hi_b and lo_b <= hi_a

    def row(self) -> dict[str, typing.Any]:
        lo, hi = self.ci95
        return {"metric": self.name, "mean": self.mean,
                "stdev": self.stdev, "ci95_lo": lo, "ci95_hi": hi,
                "n": self.n}


def _replication_task(policy: str, spec: WorkloadSpec, seed: int,
                      qc_source: "QCSource | None") -> SimulationResult:
    """One replication: regenerate the workload and run it (worker-side,
    so trace generation parallelises too)."""
    from .runner import run_simulation  # local import: avoid cycle

    trace = StockWorkloadGenerator(spec, master_seed=seed).generate()
    return run_simulation(make_scheduler(policy), trace, qc_source,
                          master_seed=seed)


def replicate(policy: str,
              qc_source_factory: typing.Callable[[], typing.Any],
              duration_ms: float = 60_000.0,
              n_seeds: int = 5,
              base_seed: int = 100,
              metrics: typing.Iterable[str] = ("total%",),
              spec: WorkloadSpec | None = None,
              workers: int | None = None,
              ) -> dict[str, MetricSummary]:
    """Run ``policy`` over ``n_seeds`` independent workloads.

    Each replication regenerates the workload with its own seed and draws
    fresh contracts and scheduler randomness, so the spread reflects all
    sources of variation.  ``qc_source_factory`` is called once per
    replication (QC sources may be stateful).  ``workers`` fans the
    replications out over processes (see :mod:`repro.parallel`); results
    are identical for any worker count.
    """
    if n_seeds <= 0:
        raise ValueError("n_seeds must be positive")
    unknown = set(metrics) - set(METRICS)
    if unknown:
        raise KeyError(f"unknown metrics {sorted(unknown)}; "
                       f"choose from {sorted(METRICS)}")

    base_spec = (spec or WorkloadSpec()).scaled(duration_ms)
    results = run_tasks(
        [Task(_replication_task,
              (policy, base_spec, base_seed + k, qc_source_factory()),
              key=f"{policy}/seed={base_seed + k}")
         for k in range(n_seeds)],
        workers)
    samples: dict[str, list[float]] = {name: [] for name in metrics}
    for result in results:
        for name in metrics:
            samples[name].append(METRICS[name](result))
    return {name: MetricSummary(name, tuple(values))
            for name, values in samples.items()}


def compare_policies(policies: typing.Sequence[str],
                     qc_source_factory: typing.Callable[[], typing.Any],
                     duration_ms: float = 60_000.0,
                     n_seeds: int = 5,
                     base_seed: int = 100,
                     metric: str = "total%",
                     spec: WorkloadSpec | None = None,
                     workers: int | None = None,
                     ) -> dict[str, MetricSummary]:
    """Replicated comparison of several policies on *identical* workloads
    (common random numbers: policy ``i`` sees the same seeds as policy
    ``j``, which sharpens the comparison)."""
    return {policy: replicate(policy, qc_source_factory,
                              duration_ms=duration_ms, n_seeds=n_seeds,
                              base_seed=base_seed, metrics=(metric,),
                              spec=spec, workers=workers)[metric]
            for policy in policies}
