"""Experiment harness: one driver per table/figure of the paper."""

from .ablations import (ABLATIONS, ablation_invalidation,
                        ablation_low_level, ablation_preemption,
                        ablation_rho)
from .chaos import CHAOS_POLICIES, CHAOS_REPLICAS, chaos_search
from .config import (DEFAULT_SCALE, POLICY_NAMES, SCALES, ExperimentConfig,
                     chosen_scale, table4_grid, table4_rows)
from .faults import (FAULT_MTTFS_MS, FAULT_MTTR_MS, FAULT_POLICIES,
                     FAULT_REPLICAS, fault_sweep, sample_fault_plans)
from .figures import (FIG10_OMEGAS_MS, FIG10_TAUS_MS, FIG9_PHASE_MS,
                      FIG9_RATIOS, fig1, fig10, fig5, fig6, fig7, fig8, fig9)
from .recovery import (RECOVERY_CHECKPOINTS_MS, RECOVERY_CRASH_AT_MS,
                       RECOVERY_DOWN_MS, RECOVERY_POLICIES,
                       RECOVERY_REPLICAS, recovery_crash_time,
                       recovery_sweep)
from .replication import (MetricSummary, compare_policies, replicate)
from .report import format_series, format_table, save_csv
from .runner import QCSource, free_qc_source, run_simulation
from .scaleout import (SHARD_COUNTS, ShardedResult, hot_key_spec,
                       run_sharded_simulation, shard_sweep, skew_sweep)
from .tables import table3, table4

__all__ = [
    "ABLATIONS",
    "CHAOS_POLICIES",
    "CHAOS_REPLICAS",
    "chaos_search",
    "DEFAULT_SCALE",
    "ablation_invalidation",
    "ablation_low_level",
    "ablation_preemption",
    "ablation_rho",
    "ExperimentConfig",
    "FAULT_MTTFS_MS",
    "FAULT_MTTR_MS",
    "FAULT_POLICIES",
    "FAULT_REPLICAS",
    "FIG10_OMEGAS_MS",
    "FIG10_TAUS_MS",
    "FIG9_PHASE_MS",
    "FIG9_RATIOS",
    "MetricSummary",
    "POLICY_NAMES",
    "QCSource",
    "RECOVERY_CHECKPOINTS_MS",
    "RECOVERY_CRASH_AT_MS",
    "RECOVERY_DOWN_MS",
    "RECOVERY_POLICIES",
    "RECOVERY_REPLICAS",
    "recovery_crash_time",
    "recovery_sweep",
    "SCALES",
    "chosen_scale",
    "compare_policies",
    "fault_sweep",
    "replicate",
    "sample_fault_plans",
    "fig1",
    "fig10",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "format_series",
    "format_table",
    "free_qc_source",
    "hot_key_spec",
    "run_sharded_simulation",
    "run_simulation",
    "save_csv",
    "SHARD_COUNTS",
    "shard_sweep",
    "ShardedResult",
    "skew_sweep",
    "table3",
    "table4",
    "table4_grid",
    "table4_rows",
]
