"""Sharded scale-out experiments: profit vs shard count, skew rebalancing.

The replication experiments (``repro.experiments.faults`` and friends)
scale *availability*: every replica still absorbs the full update
stream, so adding replicas never adds update capacity.  This driver
scales *throughput*: :func:`run_sharded_simulation` replays a trace
against a :class:`~repro.shard.ShardedPortal`, where the consistent-hash
ring divides the stocks — and therefore the update load — across shards,
while the shard planner keeps multi-stock queries correct via
scatter-gather.

Two sweeps back the claims in ``benchmarks/test_shard_scaleout.py``:

* :func:`shard_sweep` — one fixed trace replayed at several shard
  counts.  The aggregate offered load saturates a single server, so
  profit should climb as shards divide the work;
* :func:`skew_sweep` — a Zipf hot-key tier (skewed popularity, high
  query/update correlation) replayed with a static ring vs. a
  rebalancing one, holding everything else fixed.

Both fan out over :mod:`repro.parallel` workers and are bit-identical
for any worker count (each cell re-derives its own seed universe).
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import typing

from repro.db.admission import AdmissionPolicy
from repro.db.server import ServerConfig
from repro.db.transactions import Query
from repro.db.wal import DurabilityConfig
from repro.parallel import Task, run_tasks
from repro.qc.contracts import QualityContract
from repro.qc.generator import QCFactory
from repro.scheduling import make_scheduler
from repro.scheduling.base import Scheduler
from repro.shard import RebalanceConfig, ShardedPortal
from repro.sim import Environment
from repro.sim.invariants import InvariantMonitor
from repro.sim.process import ProcessGenerator
from repro.sim.rng import StreamRegistry
from repro.telemetry.hooks import KernelProbe, TelemetryKnob
from repro.workload.sharding import split_update_streams
from repro.workload.synthetic import StockWorkloadGenerator, WorkloadSpec
from repro.workload.traces import Trace

from .config import ExperimentConfig
from .runner import QCSource

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.health import HealthConfig
    from repro.cluster.routers import Router

#: Shard counts for the profit-vs-shards curve.
SHARD_COUNTS = (1, 2, 4, 8)

#: Default rebalance knobs for the skew tier (intervals sized so a
#: smoke-scale minute sees several controller decisions).
SKEW_REBALANCE = RebalanceConfig(interval_ms=5_000.0, skew_threshold=1.3)


def hot_key_spec(spec: WorkloadSpec) -> WorkloadSpec:
    """A Zipf hot-key tier of ``spec``: sharper popularity skew and high
    query/update correlation, so a handful of stocks dominate both
    streams and the hash ring's static balance no longer equals load
    balance — the regime rebalancing exists for."""
    return dataclasses.replace(spec, query_zipf_theta=1.4,
                               update_zipf_theta=1.2,
                               popularity_correlation=0.95)


class ShardedResult:
    """Run-level outcome of a sharded replay (plain data, picklable)."""

    def __init__(self, portal: ShardedPortal, duration: float,
                 invariants_checked: bool = False) -> None:
        self.duration = duration
        self.n_shards = len(portal.shards)
        self.weights = dict(portal.ring.weights)
        self.total_max = portal.total_max
        self.total_gained = portal.total_gained
        self.total_percent = portal.total_percent
        self.qos_percent = portal.qos_percent
        self.qod_percent = portal.qod_percent
        self.mean_response_time = portal.mean_response_time()
        self.counters = portal.merged_counters()
        #: Lifetime per-shard routing tallies (balance inspection).
        self.query_counts = list(portal.query_counts)
        self.update_counts = list(portal.update_counts)
        self.rebalances = portal.rebalances
        self.keys_migrated = portal.keys_migrated
        self.fanouts_resolved = portal.planner.fanouts_resolved
        self.invariants_checked = invariants_checked

    def digest(self) -> dict[str, typing.Any]:
        """Everything the determinism contract covers, full precision.

        Two runs are *the same run* iff their digests are equal — the
        byte-identity test serialises this across worker counts and
        repeated seeds.
        """
        return {
            "n_shards": self.n_shards,
            "weights": sorted(self.weights.items()),
            "total_max": self.total_max,
            "total_gained": self.total_gained,
            "mean_response_time": self.mean_response_time,
            "counters": sorted(self.counters.items()),
            "query_counts": self.query_counts,
            "update_counts": self.update_counts,
            "rebalances": self.rebalances,
            "keys_migrated": self.keys_migrated,
            "fanouts_resolved": self.fanouts_resolved,
        }

    def __repr__(self) -> str:
        return (f"<ShardedResult shards={self.n_shards} "
                f"Q%={self.total_percent:.3f} "
                f"rebalances={self.rebalances}>")


def _check_monotonic(kind: str, arrival_ms: float, previous: float,
                     index: int) -> None:
    if arrival_ms < previous:
        raise ValueError(
            f"malformed trace: {kind} #{index} arrives at "
            f"{arrival_ms:.3f} ms, before the previous {kind} at "
            f"{previous:.3f} ms — arrival times must be non-decreasing")


def run_sharded_simulation(n_shards: int,
                           scheduler_factory: typing.Callable[[], Scheduler],
                           trace: Trace,
                           qc_source: QCSource,
                           *,
                           master_seed: int = 0,
                           drain_ms: float = 30_000.0,
                           replicas_per_shard: int = 1,
                           router_factory: typing.Callable[
                               [], "Router"] | None = None,
                           server_config: ServerConfig | None = None,
                           failover_retries: int = 6,
                           failover_backoff_ms: float = 50.0,
                           durability: DurabilityConfig | None = None,
                           invariants: bool = False,
                           telemetry: "TelemetryKnob" = None,
                           health: "HealthConfig | None" = None,
                           admission_factory: typing.Callable[
                               [], AdmissionPolicy] | None = None,
                           base_weight: int = 4,
                           rebalance: RebalanceConfig | None = None,
                           ) -> ShardedResult:
    """Replay ``trace`` against ``n_shards`` shard portals.

    The update stream is **split** at trace level against the initial
    ring (:func:`repro.workload.sharding.split_update_streams`) and fed
    from one source process per shard; queries flow through the shard
    planner (owner routing or scatter-gather).  Contracts are drawn from
    the same ``qc.sampler`` stream as every other runner, in query
    arrival order, so sharded results are comparable with
    :func:`repro.cluster.run_cluster_simulation` on the same trace —
    and a 1-shard run is the replicated portal plus a ring lookup.

    ``rebalance`` arms the hot-key controller; ``invariants`` arms the
    conservation monitor, whose ``shard_cutover`` law additionally
    audits every migration (updates buffered == updates replayed).
    """
    env = Environment()
    streams = StreamRegistry(master_seed)
    monitor = InvariantMonitor(lambda: env.now) if invariants else None
    portal = ShardedPortal(env, n_shards, scheduler_factory, streams,
                           keys=sorted(trace.stocks),
                           replicas_per_shard=replicas_per_shard,
                           router_factory=router_factory,
                           server_config=server_config,
                           failover_retries=failover_retries,
                           failover_backoff_ms=failover_backoff_ms,
                           durability=durability, monitor=monitor,
                           telemetry=telemetry, health=health,
                           admission_factory=admission_factory,
                           base_weight=base_weight, rebalance=rebalance)
    qc_rng = streams.stream("qc.sampler")
    update_streams = split_update_streams(trace, portal.ring)

    def query_source(env: Environment) -> ProcessGenerator:
        previous = 0.0
        for i, record in enumerate(trace.queries):
            _check_monotonic("query", record.arrival_ms, previous, i)
            previous = record.arrival_ms
            delay = record.arrival_ms - env.now
            if delay > 0:
                yield env.timeout(delay)
            contract: QualityContract = qc_source.sample(qc_rng, env.now)
            portal.submit_query(Query(env.now, record.exec_ms,
                                      record.items, contract))

    def update_source(env: Environment, shard: int) -> ProcessGenerator:
        previous = 0.0
        for i, record in enumerate(update_streams[shard]):
            _check_monotonic("update", record.arrival_ms, previous, i)
            previous = record.arrival_ms
            delay = record.arrival_ms - env.now
            if delay > 0:
                yield env.timeout(delay)
            portal.route_update(env.now, record.exec_ms, record.item,
                                record.value)

    env.process(query_source(env), name="shard-query-source")
    for shard in range(n_shards):
        env.process(update_source(env, shard),
                    name=f"shard-update-source-{shard}")
    horizon = trace.duration_ms + max(0.0, drain_ms)
    env.run(until=horizon)
    portal.finalize()
    if isinstance(env.telemetry, KernelProbe):
        env.telemetry.flush()
    if monitor is not None:
        monitor.verify_complete(portal.total_gained)
    return ShardedResult(portal, horizon,
                         invariants_checked=monitor is not None)


# ----------------------------------------------------------------------
# Sweeps (worker-side task functions are module-level: picklable)
# ----------------------------------------------------------------------
def _scaleout_cell(n_shards: int, policy: str, spec: WorkloadSpec,
                   workload_seed: int, run_seed: int, qc_source: QCSource,
                   replicas_per_shard: int,
                   rebalance: RebalanceConfig | None,
                   invariants: bool) -> ShardedResult:
    """One sweep cell: regenerate the trace, replay it sharded."""
    trace = StockWorkloadGenerator(spec, master_seed=workload_seed).generate()
    return run_sharded_simulation(
        n_shards, lambda: make_scheduler(policy), trace, qc_source,
        master_seed=run_seed, replicas_per_shard=replicas_per_shard,
        rebalance=rebalance, invariants=invariants)


def _result_row(label: str, result: ShardedResult) -> dict[str, typing.Any]:
    return {
        "cell": label,
        "shards": result.n_shards,
        "total%": result.total_percent,
        "QOS%": result.qos_percent,
        "QOD%": result.qod_percent,
        "rt_ms": result.mean_response_time,
        "fanouts": result.fanouts_resolved,
        "rebalances": result.rebalances,
        "keys_moved": result.keys_migrated,
    }


def shard_sweep(config: ExperimentConfig,
                shard_counts: typing.Sequence[int] = SHARD_COUNTS,
                policy: str = "QUTS",
                qc_factory: QCFactory | None = None,
                replicas_per_shard: int = 1,
                rebalance: RebalanceConfig | None = None,
                spec: WorkloadSpec | None = None,
                invariants: bool = False,
                ) -> list[dict[str, typing.Any]]:
    """Profit vs shard count on one fixed trace (fixed aggregate load).

    Every cell replays the *same* workload seed, so the only variable is
    how many shards divide it — common random numbers, as in
    :func:`repro.experiments.replication.compare_policies`.
    """
    base_spec = spec or config.spec()
    qc = qc_factory or QCFactory.balanced()
    results = run_tasks(
        [Task(_scaleout_cell,
              (n, policy, base_spec, config.workload_seed,
               config.run_seed, qc, replicas_per_shard, rebalance,
               invariants),
              key=f"shards={n}")
         for n in shard_counts],
        config.workers)
    return [_result_row(f"shards={n}", result)
            for n, result in zip(shard_counts, results)]


def skew_sweep(config: ExperimentConfig,
               n_shards: int = 4,
               policy: str = "QUTS",
               qc_factory: QCFactory | None = None,
               rebalance: RebalanceConfig = SKEW_REBALANCE,
               spec: WorkloadSpec | None = None,
               invariants: bool = False,
               ) -> list[dict[str, typing.Any]]:
    """Static vs rebalancing ring under the Zipf hot-key tier.

    Both cells replay the identical skewed trace with identical seeds;
    the only difference is whether the rebalance controller runs."""
    skewed = hot_key_spec(spec or config.spec())
    qc = qc_factory or QCFactory.balanced()
    results = run_tasks(
        [Task(_scaleout_cell,
              (n_shards, policy, skewed, config.workload_seed,
               config.run_seed, qc, 1, plan, invariants),
              key=f"ring={label}")
         for label, plan in (("static", None), ("rebalancing", rebalance))],
        config.workers)
    return [_result_row(f"ring={label}", result)
            for (label, _), result in zip(
                (("static", None), ("rebalancing", rebalance)), results)]


# ----------------------------------------------------------------------
# CLI: ``repro shard`` owns its own grammar
# ----------------------------------------------------------------------
def main(argv: typing.Sequence[str] | None = None) -> int:
    """``repro shard``: run the scale-out sweeps and print the tables."""
    from .report import format_table

    parser = argparse.ArgumentParser(
        prog="repro shard",
        description="Sharded scale-out: profit vs shard count, plus "
                    "static-vs-rebalancing rings under Zipf hot-key "
                    "skew")
    parser.add_argument("--scale", default=None,
                        choices=("smoke", "standard", "full"),
                        help="workload scale (default: $REPRO_SCALE or "
                             "'standard')")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes (default: $REPRO_WORKERS "
                             "or 1); results are bit-identical for any "
                             "value")
    parser.add_argument("--policy", default="QUTS",
                        help="scheduling policy inside every replica")
    parser.add_argument("--shards", default="1,2,4,8",
                        help="comma-separated shard counts for the "
                             "scale-out curve")
    parser.add_argument("--replicas", type=int, default=1,
                        help="replicas per shard")
    parser.add_argument("--skew", action="store_true",
                        help="also run the Zipf hot-key tier "
                             "(static vs rebalancing ring)")
    parser.add_argument("--invariants", action="store_true",
                        help="arm the conservation monitor on every cell")
    args = parser.parse_args(
        list(sys.argv[1:] if argv is None else argv))
    config = ExperimentConfig.from_env(args.scale, workers=args.workers)
    if config.workers > 1:
        from repro.parallel import warm_pool
        warm_pool(config.workers)
    shard_counts = [int(part) for part in args.shards.split(",") if part]
    rows = shard_sweep(config, shard_counts, policy=args.policy,
                       replicas_per_shard=args.replicas,
                       invariants=args.invariants)
    print(format_table(rows,
                       title=f"Scale-out - profit vs shard count "
                             f"({args.policy}, {config.scale} scale, "
                             f"fixed aggregate load)"))
    if args.skew:
        print()
        rows = skew_sweep(config, policy=args.policy,
                          invariants=args.invariants)
        print(format_table(rows,
                           title="Hot-key skew - static vs rebalancing "
                                 "ring (Zipf tier, 4 shards)"))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
