"""Run one scheduler × workload × QC-setup simulation.

This is the library's main entry point: it wires the discrete-event
environment, the database, the lock manager, the scheduler, the profit
ledger, and the arrival processes together, replays a trace, and returns a
:class:`~repro.metrics.results.SimulationResult`.
"""

from __future__ import annotations

import typing

from repro.db.admission import AdmissionPolicy
from repro.db.database import Database, StalenessAggregation
from repro.db.server import DatabaseServer, ServerConfig
from repro.db.transactions import Query, Update
from repro.metrics.profit import ProfitLedger
from repro.metrics.results import SimulationResult
from repro.qc.contracts import QualityContract
from repro.scheduling.base import Scheduler
from repro.scheduling.quts import QUTSScheduler
from repro.sim import Environment
from repro.sim.process import ProcessGenerator
from repro.sim.rng import RandomStream, StreamRegistry
from repro.sim.sanitizer import Sanitizer
from repro.telemetry.hooks import KernelProbe, TelemetryKnob
from repro.workload.traces import Trace

#: Anything with ``sample(rng, now) -> QualityContract`` can price queries.
class QCSource(typing.Protocol):
    def sample(self, rng: RandomStream,
               now: float = 0.0) -> QualityContract:
        ...  # pragma: no cover


class _FixedQCSource:
    """Gives every query the same contract (e.g. the free contract)."""

    def __init__(self, contract: QualityContract) -> None:
        self._contract = contract

    def sample(self, rng: RandomStream,
               now: float = 0.0) -> QualityContract:
        return self._contract


def free_qc_source() -> QCSource:
    """A source of zero-profit contracts, for the non-QC Figure 1 runs."""
    return _FixedQCSource(QualityContract.free())


def run_simulation(scheduler: Scheduler, trace: Trace,
                   qc_source: QCSource | None = None, *,
                   master_seed: int = 0,
                   drain_ms: float = 30_000.0,
                   server_config: ServerConfig | None = None,
                   staleness_aggregation: StalenessAggregation = "max",
                   invalidation: bool = True,
                   admission: "AdmissionPolicy | None" = None,
                   telemetry: TelemetryKnob = None,
                   sanitizer: Sanitizer | None = None,
                   ) -> SimulationResult:
    """Replay ``trace`` under ``scheduler`` and collect all metrics.

    ``qc_source`` prices each query at submission time (defaults to the
    free contract).  After the last arrival the simulation keeps running
    for ``drain_ms`` so in-flight work can finish; whatever remains is
    counted as unfinished.  ``invalidation=False`` disables the update
    register table's supersession (ablation only — the paper's model has
    it on).  ``telemetry`` enables structured tracing (see
    :mod:`repro.telemetry`); the session comes back on
    ``result.telemetry`` and the run's numbers are byte-identical with
    it on or off.  ``sanitizer`` runs the simulation under the
    determinism sanitizer (see :mod:`repro.sim.sanitizer`): the eid
    counter is swapped before any event exists and, in race mode, the
    database and scheduler are wrapped in access-tracking proxies —
    results stay byte-identical with the sanitizer on or off.
    """
    if qc_source is None:
        qc_source = free_qc_source()

    env = Environment()
    if sanitizer is not None:
        sanitizer.install(env)
    streams = StreamRegistry(master_seed)
    if sanitizer is not None and sanitizer.track_state:
        database: Database = sanitizer.tracked_database(
            staleness_aggregation=staleness_aggregation,
            invalidation=invalidation)
        sanitizer.track_scheduler(scheduler)
    else:
        database = Database(staleness_aggregation=staleness_aggregation,
                            invalidation=invalidation)
    ledger = ProfitLedger()
    server = DatabaseServer(env, database, scheduler, ledger, streams,
                            config=server_config, admission=admission,
                            telemetry=telemetry)
    session = server.telemetry  # resolved knob (explicit or from config)

    qc_rng = streams.stream("qc.sampler")
    env.process(_query_source(env, server, trace, qc_source, qc_rng),
                name="query-source")
    env.process(_update_source(env, server, trace), name="update-source")

    horizon = trace.duration_ms + max(0.0, drain_ms)
    env.run(until=horizon)
    server.finalize()
    if sanitizer is not None:
        sanitizer.finish()
    if isinstance(env.telemetry, KernelProbe):
        env.telemetry.flush()

    rho_series = (scheduler.rho_series
                  if isinstance(scheduler, QUTSScheduler) else None)
    return SimulationResult(
        scheduler_name=scheduler.name,
        duration=horizon,
        ledger=ledger,
        rho_series=rho_series,
        lock_stats=server.lock_stats,
        metadata={
            "trace": trace.name,
            "n_queries": len(trace.queries),
            "n_updates": len(trace.updates),
            "master_seed": master_seed,
            "drain_ms": drain_ms,
        },
        telemetry=session,
    )


def _query_source(env: Environment, server: DatabaseServer, trace: Trace,
                  qc_source: QCSource,
                  qc_rng: RandomStream) -> ProcessGenerator:
    """Replays the trace's queries, pricing each with a fresh contract."""
    for record in trace.queries:
        delay = record.arrival_ms - env.now
        if delay > 0:
            yield env.timeout(delay)
        contract = qc_source.sample(qc_rng, env.now)
        server.submit_query(Query(env.now, record.exec_ms, record.items,
                                  contract))


def _update_source(env: Environment, server: DatabaseServer,
                   trace: Trace) -> ProcessGenerator:
    """Replays the trace's updates."""
    for record in trace.updates:
        delay = record.arrival_ms - env.now
        if delay > 0:
            yield env.timeout(delay)
        server.submit_update(Update(env.now, record.exec_ms, record.item,
                                    value=record.value))
