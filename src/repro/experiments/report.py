"""Rendering of experiment results: ASCII tables/series and CSV export.

Every figure driver returns structured data; this module turns it into the
rows/series the paper reports — printable in a terminal, diffable in CI,
and exportable as CSV for external plotting.
"""

from __future__ import annotations

import csv
import pathlib
import typing

Row = typing.Mapping[str, typing.Any]


def format_table(rows: typing.Sequence[Row],
                 columns: typing.Sequence[str] | None = None,
                 title: str = "") -> str:
    """Render mappings as an aligned ASCII table."""
    if not rows:
        return f"{title}\n(empty)" if title else "(empty)"
    cols = list(columns) if columns else list(rows[0].keys())
    widths = {c: len(c) for c in cols}
    rendered: list[list[str]] = []
    for row in rows:
        cells = [_fmt(row.get(c, "")) for c in cols]
        rendered.append(cells)
        for c, cell in zip(cols, cells):
            widths[c] = max(widths[c], len(cell))
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(c.ljust(widths[c]) for c in cols)
    lines.append(header)
    lines.append("-+-".join("-" * widths[c] for c in cols))
    for cells in rendered:
        lines.append(" | ".join(cell.ljust(widths[c])
                                for c, cell in zip(cols, cells)))
    return "\n".join(lines)


def format_series(times: typing.Sequence[float],
                  values: typing.Sequence[float],
                  title: str = "", width: int = 60,
                  height: int = 12) -> str:
    """A crude ASCII line chart (good enough to eyeball Figure 9 shapes)."""
    if not values:
        return f"{title}\n(empty series)"
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    # Downsample to `width` columns.
    n = len(values)
    columns = []
    for x in range(width):
        i0 = int(x * n / width)
        i1 = max(i0 + 1, int((x + 1) * n / width))
        chunk = values[i0:i1]
        columns.append(sum(chunk) / len(chunk))
    grid = [[" "] * width for __ in range(height)]
    for x, v in enumerate(columns):
        y = int((v - lo) / span * (height - 1))
        grid[height - 1 - y][x] = "*"
    lines = []
    if title:
        lines.append(title)
    lines.append(f"max={hi:.4g}")
    lines.extend("".join(row) for row in grid)
    lines.append(f"min={lo:.4g}   "
                 f"t: {times[0]:.0f} .. {times[-1]:.0f} ms")
    return "\n".join(lines)


def save_csv(rows: typing.Sequence[Row],
             path: str | pathlib.Path,
             columns: typing.Sequence[str] | None = None) -> None:
    """Write mappings to CSV (full float precision, for plotting)."""
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    if not rows:
        target.write_text("")
        return
    cols = list(columns) if columns else list(rows[0].keys())
    with open(target, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=cols,
                                extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            writer.writerow({c: row.get(c, "") for c in cols})


def _fmt(value: typing.Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
