"""Robustness experiment: profit retention under injected replica faults.

The paper's evaluation assumes an infallible system; this scenario asks
how much of each policy's profit survives when replicas actually fail.
A fleet of replicas runs the standard workload while a deterministic
:class:`~repro.faults.FaultPlan` crashes and repairs them with
exponential MTTF/MTTR cycles.  Every policy under comparison faces the
*same* sampled fault schedule (the plan is drawn once per MTTF point from
a seed-derived stream), so differences are pure scheduling/routing
effects, exactly like the paper's same-trace comparisons.

The headline metric is **profit retention**: total profit under faults
divided by the same deployment's fault-free total.  Preference-aware
scheduling degrades more gracefully than FIFO — when capacity shrinks,
QUTS spends what capacity remains on the contracts that pay.
"""

from __future__ import annotations

import typing

from repro.cluster import ClusterResult, HedgedRouter, run_cluster_simulation
from repro.faults import FaultPlan
from repro.parallel import Task, run_tasks
from repro.qc.generator import QCFactory
from repro.scheduling import make_scheduler
from repro.sim.rng import StreamRegistry

from .config import ExperimentConfig

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.workload.traces import Trace

#: MTTF points of the sweep (ms); MTTR is fixed — shorter MTTF = more
#: frequent outages of the same mean length.
FAULT_MTTFS_MS = (120_000.0, 60_000.0, 30_000.0)
FAULT_MTTR_MS = 10_000.0
FAULT_POLICIES = ("FIFO", "QUTS")
FAULT_REPLICAS = 2


def sample_fault_plans(config: ExperimentConfig, *,
                       n_replicas: int = FAULT_REPLICAS,
                       mttfs_ms: typing.Sequence[float] = FAULT_MTTFS_MS,
                       mttr_ms: float = FAULT_MTTR_MS,
                       horizon_ms: float | None = None,
                       ) -> dict[float, FaultPlan]:
    """One reproducible plan per MTTF point (shared across policies)."""
    horizon = horizon_ms if horizon_ms is not None else config.duration_ms
    streams = StreamRegistry(config.run_seed)
    plans: dict[float, FaultPlan] = {}
    for mttf_ms in mttfs_ms:
        rng = streams.stream(f"faults.mtbf-{mttf_ms:g}")
        plans[mttf_ms] = FaultPlan.sample_mtbf(
            rng, n_replicas, mttf_ms, mttr_ms, horizon)
    return plans


def fault_sweep(config: ExperimentConfig, *,
                trace: "Trace | None" = None,
                policies: typing.Sequence[str] = FAULT_POLICIES,
                n_replicas: int = FAULT_REPLICAS,
                mttfs_ms: typing.Sequence[float] = FAULT_MTTFS_MS,
                mttr_ms: float = FAULT_MTTR_MS,
                ) -> list[dict[str, typing.Any]]:
    """Sweep replica MTTF and report per-policy profit retention.

    Returns one row per (policy, MTTF) pair plus each policy's fault-free
    baseline row (``mttf_s = inf``).  Rows carry the robustness counters
    (crashes, failovers, retries, lost queries, re-synced updates) and
    the measured replica availability.
    """
    trace = trace if trace is not None else config.trace()
    plans = sample_fault_plans(config, n_replicas=n_replicas,
                               mttfs_ms=mttfs_ms, mttr_ms=mttr_ms,
                               horizon_ms=trace.duration_ms)
    # Baselines and fault runs are all independent; fan the whole
    # policy × MTTF grid out at once and assemble rows afterwards.
    points = [(policy, mttf_ms) for policy in policies
              for mttf_ms in (None, *mttfs_ms)]
    results = run_tasks(
        [Task(_fault_task,
              (policy, trace, n_replicas,
               None if mttf_ms is None else plans[mttf_ms],
               config.run_seed),
              key=f"{policy}/mttf="
                  f"{'inf' if mttf_ms is None else f'{mttf_ms:g}'}")
         for policy, mttf_ms in points],
        config.workers)
    by_point = dict(zip(points, results))
    rows: list[dict[str, typing.Any]] = []
    for policy in policies:
        baseline = by_point[(policy, None)]
        rows.append(_row(policy, float("inf"), baseline,
                         baseline_percent=baseline.total_percent))
        for mttf_ms in mttfs_ms:
            rows.append(_row(policy, mttf_ms / 1000.0,
                             by_point[(policy, mttf_ms)],
                             baseline_percent=baseline.total_percent))
    return rows


def _fault_task(policy: str, trace: Trace, n_replicas: int,
                plan: FaultPlan | None, master_seed: int) -> ClusterResult:
    # Fresh router per run: routers are stateful (cycle position, hedges).
    return run_cluster_simulation(
        n_replicas, lambda: make_scheduler(policy), trace,
        QCFactory.balanced(), router=HedgedRouter(),
        master_seed=master_seed, fault_plan=plan)


def _row(policy: str, mttf_s: float, result: ClusterResult,
         baseline_percent: float) -> dict[str, typing.Any]:
    counters = result.counters
    retention = (result.total_percent / baseline_percent
                 if baseline_percent > 0 else 0.0)
    return {
        "policy": policy,
        "mttf_s": mttf_s,
        "total%": result.total_percent,
        "retention": retention,
        "availability": result.availability,
        "crashes": counters.get("replica_crashes", 0),
        "failovers": counters.get("queries_failed_over", 0),
        "retries": counters.get("query_retries", 0),
        "lost": counters.get("queries_lost_crash", 0),
        "resynced": counters.get("updates_resynced", 0),
    }
