"""Profit accounting and result aggregation."""

from .profit import ProfitLedger
from .results import SimulationResult, improvement_percent

__all__ = ["ProfitLedger", "SimulationResult", "improvement_percent"]
