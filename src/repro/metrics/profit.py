"""Profit accounting: the ledger behind every figure in the paper.

The ledger tracks, over a simulation run (symbols from Table 1):

* ``QOSmax`` / ``QODmax`` / ``Qmax`` — the maximum profit *submitted*
  (summed over all queries' contracts);
* ``QOS`` / ``QOD`` / ``Q`` — the profit actually *gained*;
* the profit-percentage views the figures plot (``QOS% = QOS / Qmax`` etc.);
* time series of submitted maxima and gained profit (Figure 9's curves);
* response-time and staleness tallies (Figure 1);
* transaction outcome counters.
"""

from __future__ import annotations

from repro.db.transactions import Query, Update
from repro.sim.monitor import CounterSet, Tally, TimeSeries


class ProfitLedger:
    """Accumulates profit, latency, and staleness statistics for one run."""

    def __init__(self) -> None:
        # Submitted maxima (denominators).
        self.qos_max_submitted = 0.0
        self.qod_max_submitted = 0.0
        # Gained profit (numerators).
        self.qos_gained = 0.0
        self.qod_gained = 0.0

        # Distributions.
        self.response_time = Tally("response_time_ms")
        self.staleness = Tally("staleness_uu")
        self.query_restarts = Tally("query_restarts")

        # Outcome counters.
        self.counters = CounterSet()

        # Time series for Figure 9 (times are submission/commit instants).
        self.submitted_qos_series = TimeSeries("submitted_qosmax")
        self.submitted_qod_series = TimeSeries("submitted_qodmax")
        self.gained_qos_series = TimeSeries("gained_qos")
        self.gained_qod_series = TimeSeries("gained_qod")

    def __repr__(self) -> str:
        return (f"<ProfitLedger Q={self.total_gained:.2f}/"
                f"{self.total_max:.2f} ({self.total_percent:.1%})>")

    # ------------------------------------------------------------------
    # Event hooks (called by the DatabaseServer)
    # ------------------------------------------------------------------
    def on_query_submitted(self, query: Query, now: float) -> None:
        self.qos_max_submitted += query.qc.qos_max
        self.qod_max_submitted += query.qc.qod_max
        self.submitted_qos_series.record(now, query.qc.qos_max)
        self.submitted_qod_series.record(now, query.qc.qod_max)
        self.counters.increment("queries_submitted")

    def on_query_committed(self, query: Query, now: float) -> None:
        self.qos_gained += query.qos_profit
        self.qod_gained += query.qod_profit
        self.gained_qos_series.record(now, query.qos_profit)
        self.gained_qod_series.record(now, query.qod_profit)
        self.response_time.observe(query.response_time())
        if query.staleness is not None:
            self.staleness.observe(query.staleness)
        self.query_restarts.observe(query.restarts)
        self.counters.increment("queries_committed")

    def on_query_dropped(self, query: Query, now: float) -> None:
        self.counters.increment("queries_dropped_lifetime")

    def on_query_rejected(self, query: Query, now: float,
                          shed: bool = False) -> None:
        """An admission policy declined the query before it entered.

        ``shed=True`` marks rejections made while the policy was in
        overload-shedding mode (graceful degradation), counted separately
        so robustness reports can distinguish steady-state admission
        control from emergency load shedding.
        """
        self.counters.increment("queries_rejected")
        if shed:
            self.counters.increment("queries_shed")

    def on_query_lost_to_crash(self, query: Query, now: float) -> None:
        """The query died with a crashed replica and exhausted its
        failover retries (or the run ended mid-retry).  Its contract's
        maxima stay in the denominators — the contract was broken, not
        declined — so crashes show up as lost profit, never as silently
        shrunk totals."""
        self.counters.increment("queries_lost_crash")

    def on_query_unfinished(self, query: Query) -> None:
        self.counters.increment("queries_unfinished")

    def on_update_applied(self, update: Update, now: float) -> None:
        self.counters.increment("updates_applied")

    def on_update_superseded(self, update: Update, now: float) -> None:
        self.counters.increment("updates_superseded")

    def on_update_unfinished(self, update: Update) -> None:
        self.counters.increment("updates_unfinished")

    def on_restart(self, victim_is_query: bool) -> None:
        self.counters.increment(
            "restarts_queries" if victim_is_query else "restarts_updates")

    # ------------------------------------------------------------------
    # Aggregates (Table 1 symbols)
    # ------------------------------------------------------------------
    @property
    def total_max(self) -> float:
        """``Qmax = QOSmax + QODmax``."""
        return self.qos_max_submitted + self.qod_max_submitted

    @property
    def total_gained(self) -> float:
        """``Q = QOS + QOD``."""
        return self.qos_gained + self.qod_gained

    @property
    def qos_percent(self) -> float:
        """``QOS%``: gained QoS profit as a fraction of ``Qmax``.

        This matches the figures, where the stacked QoS/QoD bars sum to the
        total profit percentage (so each share is normalised by ``Qmax``,
        not by its own maximum).
        """
        return self.qos_gained / self.total_max if self.total_max else 0.0

    @property
    def qod_percent(self) -> float:
        """``QOD%``: gained QoD profit as a fraction of ``Qmax``."""
        return self.qod_gained / self.total_max if self.total_max else 0.0

    @property
    def total_percent(self) -> float:
        """``Q / Qmax``: the total height of the figures' stacked bars."""
        return self.total_gained / self.total_max if self.total_max else 0.0

    @property
    def qos_max_percent(self) -> float:
        """``QOSmax%``: the diagonal line of Figures 7/8."""
        return (self.qos_max_submitted / self.total_max
                if self.total_max else 0.0)

    @property
    def qod_max_percent(self) -> float:
        return (self.qod_max_submitted / self.total_max
                if self.total_max else 0.0)
