"""Run results: everything a figure or table needs from one simulation.

:class:`SimulationResult` bundles the profit ledger, the scheduler's own
telemetry (e.g. QUTS's ρ trajectory), lock-manager statistics, and run
metadata.  It also provides the smoothed time-series views used by
Figure 9 (5-second moving window over per-second profit buckets).
"""

from __future__ import annotations

import typing

from repro.sim.monitor import TimeSeries

from .profit import ProfitLedger

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.telemetry.hooks import TelemetrySession


class SimulationResult:
    """The outcome of one scheduler × workload simulation."""

    def __init__(self, scheduler_name: str, duration: float,
                 ledger: ProfitLedger,
                 rho_series: TimeSeries | None = None,
                 lock_stats: dict[str, int] | None = None,
                 metadata: dict[str, typing.Any] | None = None,
                 telemetry: "TelemetrySession | None" = None) -> None:
        self.scheduler_name = scheduler_name
        #: Simulated duration in milliseconds.
        self.duration = duration
        self.ledger = ledger
        #: QUTS's ρ over time (None for other schedulers) — Figure 9d.
        self.rho_series = rho_series
        self.lock_stats = lock_stats or {}
        self.metadata = metadata or {}
        #: The run's :class:`~repro.telemetry.hooks.TelemetrySession`
        #: (None unless the run was started with ``telemetry=``).
        self.telemetry = telemetry

    def __repr__(self) -> str:
        return (f"<SimulationResult {self.scheduler_name} "
                f"Q%={self.ledger.total_percent:.3f} "
                f"rt={self.mean_response_time:.1f}ms "
                f"#uu={self.mean_staleness:.3f}>")

    # ------------------------------------------------------------------
    # Figure 1 metrics
    # ------------------------------------------------------------------
    @property
    def mean_response_time(self) -> float:
        """Average response time over committed queries (ms)."""
        return self.ledger.response_time.mean

    @property
    def mean_staleness(self) -> float:
        """Average ``#uu`` observed by committed queries."""
        return self.ledger.staleness.mean

    # ------------------------------------------------------------------
    # Profit views (Figures 6-10)
    # ------------------------------------------------------------------
    @property
    def qos_percent(self) -> float:
        return self.ledger.qos_percent

    @property
    def qod_percent(self) -> float:
        return self.ledger.qod_percent

    @property
    def total_percent(self) -> float:
        return self.ledger.total_percent

    @property
    def counters(self) -> dict[str, int]:
        return self.ledger.counters.as_dict()

    # ------------------------------------------------------------------
    # Figure 9 time series
    # ------------------------------------------------------------------
    def profit_timeline(self, which: typing.Literal["qos", "qod", "total"],
                        bucket_ms: float = 1000.0,
                        window_ms: float = 5000.0,
                        gained: bool = True) -> TimeSeries:
        """Per-bucket (default per-second) profit, moving-window smoothed.

        ``gained=False`` returns the *submitted maxima* series instead (the
        dashed "ideal" lines of Figure 9a-c).
        """
        ledger = self.ledger
        if gained:
            qos, qod = ledger.gained_qos_series, ledger.gained_qod_series
        else:
            qos, qod = ledger.submitted_qos_series, ledger.submitted_qod_series
        if which == "qos":
            raw = qos
        elif which == "qod":
            raw = qod
        else:
            raw = _merge_series(qos, qod, name="total")
        bucketed = raw.bucket_sums(bucket_ms, start=0.0, end=self.duration)
        if window_ms and window_ms > bucket_ms:
            return bucketed.moving_window_average(window_ms)
        return bucketed


def _merge_series(a: TimeSeries, b: TimeSeries, name: str) -> TimeSeries:
    """Merge two time-ordered series into one (stable by time)."""
    merged = TimeSeries(name)
    ia, ib = 0, 0
    na, nb = len(a), len(b)
    while ia < na or ib < nb:
        take_a = ib >= nb or (ia < na and a.times[ia] <= b.times[ib])
        if take_a:
            merged.record(a.times[ia], a.values[ia])
            ia += 1
        else:
            merged.record(b.times[ib], b.values[ib])
            ib += 1
    return merged


def improvement_percent(ours: float, baseline: float) -> float:
    """"X performs N% better than Y" as the paper phrases it (§5.1.2)."""
    if baseline <= 0:
        return float("inf") if ours > 0 else 0.0
    return (ours - baseline) / baseline * 100.0
