"""The simlint ruleset: the repository's determinism invariants as code.

Each rule encodes one of the guarantees the experiments depend on.
They are deliberately conservative: matching is driven by the module's
import table (see :class:`repro.analysis.core.ImportTable`), so a local
variable that happens to be called ``random`` never trips a rule, and
an aliased ``import numpy.random as nr`` still does.

================== ==================================================
rule id            invariant
================== ==================================================
no-wall-clock      simulated time only — results must not depend on
                   the host clock
no-global-rng      all randomness flows through named, seeded
                   StreamRegistry streams
picklable-tasks    parallel sweeps fork tasks to worker processes;
                   lambdas and closures do not survive pickling
slots-hygiene      hot-path classes stay ``__slots__``-based, and do
                   not share mutable class-level state
no-float-eq-on-clock  the simulated clock is a float; exact equality
                   against it is seed-dependent luck
exception-hygiene  scheduler/db/WAL hot paths may not swallow errors
                   that the invariant monitor needs to see
no-ambient-entropy fault/chaos code may not read OS entropy (urandom,
                   uuid4, secrets) — schedules must derive from the
                   master seed alone
single-event-queue only ``sim.environment`` owns an event-queue
                   implementation; no second heapq in the kernel
                   package, no poking ``_cal_*`` internals, no
                   HeapEnvironment in library code
================== ==================================================
"""

from __future__ import annotations

import ast
import typing

from .core import Rule, SourceModule

__all__ = ["ALL_RULES", "AmbientEntropyRule", "ClockEqualityRule",
           "ExceptionHygieneRule", "GlobalRngRule", "PicklableTaskRule",
           "SingleEventQueueRule", "SlotsHygieneRule", "WallClockRule"]

#: Directories holding the simulator's hot paths: classes here are
#: constructed millions of times per run and stay ``__slots__``-based.
HOT_PATHS = ("src/repro/sim", "src/repro/scheduling", "src/repro/db")


# ----------------------------------------------------------------------
class WallClockRule(Rule):
    """Ban host wall-clock reads: results depend on simulated time only.

    Reading ``time.time()`` (or any sibling) makes output depend on
    host speed and scheduling, which breaks bit-identical replay and
    the parallel-equals-sequential sweep contract.  Simulation code
    must use ``Environment.now``.
    """

    rule_id = "no-wall-clock"
    summary = ("host clock read (time.time/perf_counter/datetime.now "
               "...); use the simulated clock Environment.now")

    #: The one module allowed to touch the host clock: the live
    #: gateway's clock abstraction.  Everything else in
    #: ``src/repro/serve/`` must go through its MonotonicClock so the
    #: serving stack stays testable against a ManualClock.
    exempt = ("src/repro/serve/clock.py",)

    BANNED: typing.ClassVar[frozenset[str]] = frozenset({
        "time.time", "time.time_ns",
        "time.monotonic", "time.monotonic_ns",
        "time.perf_counter", "time.perf_counter_ns",
        "time.process_time", "time.process_time_ns",
        "time.clock_gettime", "time.clock_gettime_ns",
        "time.localtime", "time.gmtime", "time.ctime", "time.asctime",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
    })

    def _flag(self, node: ast.AST, what: str) -> None:
        assert self.module is not None
        if self.module.relpath.startswith("src/repro/serve/"):
            # The live serving stack has a legal clock — but only
            # behind the abstraction in repro.serve.clock (the exempt
            # module above); direct reads elsewhere defeat ManualClock
            # testability.
            self.report(node, f"{what} outside repro.serve.clock; the "
                              f"serving stack must read time through "
                              f"the gateway's MonotonicClock")
            return
        self.report(node, what)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        assert self.module is not None
        target = self.module.imports.resolve(node)
        if target in self.BANNED:
            self._flag(node, f"reads the host clock via '{target}'")

    def visit_Name(self, node: ast.Name) -> None:
        # Catches uses of `from time import perf_counter` style imports
        # (the import itself is flagged by visit_ImportFrom).
        if not isinstance(node.ctx, ast.Load):
            return
        assert self.module is not None
        target = self.module.imports.resolve(node)
        if target in self.BANNED:
            self._flag(node, f"reads the host clock via '{target}'")

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level or node.module is None:
            return
        for alias in node.names:
            if f"{node.module}.{alias.name}" in self.BANNED:
                self._flag(node,
                           f"imports the host clock function "
                           f"'{node.module}.{alias.name}'")


# ----------------------------------------------------------------------
class GlobalRngRule(Rule):
    """Ban the global/stdlib RNGs outside ``repro/sim/rng.py``.

    Global ``random.*`` state is shared across the whole process: any
    draw outside a named stream perturbs every later draw, so two runs
    of "the same" experiment diverge as soon as any unrelated code
    consumes randomness.  All randomness must come from
    ``StreamRegistry.stream(name)``.
    """

    rule_id = "no-global-rng"
    summary = ("global random module / numpy.random used outside "
               "repro/sim/rng.py; draw from a StreamRegistry stream")
    exempt = ("src/repro/sim/rng.py",)

    BANNED_MODULES: typing.ClassVar[frozenset[str]] = frozenset({
        "random", "numpy.random",
    })

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name in self.BANNED_MODULES:
                self.report(node,
                            f"imports '{alias.name}'; use "
                            f"repro.sim.rng.StreamRegistry streams")

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level or node.module is None:
            return
        if node.module in self.BANNED_MODULES:
            self.report(node,
                        f"imports from '{node.module}'; use "
                        f"repro.sim.rng.StreamRegistry streams")
        elif node.module == "numpy":
            for alias in node.names:
                if alias.name == "random":
                    self.report(node, "imports 'numpy.random'; use "
                                      "StreamRegistry streams")

    def visit_Attribute(self, node: ast.Attribute) -> None:
        assert self.module is not None
        target = self.module.imports.resolve(node)
        if target is None:
            return
        for banned in self.BANNED_MODULES:
            if target.startswith(banned + "."):
                self.report(node,
                            f"uses global RNG '{target}'; draw from a "
                            f"named StreamRegistry stream instead")
                return


# ----------------------------------------------------------------------
class PicklableTaskRule(Rule):
    """Lambdas/closures must not be handed to the parallel runner.

    ``repro.parallel.run_tasks`` ships each :class:`~repro.parallel.
    Task` to a worker process via pickling.  Lambdas and functions
    defined inside another function cannot be pickled, so the sweep
    dies at fan-out time — but only when ``--workers > 1``, which is
    exactly when nobody is watching.  Task functions must be
    module-level.
    """

    rule_id = "picklable-tasks"
    summary = ("lambda or nested function handed to repro.parallel "
               "(Task/run_tasks); task functions must be module-level "
               "and picklable")

    TARGETS: typing.ClassVar[frozenset[str]] = frozenset({
        "repro.parallel.Task", "repro.parallel.run_tasks",
    })

    def __init__(self) -> None:
        super().__init__()
        self._nested: set[str] = set()

    def begin_module(self, module: SourceModule) -> None:
        super().begin_module(module)
        self._nested = _nested_function_names(module.tree)

    def visit_Call(self, node: ast.Call) -> None:
        assert self.module is not None
        target = self.module.imports.resolve(node.func)
        if target not in self.TARGETS:
            return
        short = target.rsplit(".", 1)[1]
        fn_args: list[ast.expr] = []
        if node.args:
            fn_args.append(node.args[0])
        fn_args.extend(kw.value for kw in node.keywords
                       if kw.arg in ("fn", "tasks"))
        for arg in fn_args:
            for sub in ast.walk(arg):
                if isinstance(sub, ast.Lambda):
                    self.report(sub,
                                f"lambda passed to {short}(); lambdas "
                                f"cannot be pickled to worker "
                                f"processes")
                elif (isinstance(sub, ast.Name)
                        and isinstance(sub.ctx, ast.Load)
                        and sub.id in self._nested):
                    self.report(sub,
                                f"nested function '{sub.id}' passed to "
                                f"{short}(); closures cannot be "
                                f"pickled to worker processes")


def _nested_function_names(tree: ast.Module) -> set[str]:
    """Names of functions defined inside another function."""
    nested: set[str] = set()

    def walk(node: ast.AST, inside_function: bool) -> None:
        for child in ast.iter_child_nodes(node):
            is_func = isinstance(child, (ast.FunctionDef,
                                         ast.AsyncFunctionDef))
            if is_func and inside_function:
                nested.add(child.name)  # type: ignore[attr-defined]
            walk(child, inside_function or is_func)

    walk(tree, False)
    return nested


# ----------------------------------------------------------------------
class SlotsHygieneRule(Rule):
    """Hot-path subclasses must declare ``__slots__``; no shared state.

    The event kernel allocates events, transactions and lock records
    millions of times per run; PR 3's 1.44x event-rate win rests on
    them being ``__slots__``-based.  A subclass without ``__slots__``
    silently re-grows a per-instance ``__dict__`` and undoes that.
    Class-level mutable defaults (``cache = {}``) are shared across
    every instance — a determinism hazard when two simulations run in
    one process.
    """

    rule_id = "slots-hygiene"
    summary = ("hot-path subclass without __slots__, or class-level "
               "mutable default shared across instances")
    scope = HOT_PATHS

    def __init__(self) -> None:
        super().__init__()
        self._slotted: set[str] = set()

    def prepare(self,
                modules: typing.Sequence[SourceModule]) -> None:
        for module in modules:
            if not self.applies_to(module):
                continue
            for node in ast.walk(module.tree):
                if (isinstance(node, ast.ClassDef)
                        and _declares_slots(node)):
                    self._slotted.add(node.name)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        slotted_bases = [base for base in node.bases
                         if _base_name(base) in self._slotted]
        if slotted_bases and not _declares_slots(node):
            names = ", ".join(sorted(_base_name(b) or "?"
                                     for b in slotted_bases))
            self.report(node,
                        f"class '{node.name}' subclasses __slots__ "
                        f"class(es) {names} but declares no __slots__ "
                        f"(re-introduces a per-instance __dict__ on a "
                        f"hot path)")
        for stmt in node.body:
            target = _class_attr_target(stmt)
            if target is None or target == "__slots__":
                continue
            value = stmt.value  # type: ignore[attr-defined]
            if _is_mutable_literal(value):
                self.report(stmt,
                            f"class-level mutable default "
                            f"'{node.name}.{target}' is shared by "
                            f"every instance; initialise it in "
                            f"__init__ instead")


def _declares_slots(node: ast.ClassDef) -> bool:
    for stmt in node.body:
        if _class_attr_target(stmt) == "__slots__":
            return True
    return False


def _class_attr_target(stmt: ast.stmt) -> str | None:
    if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
        target = stmt.targets[0]
    elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        target = stmt.target
    else:
        return None
    return target.id if isinstance(target, ast.Name) else None


def _base_name(base: ast.expr) -> str | None:
    if isinstance(base, ast.Name):
        return base.id
    if isinstance(base, ast.Attribute):
        return base.attr
    return None


def _is_mutable_literal(value: ast.expr | None) -> bool:
    if isinstance(value, (ast.List, ast.Dict, ast.Set)):
        return True
    return (isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in ("list", "dict", "set")
            and not value.args and not value.keywords)


# ----------------------------------------------------------------------
class ClockEqualityRule(Rule):
    """No ``==``/``!=`` against the simulated clock.

    ``Environment.now`` is a float accumulated by event stepping;
    whether two times compare exactly equal depends on summation
    order, which is exactly what changes between runs and platforms.
    Use ``<=``/``>=`` windows or an explicit tolerance.
    """

    rule_id = "no-float-eq-on-clock"
    summary = ("== / != comparison against the simulated clock "
               "(.now); use an ordering or a tolerance")

    def visit_Compare(self, node: ast.Compare) -> None:
        if not any(isinstance(op, (ast.Eq, ast.NotEq))
                   for op in node.ops):
            return
        for operand in (node.left, *node.comparators):
            if _is_clock_expr(operand):
                self.report(node,
                            "exact equality against the simulated "
                            "clock is float-summation luck; compare "
                            "with an ordering or tolerance")
                return


def _is_clock_expr(node: ast.expr) -> bool:
    if isinstance(node, ast.Attribute) and node.attr == "now":
        return True
    return isinstance(node, ast.Name) and node.id == "now"


# ----------------------------------------------------------------------
class ExceptionHygieneRule(Rule):
    """No bare ``except:``; no swallow-and-``pass`` on hot paths.

    The invariant monitor (``repro.sim.invariants``) and the WAL's
    crash-consistency checks surface violations as exceptions.  A bare
    ``except:`` (which also eats ``KeyboardInterrupt``) or a broad
    handler whose body is just ``pass`` hides exactly the failures
    those subsystems exist to report.
    """

    rule_id = "exception-hygiene"
    summary = ("bare except, or broad except-and-pass in a "
               "scheduler/db/sim hot path")

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        assert self.module is not None
        if node.type is None:
            self.report(node,
                        "bare 'except:' catches SystemExit and "
                        "KeyboardInterrupt; name the exception(s)")
            return
        in_hot_path = any(
            self.module.relpath == prefix
            or self.module.relpath.startswith(prefix + "/")
            for prefix in HOT_PATHS)
        if not in_hot_path:
            return
        is_broad = (isinstance(node.type, ast.Name)
                    and node.type.id in ("Exception", "BaseException"))
        only_pass = (len(node.body) == 1
                     and isinstance(node.body[0], ast.Pass))
        if is_broad and only_pass:
            self.report(node,
                        "broad except-and-pass on a hot path swallows "
                        "invariant violations; handle or re-raise")


# ----------------------------------------------------------------------
class AmbientEntropyRule(Rule):
    """No OS entropy: schedules must derive from the master seed alone.

    The chaos harness's whole value rests on ``repro chaos --seed N``
    reproducing bit-identical schedules, verdicts, and shrunk repro
    artifacts.  ``os.urandom``, ``uuid.uuid4`` and the ``secrets``
    module read kernel entropy that no seed controls — one call
    anywhere in simulation or fault code silently turns a repro
    artifact into a one-off.  (Wall clocks, the other ambient entropy
    source, are banned by ``no-wall-clock``.)
    """

    rule_id = "no-ambient-entropy"
    summary = ("OS entropy read (os.urandom/uuid4/secrets); derive all "
               "randomness from seeded StreamRegistry streams")

    BANNED: typing.ClassVar[frozenset[str]] = frozenset({
        "os.urandom", "os.getrandom",
        "uuid.uuid1", "uuid.uuid4",
    })
    BANNED_MODULES: typing.ClassVar[frozenset[str]] = frozenset({
        "secrets",
    })

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name in self.BANNED_MODULES:
                self.report(node,
                            f"imports '{alias.name}' (kernel entropy); "
                            f"derive randomness from StreamRegistry "
                            f"streams")

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level or node.module is None:
            return
        if node.module in self.BANNED_MODULES:
            self.report(node,
                        f"imports from '{node.module}' (kernel "
                        f"entropy); derive randomness from "
                        f"StreamRegistry streams")
            return
        for alias in node.names:
            if f"{node.module}.{alias.name}" in self.BANNED:
                self.report(node,
                            f"imports the entropy source "
                            f"'{node.module}.{alias.name}'")

    def _check(self, node: ast.expr) -> None:
        assert self.module is not None
        target = self.module.imports.resolve(node)
        if target is None:
            return
        if target in self.BANNED or any(
                target.startswith(mod + ".")
                for mod in self.BANNED_MODULES):
            self.report(node,
                        f"reads OS entropy via '{target}'; no seed "
                        f"reproduces it — use a named StreamRegistry "
                        f"stream")

    def visit_Attribute(self, node: ast.Attribute) -> None:
        self._check(node)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self._check(node)


# ----------------------------------------------------------------------
class SingleEventQueueRule(Rule):
    """Only ``sim.environment`` may own an event-queue implementation.

    The calendar queue's fidelity guarantee — every event dispatches in
    exact ``(time, priority, eid)`` order — holds because that
    tie-break lives in one module.  A second queue silently forks the
    contract, so library code may not: import ``heapq`` inside the
    kernel package (``repro.sim``), reach into the ``_cal_*`` calendar
    internals, or run on :class:`~repro.sim.environment.HeapEnvironment`
    (the previous heap kernel, kept solely as the executable
    specification for the A/B benchmarks and equivalence tests).
    ``heapq`` outside the kernel package — e.g. the transaction queues
    in ``repro.scheduling`` — orders transactions, not events, and
    stays legal.
    """

    rule_id = "single-event-queue"
    summary = ("event-queue implementation outside sim.environment "
               "(heapq in the kernel package, _cal_* internals, or "
               "HeapEnvironment in library code)")
    scope = ("src/repro",)
    exempt = ("src/repro/sim/environment.py",)

    #: The kernel package, where a stray heapq can only mean a rival
    #: event queue.
    KERNEL_PATH: typing.ClassVar[str] = "src/repro/sim"
    HEAP_KERNEL: typing.ClassVar[str] = \
        "repro.sim.environment.HeapEnvironment"

    def _in_kernel(self) -> bool:
        assert self.module is not None
        relpath = self.module.relpath
        return (relpath == self.KERNEL_PATH
                or relpath.startswith(self.KERNEL_PATH + "/"))

    def visit_Import(self, node: ast.Import) -> None:
        if not self._in_kernel():
            return
        for alias in node.names:
            if alias.name == "heapq":
                self.report(node,
                            "imports heapq inside the kernel package; "
                            "the event queue lives in sim.environment "
                            "only")

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "heapq" and not node.level \
                and self._in_kernel():
            self.report(node,
                        "imports from heapq inside the kernel package; "
                        "the event queue lives in sim.environment only")
            return
        for alias in node.names:
            if alias.name == "HeapEnvironment":
                self.report(node,
                            "imports HeapEnvironment; the heap kernel "
                            "is the benchmarks' executable spec — "
                            "library code runs on Environment")

    def _check_heap_kernel(self, node: ast.expr) -> None:
        assert self.module is not None
        if self.module.imports.resolve(node) == self.HEAP_KERNEL:
            self.report(node,
                        "uses HeapEnvironment; the heap kernel is the "
                        "benchmarks' executable spec — library code "
                        "runs on Environment")

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node.attr.startswith("_cal_"):
            self.report(node,
                        f"touches the calendar-queue internal "
                        f"'{node.attr}'; only sim.environment may "
                        f"manage event-queue state")
            return
        self._check_heap_kernel(node)


ALL_RULES: tuple[type[Rule], ...] = (
    WallClockRule,
    GlobalRngRule,
    PicklableTaskRule,
    SlotsHygieneRule,
    ClockEqualityRule,
    ExceptionHygieneRule,
    AmbientEntropyRule,
    SingleEventQueueRule,
)
