"""The simlint ruleset: the repository's determinism invariants as code.

Each rule encodes one of the guarantees the experiments depend on.
They are deliberately conservative: matching is driven by the module's
import table (see :class:`repro.analysis.core.ImportTable`), so a local
variable that happens to be called ``random`` never trips a rule, and
an aliased ``import numpy.random as nr`` still does.

================== ==================================================
rule id            invariant
================== ==================================================
no-wall-clock      simulated time only — results must not depend on
                   the host clock
no-global-rng      all randomness flows through named, seeded
                   StreamRegistry streams
picklable-tasks    parallel sweeps fork tasks to worker processes;
                   lambdas and closures do not survive pickling
slots-hygiene      hot-path classes stay ``__slots__``-based, and do
                   not share mutable class-level state
no-float-eq-on-clock  the simulated clock is a float; exact equality
                   against it is seed-dependent luck
exception-hygiene  scheduler/db/WAL hot paths may not swallow errors
                   that the invariant monitor needs to see
no-ambient-entropy fault/chaos code may not read OS entropy (urandom,
                   uuid4, secrets) — schedules must derive from the
                   master seed alone
single-event-queue only ``sim.environment`` owns an event-queue
                   implementation; no second heapq in the kernel
                   package, no poking ``_cal_*`` internals, no
                   HeapEnvironment in library code
no-entropy-taint   host-entropy values (wall clock, OS randomness,
                   unseeded RNGs) may not flow — even through
                   function returns — into event scheduling
no-set-iteration   library code may not iterate over sets;
                   hash-randomized order is a replay hazard
================== ==================================================
"""

from __future__ import annotations

import ast
import typing

from .core import ProjectGraph, Rule, SourceModule

__all__ = ["ALL_RULES", "AmbientEntropyRule", "ClockEqualityRule",
           "EntropyTaintRule", "ExceptionHygieneRule", "GlobalRngRule",
           "PicklableTaskRule", "SetIterationRule",
           "SingleEventQueueRule", "SlotsHygieneRule", "WallClockRule"]

#: Directories holding the simulator's hot paths: classes here are
#: constructed millions of times per run and stay ``__slots__``-based.
HOT_PATHS = ("src/repro/sim", "src/repro/scheduling", "src/repro/db")


# ----------------------------------------------------------------------
class WallClockRule(Rule):
    """Ban host wall-clock reads: results depend on simulated time only.

    Reading ``time.time()`` (or any sibling) makes output depend on
    host speed and scheduling, which breaks bit-identical replay and
    the parallel-equals-sequential sweep contract.  Simulation code
    must use ``Environment.now``.
    """

    rule_id = "no-wall-clock"
    summary = ("host clock read (time.time/perf_counter/datetime.now "
               "...); use the simulated clock Environment.now")

    #: The one module allowed to touch the host clock: the live
    #: gateway's clock abstraction.  Everything else in
    #: ``src/repro/serve/`` must go through its MonotonicClock so the
    #: serving stack stays testable against a ManualClock.
    exempt = ("src/repro/serve/clock.py",)

    BANNED: typing.ClassVar[frozenset[str]] = frozenset({
        "time.time", "time.time_ns",
        "time.monotonic", "time.monotonic_ns",
        "time.perf_counter", "time.perf_counter_ns",
        "time.process_time", "time.process_time_ns",
        "time.clock_gettime", "time.clock_gettime_ns",
        "time.localtime", "time.gmtime", "time.ctime", "time.asctime",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
    })

    def _flag(self, node: ast.AST, what: str) -> None:
        assert self.module is not None
        if self.module.relpath.startswith("src/repro/serve/"):
            # The live serving stack has a legal clock — but only
            # behind the abstraction in repro.serve.clock (the exempt
            # module above); direct reads elsewhere defeat ManualClock
            # testability.
            self.report(node, f"{what} outside repro.serve.clock; the "
                              f"serving stack must read time through "
                              f"the gateway's MonotonicClock")
            return
        self.report(node, what)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        assert self.module is not None
        target = self.module.imports.resolve(node)
        if target in self.BANNED:
            self._flag(node, f"reads the host clock via '{target}'")

    def visit_Name(self, node: ast.Name) -> None:
        # Catches uses of `from time import perf_counter` style imports
        # (the import itself is flagged by visit_ImportFrom).
        if not isinstance(node.ctx, ast.Load):
            return
        assert self.module is not None
        target = self.module.imports.resolve(node)
        if target in self.BANNED:
            self._flag(node, f"reads the host clock via '{target}'")

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level or node.module is None:
            return
        for alias in node.names:
            if f"{node.module}.{alias.name}" in self.BANNED:
                self._flag(node,
                           f"imports the host clock function "
                           f"'{node.module}.{alias.name}'")


# ----------------------------------------------------------------------
class GlobalRngRule(Rule):
    """Ban the global/stdlib RNGs outside ``repro/sim/rng.py``.

    Global ``random.*`` state is shared across the whole process: any
    draw outside a named stream perturbs every later draw, so two runs
    of "the same" experiment diverge as soon as any unrelated code
    consumes randomness.  All randomness must come from
    ``StreamRegistry.stream(name)``.
    """

    rule_id = "no-global-rng"
    summary = ("global random module / numpy.random used outside "
               "repro/sim/rng.py; draw from a StreamRegistry stream")
    exempt = ("src/repro/sim/rng.py",)

    BANNED_MODULES: typing.ClassVar[frozenset[str]] = frozenset({
        "random", "numpy.random",
    })

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name in self.BANNED_MODULES:
                self.report(node,
                            f"imports '{alias.name}'; use "
                            f"repro.sim.rng.StreamRegistry streams")

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level or node.module is None:
            return
        if node.module in self.BANNED_MODULES:
            self.report(node,
                        f"imports from '{node.module}'; use "
                        f"repro.sim.rng.StreamRegistry streams")
        elif node.module == "numpy":
            for alias in node.names:
                if alias.name == "random":
                    self.report(node, "imports 'numpy.random'; use "
                                      "StreamRegistry streams")

    def visit_Attribute(self, node: ast.Attribute) -> None:
        assert self.module is not None
        target = self.module.imports.resolve(node)
        if target is None:
            return
        for banned in self.BANNED_MODULES:
            if target.startswith(banned + "."):
                self.report(node,
                            f"uses global RNG '{target}'; draw from a "
                            f"named StreamRegistry stream instead")
                return


# ----------------------------------------------------------------------
class PicklableTaskRule(Rule):
    """Lambdas/closures must not be handed to the parallel runner.

    ``repro.parallel.run_tasks`` ships each :class:`~repro.parallel.
    Task` to a worker process via pickling.  Lambdas and functions
    defined inside another function cannot be pickled, so the sweep
    dies at fan-out time — but only when ``--workers > 1``, which is
    exactly when nobody is watching.  Task functions must be
    module-level.
    """

    rule_id = "picklable-tasks"
    summary = ("lambda or nested function handed to repro.parallel "
               "(Task/run_tasks); task functions must be module-level "
               "and picklable")

    TARGETS: typing.ClassVar[frozenset[str]] = frozenset({
        "repro.parallel.Task", "repro.parallel.run_tasks",
    })

    def __init__(self) -> None:
        super().__init__()
        self._nested: set[str] = set()

    def begin_module(self, module: SourceModule) -> None:
        super().begin_module(module)
        self._nested = _nested_function_names(module.tree)

    def visit_Call(self, node: ast.Call) -> None:
        assert self.module is not None
        target = self.module.imports.resolve(node.func)
        if target not in self.TARGETS:
            return
        short = target.rsplit(".", 1)[1]
        fn_args: list[ast.expr] = []
        if node.args:
            fn_args.append(node.args[0])
        fn_args.extend(kw.value for kw in node.keywords
                       if kw.arg in ("fn", "tasks"))
        for arg in fn_args:
            for sub in ast.walk(arg):
                if isinstance(sub, ast.Lambda):
                    self.report(sub,
                                f"lambda passed to {short}(); lambdas "
                                f"cannot be pickled to worker "
                                f"processes")
                elif (isinstance(sub, ast.Name)
                        and isinstance(sub.ctx, ast.Load)
                        and sub.id in self._nested):
                    self.report(sub,
                                f"nested function '{sub.id}' passed to "
                                f"{short}(); closures cannot be "
                                f"pickled to worker processes")


def _nested_function_names(tree: ast.Module) -> set[str]:
    """Names of functions defined inside another function."""
    nested: set[str] = set()

    def walk(node: ast.AST, inside_function: bool) -> None:
        for child in ast.iter_child_nodes(node):
            is_func = isinstance(child, (ast.FunctionDef,
                                         ast.AsyncFunctionDef))
            if is_func and inside_function:
                nested.add(child.name)  # type: ignore[attr-defined]
            walk(child, inside_function or is_func)

    walk(tree, False)
    return nested


# ----------------------------------------------------------------------
class SlotsHygieneRule(Rule):
    """Hot-path subclasses must declare ``__slots__``; no shared state.

    The event kernel allocates events, transactions and lock records
    millions of times per run; PR 3's 1.44x event-rate win rests on
    them being ``__slots__``-based.  A subclass without ``__slots__``
    silently re-grows a per-instance ``__dict__`` and undoes that.
    Class-level mutable defaults (``cache = {}``) are shared across
    every instance — a determinism hazard when two simulations run in
    one process.
    """

    rule_id = "slots-hygiene"
    summary = ("hot-path subclass without __slots__, or class-level "
               "mutable default shared across instances")
    scope = HOT_PATHS

    def __init__(self) -> None:
        super().__init__()
        self._slotted: set[str] = set()

    def prepare(self,
                modules: typing.Sequence[SourceModule]) -> None:
        for module in modules:
            if not self.applies_to(module):
                continue
            for node in ast.walk(module.tree):
                if (isinstance(node, ast.ClassDef)
                        and _declares_slots(node)):
                    self._slotted.add(node.name)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        slotted_bases = [base for base in node.bases
                         if _base_name(base) in self._slotted]
        if slotted_bases and not _declares_slots(node):
            names = ", ".join(sorted(_base_name(b) or "?"
                                     for b in slotted_bases))
            self.report(node,
                        f"class '{node.name}' subclasses __slots__ "
                        f"class(es) {names} but declares no __slots__ "
                        f"(re-introduces a per-instance __dict__ on a "
                        f"hot path)")
        for stmt in node.body:
            target = _class_attr_target(stmt)
            if target is None or target == "__slots__":
                continue
            value = stmt.value  # type: ignore[attr-defined]
            if _is_mutable_literal(value):
                self.report(stmt,
                            f"class-level mutable default "
                            f"'{node.name}.{target}' is shared by "
                            f"every instance; initialise it in "
                            f"__init__ instead")


def _declares_slots(node: ast.ClassDef) -> bool:
    for stmt in node.body:
        if _class_attr_target(stmt) == "__slots__":
            return True
    return False


def _class_attr_target(stmt: ast.stmt) -> str | None:
    if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
        target = stmt.targets[0]
    elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        target = stmt.target
    else:
        return None
    return target.id if isinstance(target, ast.Name) else None


def _base_name(base: ast.expr) -> str | None:
    if isinstance(base, ast.Name):
        return base.id
    if isinstance(base, ast.Attribute):
        return base.attr
    return None


def _is_mutable_literal(value: ast.expr | None) -> bool:
    if isinstance(value, (ast.List, ast.Dict, ast.Set)):
        return True
    return (isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in ("list", "dict", "set")
            and not value.args and not value.keywords)


# ----------------------------------------------------------------------
class ClockEqualityRule(Rule):
    """No ``==``/``!=`` against the simulated clock.

    ``Environment.now`` is a float accumulated by event stepping;
    whether two times compare exactly equal depends on summation
    order, which is exactly what changes between runs and platforms.
    Use ``<=``/``>=`` windows or an explicit tolerance.
    """

    rule_id = "no-float-eq-on-clock"
    summary = ("== / != comparison against the simulated clock "
               "(.now); use an ordering or a tolerance")

    def visit_Compare(self, node: ast.Compare) -> None:
        if not any(isinstance(op, (ast.Eq, ast.NotEq))
                   for op in node.ops):
            return
        for operand in (node.left, *node.comparators):
            if _is_clock_expr(operand):
                self.report(node,
                            "exact equality against the simulated "
                            "clock is float-summation luck; compare "
                            "with an ordering or tolerance")
                return


def _is_clock_expr(node: ast.expr) -> bool:
    if isinstance(node, ast.Attribute) and node.attr == "now":
        return True
    return isinstance(node, ast.Name) and node.id == "now"


# ----------------------------------------------------------------------
class ExceptionHygieneRule(Rule):
    """No bare ``except:``; no swallow-and-``pass`` on hot paths.

    The invariant monitor (``repro.sim.invariants``) and the WAL's
    crash-consistency checks surface violations as exceptions.  A bare
    ``except:`` (which also eats ``KeyboardInterrupt``) or a broad
    handler whose body is just ``pass`` hides exactly the failures
    those subsystems exist to report.
    """

    rule_id = "exception-hygiene"
    summary = ("bare except, or broad except-and-pass in a "
               "scheduler/db/sim hot path")

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        assert self.module is not None
        if node.type is None:
            self.report(node,
                        "bare 'except:' catches SystemExit and "
                        "KeyboardInterrupt; name the exception(s)")
            return
        in_hot_path = any(
            self.module.relpath == prefix
            or self.module.relpath.startswith(prefix + "/")
            for prefix in HOT_PATHS)
        if not in_hot_path:
            return
        is_broad = (isinstance(node.type, ast.Name)
                    and node.type.id in ("Exception", "BaseException"))
        only_pass = (len(node.body) == 1
                     and isinstance(node.body[0], ast.Pass))
        if is_broad and only_pass:
            self.report(node,
                        "broad except-and-pass on a hot path swallows "
                        "invariant violations; handle or re-raise")


# ----------------------------------------------------------------------
class AmbientEntropyRule(Rule):
    """No OS entropy: schedules must derive from the master seed alone.

    The chaos harness's whole value rests on ``repro chaos --seed N``
    reproducing bit-identical schedules, verdicts, and shrunk repro
    artifacts.  ``os.urandom``, ``uuid.uuid4`` and the ``secrets``
    module read kernel entropy that no seed controls — one call
    anywhere in simulation or fault code silently turns a repro
    artifact into a one-off.  (Wall clocks, the other ambient entropy
    source, are banned by ``no-wall-clock``.)
    """

    rule_id = "no-ambient-entropy"
    summary = ("OS entropy read (os.urandom/uuid4/secrets); derive all "
               "randomness from seeded StreamRegistry streams")

    BANNED: typing.ClassVar[frozenset[str]] = frozenset({
        "os.urandom", "os.getrandom",
        "uuid.uuid1", "uuid.uuid4",
    })
    BANNED_MODULES: typing.ClassVar[frozenset[str]] = frozenset({
        "secrets",
    })

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name in self.BANNED_MODULES:
                self.report(node,
                            f"imports '{alias.name}' (kernel entropy); "
                            f"derive randomness from StreamRegistry "
                            f"streams")

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level or node.module is None:
            return
        if node.module in self.BANNED_MODULES:
            self.report(node,
                        f"imports from '{node.module}' (kernel "
                        f"entropy); derive randomness from "
                        f"StreamRegistry streams")
            return
        for alias in node.names:
            if f"{node.module}.{alias.name}" in self.BANNED:
                self.report(node,
                            f"imports the entropy source "
                            f"'{node.module}.{alias.name}'")

    def _check(self, node: ast.expr) -> None:
        assert self.module is not None
        target = self.module.imports.resolve(node)
        if target is None:
            return
        if target in self.BANNED or any(
                target.startswith(mod + ".")
                for mod in self.BANNED_MODULES):
            self.report(node,
                        f"reads OS entropy via '{target}'; no seed "
                        f"reproduces it — use a named StreamRegistry "
                        f"stream")

    def visit_Attribute(self, node: ast.Attribute) -> None:
        self._check(node)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self._check(node)


# ----------------------------------------------------------------------
class SingleEventQueueRule(Rule):
    """Only ``sim.environment`` may own an event-queue implementation.

    The calendar queue's fidelity guarantee — every event dispatches in
    exact ``(time, priority, eid)`` order — holds because that
    tie-break lives in one module.  A second queue silently forks the
    contract, so library code may not: import ``heapq`` inside the
    kernel package (``repro.sim``), reach into the ``_cal_*`` calendar
    internals, or run on :class:`~repro.sim.environment.HeapEnvironment`
    (the previous heap kernel, kept solely as the executable
    specification for the A/B benchmarks and equivalence tests).
    ``heapq`` outside the kernel package — e.g. the transaction queues
    in ``repro.scheduling`` — orders transactions, not events, and
    stays legal.
    """

    rule_id = "single-event-queue"
    summary = ("event-queue implementation outside sim.environment "
               "(heapq in the kernel package, _cal_* internals, or "
               "HeapEnvironment in library code)")
    scope = ("src/repro",)
    exempt = ("src/repro/sim/environment.py",)

    #: The kernel package, where a stray heapq can only mean a rival
    #: event queue.
    KERNEL_PATH: typing.ClassVar[str] = "src/repro/sim"
    HEAP_KERNEL: typing.ClassVar[str] = \
        "repro.sim.environment.HeapEnvironment"

    def _in_kernel(self) -> bool:
        assert self.module is not None
        relpath = self.module.relpath
        return (relpath == self.KERNEL_PATH
                or relpath.startswith(self.KERNEL_PATH + "/"))

    def visit_Import(self, node: ast.Import) -> None:
        if not self._in_kernel():
            return
        for alias in node.names:
            if alias.name == "heapq":
                self.report(node,
                            "imports heapq inside the kernel package; "
                            "the event queue lives in sim.environment "
                            "only")

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "heapq" and not node.level \
                and self._in_kernel():
            self.report(node,
                        "imports from heapq inside the kernel package; "
                        "the event queue lives in sim.environment only")
            return
        for alias in node.names:
            if alias.name == "HeapEnvironment":
                self.report(node,
                            "imports HeapEnvironment; the heap kernel "
                            "is the benchmarks' executable spec — "
                            "library code runs on Environment")

    def _check_heap_kernel(self, node: ast.expr) -> None:
        assert self.module is not None
        if self.module.imports.resolve(node) == self.HEAP_KERNEL:
            self.report(node,
                        "uses HeapEnvironment; the heap kernel is the "
                        "benchmarks' executable spec — library code "
                        "runs on Environment")

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node.attr.startswith("_cal_"):
            self.report(node,
                        f"touches the calendar-queue internal "
                        f"'{node.attr}'; only sim.environment may "
                        f"manage event-queue state")
            return
        self._check_heap_kernel(node)


# ----------------------------------------------------------------------
class EntropyTaintRule(Rule):
    """Host entropy may not flow into event scheduling — even indirectly.

    ``no-wall-clock`` and ``no-ambient-entropy`` ban *reading* host
    entropy in simulation code; this rule bans *using* it to decide
    when events fire.  It is interprocedural: a helper that returns
    ``time.monotonic()`` taints its callers through the project call
    graph (:class:`~repro.analysis.core.ProjectGraph`), so laundering a
    wall-clock read through a function return still trips the rule at
    the ``schedule()``/``timeout()`` call site.

    Sources are wall clocks (``time.*``, ``datetime.*``), OS entropy
    (``os.urandom``, ``uuid.uuid4``, ``secrets.*``), and *unseeded*
    RNGs — ``random.Random()`` / ``numpy.random.default_rng()`` with a
    seed argument are legal, the global-state draws (``random.random``
    et al.) never are.  The analysis propagates taint through local
    assignments flow-insensitively and through function returns to a
    fixpoint; it under-approximates aliasing (containers, attributes),
    so it misses some flows but does not invent them.
    """

    rule_id = "no-entropy-taint"
    summary = ("host-entropy value (wall clock, os.urandom, unseeded "
               "RNG) flows into schedule()/timeout(); event timing "
               "must derive from simulated state and seeded streams")

    #: The live gateway's clock module is *about* host time.
    exempt = ("src/repro/serve/clock.py",)

    #: Call names that put a delay/interval on the event queue.
    SINKS: typing.ClassVar[frozenset[str]] = frozenset({
        "schedule", "timeout", "call_periodic",
    })
    SOURCE_EXACT: typing.ClassVar[frozenset[str]] = frozenset({
        "os.urandom", "os.getrandom", "uuid.uuid1", "uuid.uuid4",
    })
    #: Seedable constructors: tainted only when called with no seed.
    SEEDABLE: typing.ClassVar[frozenset[str]] = frozenset({
        "random.Random", "numpy.random.default_rng",
        "numpy.random.RandomState",
    })
    SOURCE_PREFIXES: typing.ClassVar[tuple[str, ...]] = (
        "time.", "datetime.", "secrets.", "random.", "numpy.random.",
    )

    _COMPOUND: typing.ClassVar[tuple[type[ast.stmt], ...]] = (
        ast.If, ast.For, ast.AsyncFor, ast.While, ast.With,
        ast.AsyncWith, ast.Try,
    )

    def __init__(self) -> None:
        super().__init__()
        self._graph: ProjectGraph | None = None
        #: qualified names of functions whose return value is tainted
        self._tainted_fns: set[str] = set()

    # -- interprocedural fixpoint --------------------------------------
    def prepare(self, modules: typing.Sequence[SourceModule]) -> None:
        self._graph = ProjectGraph(modules)
        changed = True
        while changed:
            changed = False
            for qualname, fn in self._graph.functions.items():
                if qualname in self._tainted_fns:
                    continue
                module = self._graph.function_module[qualname]
                if self._scan_body(module, fn.body, set(),
                                   report=False):
                    self._tainted_fns.add(qualname)
                    changed = True

    # -- taint of one expression ---------------------------------------
    def _is_source(self, module: SourceModule, call: ast.Call) -> bool:
        target = module.imports.resolve(call.func)
        if target is None:
            return False
        if target in self.SOURCE_EXACT:
            return True
        if target in self.SEEDABLE:
            return not call.args and not call.keywords
        return target.startswith(self.SOURCE_PREFIXES)

    def _expr_tainted(self, module: SourceModule, expr: ast.expr,
                      env: set[str]) -> bool:
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                if self._is_source(module, node):
                    return True
                if self._graph is not None:
                    callee = self._graph.resolve_callee(module,
                                                        node.func)
                    if callee in self._tainted_fns:
                        return True
            elif (isinstance(node, ast.Name)
                    and isinstance(node.ctx, ast.Load)
                    and node.id in env):
                return True
        return False

    # -- statement scan -------------------------------------------------
    def _scan_body(self, module: SourceModule,
                   body: typing.Sequence[ast.stmt], env: set[str],
                   report: bool) -> bool:
        """Walk ``body`` propagating taint; True iff a return is tainted.

        ``env`` is the set of tainted local names, mutated in place.
        With ``report=True`` (the per-file visit), sink calls with a
        tainted argument are reported; with ``report=False`` (the
        prepare fixpoint) the scan only classifies returns.
        """
        returns_tainted = False
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue  # separate scope, analysed on its own
            if isinstance(stmt, self._COMPOUND):
                if isinstance(stmt, (ast.For, ast.AsyncFor)):
                    if self._expr_tainted(module, stmt.iter, env):
                        env.update(_target_names(stmt.target))
                elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                    for item in stmt.items:
                        if (item.optional_vars is not None
                                and self._expr_tainted(
                                    module, item.context_expr, env)):
                            env.update(
                                _target_names(item.optional_vars))
                for sub in _sub_bodies(stmt):
                    if self._scan_body(module, sub, env, report):
                        returns_tainted = True
                continue
            if report:
                self._check_sinks(module, stmt, env)
            if isinstance(stmt, ast.Return):
                if stmt.value is not None and self._expr_tainted(
                        module, stmt.value, env):
                    returns_tainted = True
            elif isinstance(stmt, (ast.Assign, ast.AnnAssign,
                                   ast.AugAssign)):
                names = self._assigned_names(stmt)
                value = stmt.value
                if value is not None and self._expr_tainted(
                        module, value, env):
                    env.update(names)
                elif not isinstance(stmt, ast.AugAssign):
                    env.difference_update(names)
        return returns_tainted

    @staticmethod
    def _assigned_names(
            stmt: ast.Assign | ast.AnnAssign | ast.AugAssign
    ) -> set[str]:
        if isinstance(stmt, ast.Assign):
            names: set[str] = set()
            for target in stmt.targets:
                names.update(_target_names(target))
            return names
        return _target_names(stmt.target)

    def _check_sinks(self, module: SourceModule, stmt: ast.stmt,
                     env: set[str]) -> None:
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute):
                name = func.attr
            elif isinstance(func, ast.Name):
                name = func.id
            else:
                continue
            if name not in self.SINKS:
                continue
            args = [*node.args,
                    *(kw.value for kw in node.keywords)]
            for arg in args:
                if self._expr_tainted(module, arg, env):
                    self.report(
                        node,
                        f"host-entropy value flows into '{name}()'; "
                        f"event timing must derive from simulated "
                        f"state and seeded StreamRegistry streams "
                        f"(taint tracked through function returns)")
                    break

    # -- per-file visit -------------------------------------------------
    def visit_Module(self, node: ast.Module) -> None:
        assert self.module is not None
        self._scan_body(self.module, node.body, set(), report=True)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        assert self.module is not None
        self._scan_body(self.module, node.body, set(), report=True)

    def visit_AsyncFunctionDef(self,
                               node: ast.AsyncFunctionDef) -> None:
        assert self.module is not None
        self._scan_body(self.module, node.body, set(), report=True)


def _target_names(target: ast.expr) -> set[str]:
    """Plain names bound by an assignment target (tuples unpacked)."""
    names: set[str] = set()
    for node in ast.walk(target):
        if isinstance(node, ast.Name):
            names.add(node.id)
    return names


def _sub_bodies(
        stmt: ast.stmt) -> typing.Iterator[typing.Sequence[ast.stmt]]:
    for field in ("body", "orelse", "finalbody"):
        sub = getattr(stmt, field, None)
        if sub:
            yield sub
    for handler in getattr(stmt, "handlers", ()):
        yield handler.body


# ----------------------------------------------------------------------
class SetIterationRule(Rule):
    """Library code may not iterate over sets.

    Python sets iterate in hash order, and ``PYTHONHASHSEED`` makes
    that order differ between *processes* — the classic way a replay
    is bit-identical on the developer's machine and divergent in CI.
    Membership tests, ``len()``, and set algebra are all fine; what is
    banned is anything that *observes the order*: ``for`` loops,
    comprehension iterables, ``list(s)``/``tuple(s)``/``iter(s)``/
    ``enumerate(s)``, and ``", ".join(s)``.  The deterministic escape
    hatch is always ``sorted(s)``, which the rule deliberately allows.

    Detection is type-light: an expression is set-ish if it is a set
    literal/comprehension, a ``set()``/``frozenset()`` call, set
    algebra over a set-ish operand, a local name bound or annotated
    set-ish, or a ``self.x`` attribute annotated set-ish in its class
    body.  Unknown expressions are assumed not to be sets, so the rule
    under-approximates rather than guessing.
    """

    rule_id = "no-set-iteration"
    summary = ("iteration over a set observes hash-randomized order; "
               "iterate sorted(the_set) instead")
    scope = ("src/repro",)

    #: set-returning methods of set objects
    SET_METHODS: typing.ClassVar[frozenset[str]] = frozenset({
        "union", "intersection", "difference",
        "symmetric_difference", "copy",
    })
    #: calls whose result order mirrors the argument's iteration order
    ORDER_SENSITIVE_CALLS: typing.ClassVar[frozenset[str]] = frozenset({
        "list", "tuple", "iter", "enumerate",
    })
    _SET_ANNOTATIONS: typing.ClassVar[frozenset[str]] = frozenset({
        "set", "frozenset", "Set", "FrozenSet", "AbstractSet",
        "MutableSet",
    })

    def __init__(self) -> None:
        super().__init__()
        self._set_names: set[str] = set()
        self._set_attrs: set[str] = set()

    def begin_module(self, module: SourceModule) -> None:
        super().begin_module(module)
        self._set_names = set()
        self._set_attrs = set()
        # Two passes so a name annotated below its first use still
        # counts; assignments of set-ish values come second because
        # they may reference names collected in the first pass.
        for node in ast.walk(module.tree):
            if isinstance(node, ast.AnnAssign) and \
                    self._is_set_annotation(node.annotation):
                self._bind_target(node.target)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assign) and \
                    self._is_setish(node.value):
                for target in node.targets:
                    self._bind_target(target)

    def _bind_target(self, target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            self._set_names.add(target.id)
        elif (isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"):
            self._set_attrs.add(target.attr)

    def _is_set_annotation(self, annotation: ast.expr) -> bool:
        node = annotation
        if isinstance(node, ast.Subscript):
            node = node.value
        if isinstance(node, ast.Attribute):
            return node.attr in self._SET_ANNOTATIONS
        return (isinstance(node, ast.Name)
                and node.id in self._SET_ANNOTATIONS)

    def _is_setish(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and \
                    func.id in ("set", "frozenset"):
                return True
            return (isinstance(func, ast.Attribute)
                    and func.attr in self.SET_METHODS
                    and self._is_setish(func.value))
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
            return (self._is_setish(node.left)
                    or self._is_setish(node.right))
        if isinstance(node, ast.Name):
            return node.id in self._set_names
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"):
            return node.attr in self._set_attrs
        return False

    def _flag(self, node: ast.AST, how: str) -> None:
        self.report(node,
                    f"{how} iterates a set in hash-randomized order; "
                    f"iterate sorted(...) for a replay-stable order")

    def visit_For(self, node: ast.For) -> None:
        if self._is_setish(node.iter):
            self._flag(node, "for loop")

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        if self._is_setish(node.iter):
            self._flag(node, "async for loop")

    def _check_comprehension(
            self, node: (ast.ListComp | ast.SetComp | ast.GeneratorExp
                         | ast.DictComp)) -> None:
        for gen in node.generators:
            if self._is_setish(gen.iter):
                self._flag(node, "comprehension")
                return

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._check_comprehension(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._check_comprehension(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._check_comprehension(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._check_comprehension(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (isinstance(func, ast.Name)
                and func.id in self.ORDER_SENSITIVE_CALLS
                and node.args and self._is_setish(node.args[0])):
            self._flag(node, f"{func.id}() over a set")
        elif (isinstance(func, ast.Attribute) and func.attr == "join"
                and node.args and self._is_setish(node.args[0])):
            self._flag(node, "str.join() over a set")


ALL_RULES: tuple[type[Rule], ...] = (
    WallClockRule,
    GlobalRngRule,
    PicklableTaskRule,
    SlotsHygieneRule,
    ClockEqualityRule,
    ExceptionHygieneRule,
    AmbientEntropyRule,
    SingleEventQueueRule,
    EntropyTaintRule,
    SetIterationRule,
)
