"""Static analysis for the simulator: the ``simlint`` determinism linter.

Every number this repository reports rests on guarantees that are
invisible at runtime until they are violated: seeded determinism via
:class:`~repro.sim.rng.StreamRegistry`, bit-identical parallel-vs-
sequential sweeps (``repro.parallel``), and profit-ledger conservation.
A single ``time.time()`` call, a global ``random.random()`` draw, or a
closure handed to :func:`repro.parallel.run_tasks` silently voids them.

``repro.analysis`` enforces those rules *before* the code runs:

* :mod:`repro.analysis.core` — the rule-visitor framework: file walker,
  :class:`Rule` base class, :class:`Finding` records, inline
  ``# repro: lint-ignore[rule-id]`` suppressions, ``[tool.repro.lint]``
  allowlist configuration, text/JSON reporters and exit codes.
* :mod:`repro.analysis.rules` — the ruleset encoding the repository's
  determinism and hot-path invariants.

Run it as ``repro lint <paths...>`` or programmatically::

    from repro.analysis import lint_paths
    findings = lint_paths(["src/repro"])
"""

from __future__ import annotations

from .core import (EXIT_CLEAN, EXIT_ERROR, EXIT_FINDINGS, Finding,
                   LintConfig, ProjectGraph, Rule, SourceModule,
                   lint_paths, main, render_json, render_sarif,
                   render_text)
from .rules import ALL_RULES

__all__ = [
    "ALL_RULES",
    "EXIT_CLEAN",
    "EXIT_ERROR",
    "EXIT_FINDINGS",
    "Finding",
    "LintConfig",
    "ProjectGraph",
    "Rule",
    "SourceModule",
    "lint_paths",
    "main",
    "render_json",
    "render_sarif",
    "render_text",
]
