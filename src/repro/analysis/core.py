"""simlint core: file walker, rule visitors, suppressions, reporters.

The framework is deliberately small and dependency-free:

* :class:`SourceModule` — one parsed file: source text, AST, an import
  table mapping local names to fully-qualified targets, and the parsed
  inline suppressions.
* :class:`Rule` — base class for checks.  A rule declares ``rule_id``
  and ``summary``, optionally restricts itself to path globs
  (``scope``) or exempts paths (``exempt``), and implements ordinary
  ``ast.NodeVisitor``-style ``visit_<NodeType>`` methods.  All active
  rules share a single AST walk per file.  Rules that need
  cross-module state (e.g. "which classes declare ``__slots__``?")
  implement :meth:`Rule.prepare`, which runs over the whole file set
  before any file is visited.
* :class:`Finding` — one diagnostic, with stable ``path:line:col``
  location and rule id, renderable as text or JSON.

Suppressions
------------

A finding is suppressed by a trailing (or immediately preceding)
comment::

    t0 = time.time()  # repro: lint-ignore[no-wall-clock] host benchmark

``lint-ignore`` with no bracket suppresses every rule on that line.
Project-wide exceptions live in ``pyproject.toml``::

    [tool.repro.lint.allow]
    no-wall-clock = ["benchmarks/test_parallel_speedup.py"]

Exit codes: ``0`` clean, ``1`` findings, ``2`` usage/configuration
error.
"""

from __future__ import annotations

import argparse
import ast
import dataclasses
import fnmatch
import json
import pathlib
import re
import sys
import typing

__all__ = ["EXIT_CLEAN", "EXIT_ERROR", "EXIT_FINDINGS", "Finding",
           "ImportTable", "LintConfig", "ProjectGraph", "Rule",
           "SourceModule", "apply_rules", "lint_paths", "main",
           "render_json", "render_sarif", "render_text"]

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2

#: Rule id attached to files that do not parse.
SYNTAX_RULE_ID = "syntax-error"

_IGNORE_RE = re.compile(
    r"#\s*repro:\s*lint-ignore(?:\[(?P<ids>[^\]]*)\])?")


# ----------------------------------------------------------------------
# Findings
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic: where, which rule, and what is wrong."""

    path: str       #: repo-relative posix path
    line: int       #: 1-based line number
    col: int        #: 1-based column number
    rule_id: str
    message: str

    def format(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule_id} {self.message}")

    def to_dict(self) -> dict[str, typing.Any]:
        return dataclasses.asdict(self)


# ----------------------------------------------------------------------
# Import resolution
# ----------------------------------------------------------------------
class ImportTable:
    """Local name -> fully-qualified dotted target, per module.

    ``import time as t`` binds ``t -> time``; ``from repro.parallel
    import Task`` binds ``Task -> repro.parallel.Task``.  Relative
    imports are resolved against nothing (their targets stay relative,
    prefixed with dots stripped) because simlint's rules only match
    absolute stdlib/third-party targets.
    """

    def __init__(self, tree: ast.Module) -> None:
        self.bindings: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else \
                        alias.name.split(".")[0]
                    self.bindings[local] = target
            elif isinstance(node, ast.ImportFrom):
                if node.level or node.module is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.bindings[local] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.expr) -> str | None:
        """Fully-qualified dotted name for ``node``, if import-derived.

        ``Attribute`` chains are unwound, so with ``import numpy as
        np`` the expression ``np.random.default_rng`` resolves to
        ``numpy.random.default_rng``.  Returns ``None`` for anything
        not rooted in an imported name.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self.bindings.get(node.id)
        if base is None:
            return None
        parts.append(base)
        return ".".join(reversed(parts))


# ----------------------------------------------------------------------
# Parsed source files
# ----------------------------------------------------------------------
class SourceModule:
    """One file under analysis: text, AST, imports, suppressions."""

    def __init__(self, path: pathlib.Path, relpath: str,
                 text: str) -> None:
        self.path = path
        self.relpath = relpath
        self.text = text
        self.tree = ast.parse(text, filename=str(path))
        self.imports = ImportTable(self.tree)
        #: line number -> frozenset of suppressed rule ids, or None
        #: meaning "suppress every rule on this line".
        self.suppressions: dict[int, frozenset[str] | None] = {}
        for lineno, line in enumerate(text.splitlines(), start=1):
            match = _IGNORE_RE.search(line)
            if match is None:
                continue
            ids = match.group("ids")
            if ids is None:
                self.suppressions[lineno] = None
            else:
                self.suppressions[lineno] = frozenset(
                    part.strip() for part in ids.split(",")
                    if part.strip())
        #: ``def``/``class`` line -> first decorator line.  Findings
        #: anchor on the ``def`` line, but humans put the suppression
        #: marker where the statement starts — on or above the first
        #: decorator — so :meth:`is_suppressed` must scan the span.
        self.decorator_spans: dict[int, int] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)) and node.decorator_list:
                self.decorator_spans[node.lineno] = \
                    node.decorator_list[0].lineno

    def is_suppressed(self, line: int, rule_id: str) -> bool:
        """True if ``rule_id`` is suppressed on ``line``.

        A marker suppresses findings on its own line and, when it is
        the only content of its line, on the following line — so a
        suppression can sit above a long statement.  For a decorated
        ``def``/``class`` (findings anchor on the ``def`` line) the
        whole decorator span counts as "its own line": a marker on any
        decorator line, or comment-only above the first decorator,
        suppresses too.
        """
        #: (marker line, must the line be comment-only to count)
        candidates = [(line, False), (line - 1, True)]
        span_start = self.decorator_spans.get(line)
        if span_start is not None:
            candidates.extend((n, False) for n in range(span_start, line))
            candidates.append((span_start - 1, True))
        for marker_line, comment_only in candidates:
            if marker_line not in self.suppressions:
                continue
            if comment_only:
                stripped = self.text.splitlines()[marker_line - 1].strip()
                if not stripped.startswith("#"):
                    continue
            ids = self.suppressions[marker_line]
            if ids is None or rule_id in ids:
                return True
        return False


# ----------------------------------------------------------------------
# Project import/call graph
# ----------------------------------------------------------------------
class ProjectGraph:
    """A project-wide import and call graph over the linted file set.

    Built once per lint run (rules construct it in :meth:`Rule.prepare`)
    from the already-parsed :class:`SourceModule` set — no file is read
    twice.  The graph gives interprocedural rules three things:

    * :attr:`functions` — every module-level function and class method,
      keyed by dotted qualified name (``repro.sim.rng.StreamRegistry.
      stream``); nested functions are not registered (they are part of
      their enclosing function's body).
    * :attr:`calls` — per function, the set of *resolved* callee names:
      import-rooted targets (``time.monotonic``), same-module functions,
      and unambiguous ``self.``/``cls.`` method calls.  Unresolvable
      callees are simply absent — the graph under-approximates, which
      for lint rules means missed findings, never false ones.
    * :attr:`imports` — per module, the imported module names.
    """

    def __init__(self,
                 modules: typing.Sequence[SourceModule]) -> None:
        #: relpath -> dotted module name
        self.module_names: dict[str, str] = {
            module.relpath: self.module_name(module.relpath)
            for module in modules}
        self.functions: dict[
            str, ast.FunctionDef | ast.AsyncFunctionDef] = {}
        self.function_module: dict[str, SourceModule] = {}
        self.imports: dict[str, frozenset[str]] = {}
        #: (module name, method name) -> qualified names defining it
        self._methods: dict[tuple[str, str], list[str]] = {}
        for module in modules:
            self._register(module)
        self.calls: dict[str, frozenset[str]] = {}
        for qualname, fn in self.functions.items():
            owner = self.function_module[qualname]
            callees = set()
            for node in ast.walk(fn):
                if isinstance(node, ast.Call):
                    target = self.resolve_callee(owner, node.func)
                    if target is not None:
                        callees.add(target)
            self.calls[qualname] = frozenset(callees)

    @staticmethod
    def module_name(relpath: str) -> str:
        """Dotted module name for a repo-relative path.

        ``src/repro/sim/environment.py`` -> ``repro.sim.environment``;
        package ``__init__`` files name the package itself.
        """
        parts = list(pathlib.PurePosixPath(relpath).parts)
        if parts and parts[0] == "src":
            parts = parts[1:]
        if parts and parts[-1].endswith(".py"):
            parts[-1] = parts[-1][:-3]
        if parts and parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(parts)

    def _register(self, module: SourceModule) -> None:
        mod = self.module_names[module.relpath]
        imported: set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                imported.update(alias.name for alias in node.names)
            elif isinstance(node, ast.ImportFrom):
                if node.module and not node.level:
                    imported.add(node.module)
        self.imports[mod] = frozenset(imported)

        def visit(node: ast.AST, prefix: str, in_class: bool) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef,
                                      ast.AsyncFunctionDef)):
                    qualname = f"{prefix}.{child.name}"
                    if qualname not in self.functions:
                        self.functions[qualname] = child
                        self.function_module[qualname] = module
                        if in_class:
                            self._methods.setdefault(
                                (mod, child.name), []).append(qualname)
                    # nested defs stay part of this function's body
                elif isinstance(child, ast.ClassDef):
                    visit(child, f"{prefix}.{child.name}", True)

        visit(module.tree, mod, False)

    def resolve_callee(self, module: SourceModule,
                       node: ast.expr) -> str | None:
        """Qualified name a callee expression refers to, if resolvable."""
        target = module.imports.resolve(node)
        if target is not None:
            return target
        mod = self.module_names[module.relpath]
        if isinstance(node, ast.Name):
            qualname = f"{mod}.{node.id}"
            return qualname if qualname in self.functions else None
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id in ("self", "cls")):
            candidates = self._methods.get((mod, node.attr), [])
            if len(candidates) == 1:
                return candidates[0]
        return None

    def callees(self, qualname: str) -> frozenset[str]:
        return self.calls.get(qualname, frozenset())

    def transitive_callees(self, qualname: str) -> frozenset[str]:
        """Every function reachable from ``qualname`` via call edges."""
        seen: set[str] = set()
        frontier = [qualname]
        while frontier:
            current = frontier.pop()
            for callee in self.calls.get(current, frozenset()):
                if callee not in seen:
                    seen.add(callee)
                    frontier.append(callee)
        return frozenset(seen)


# ----------------------------------------------------------------------
# Rules
# ----------------------------------------------------------------------
class Rule:
    """Base class for simlint checks.

    Subclasses set :attr:`rule_id` and :attr:`summary`, optionally
    narrow :attr:`scope` / :attr:`exempt` (fnmatch globs over the
    repo-relative posix path; a bare directory prefix such as
    ``src/repro/db`` matches everything beneath it), and implement
    ``visit_<NodeType>`` methods.  Inside a visit method,
    :meth:`report` records a finding against the current module.
    """

    rule_id: typing.ClassVar[str] = ""
    summary: typing.ClassVar[str] = ""
    #: restrict the rule to these path globs (empty = everywhere)
    scope: typing.ClassVar[tuple[str, ...]] = ()
    #: never run the rule on these paths (built-in exemptions)
    exempt: typing.ClassVar[tuple[str, ...]] = ()

    def __init__(self) -> None:
        self.findings: list[Finding] = []
        self.module: SourceModule | None = None

    # -- lifecycle ------------------------------------------------------
    def prepare(self, modules: typing.Sequence[SourceModule]) -> None:
        """Cross-module pre-pass; runs once before any file is visited."""

    def begin_module(self, module: SourceModule) -> None:
        self.module = module

    def end_module(self) -> None:
        self.module = None

    def applies_to(self, module: SourceModule) -> bool:
        if _matches_any(module.relpath, self.exempt):
            return False
        return not self.scope or _matches_any(module.relpath, self.scope)

    # -- reporting ------------------------------------------------------
    def report(self, node: ast.AST, message: str) -> None:
        assert self.module is not None
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        if self.module.is_suppressed(line, self.rule_id):
            return
        self.findings.append(Finding(self.module.relpath, line, col,
                                     self.rule_id, message))


def _matches_any(relpath: str, patterns: typing.Iterable[str]) -> bool:
    for pattern in patterns:
        pattern = pattern.rstrip("/")
        if (relpath == pattern
                or relpath.startswith(pattern + "/")
                or fnmatch.fnmatch(relpath, pattern)):
            return True
    return False


class _Walker(ast.NodeVisitor):
    """Single AST walk dispatching each node to every active rule."""

    def __init__(self, rules: typing.Sequence[Rule]) -> None:
        self._handlers: dict[str, list[typing.Callable[[ast.AST], None]]]
        self._handlers = {}
        for rule in rules:
            for name in dir(rule):
                if name.startswith("visit_"):
                    node_type = name[len("visit_"):]
                    self._handlers.setdefault(node_type, []).append(
                        getattr(rule, name))

    def visit(self, node: ast.AST) -> None:
        for handler in self._handlers.get(type(node).__name__, ()):
            handler(node)
        self.generic_visit(node)


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class LintConfig:
    """Project lint settings, from ``[tool.repro.lint]``.

    ``exclude`` drops files from the walk entirely; ``allow`` maps a
    rule id to path globs on which that rule's findings are waived
    (the project-level allowlist); ``select`` restricts the run to a
    subset of rule ids (empty = all rules).
    """

    exclude: tuple[str, ...] = ()
    allow: dict[str, tuple[str, ...]] = \
        dataclasses.field(default_factory=dict)
    select: tuple[str, ...] = ()

    @classmethod
    def load(cls, root: pathlib.Path) -> "LintConfig":
        """Read ``[tool.repro.lint]`` from ``root / pyproject.toml``."""
        pyproject = root / "pyproject.toml"
        if not pyproject.is_file():
            return cls()
        import tomllib
        try:
            data = tomllib.loads(pyproject.read_text())
        except tomllib.TOMLDecodeError as exc:
            raise LintUsageError(f"cannot parse {pyproject}: {exc}") \
                from exc
        section = data.get("tool", {}).get("repro", {}).get("lint", {})
        allow = {rule_id: tuple(paths) for rule_id, paths
                 in section.get("allow", {}).items()}
        return cls(exclude=tuple(section.get("exclude", ())),
                   allow=allow,
                   select=tuple(section.get("select", ())))

    def allows(self, finding: Finding) -> bool:
        return _matches_any(finding.path,
                            self.allow.get(finding.rule_id, ()))


class LintUsageError(Exception):
    """Bad invocation or configuration; maps to exit code 2."""


# ----------------------------------------------------------------------
# The walk
# ----------------------------------------------------------------------
_SKIP_DIRS = {"__pycache__", ".git", ".mypy_cache", ".pytest_cache",
              ".ruff_cache", ".hypothesis"}


def _collect_files(paths: typing.Sequence[str | pathlib.Path],
                   root: pathlib.Path,
                   config: LintConfig) -> list[pathlib.Path]:
    files: list[pathlib.Path] = []
    seen: set[pathlib.Path] = set()
    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_dir():
            candidates = sorted(
                p for p in path.rglob("*.py")
                if not (_SKIP_DIRS & set(p.parts)))
        elif path.is_file():
            candidates = [path]
        else:
            raise LintUsageError(f"no such file or directory: {path}")
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            if _matches_any(_relpath(candidate, root), config.exclude):
                continue
            files.append(candidate)
    return files


def _relpath(path: pathlib.Path, root: pathlib.Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def find_project_root(
        start: pathlib.Path | None = None) -> pathlib.Path:
    """Nearest ancestor of ``start`` containing a ``pyproject.toml``."""
    probe = (start or pathlib.Path.cwd()).resolve()
    if probe.is_file():
        probe = probe.parent
    for candidate in (probe, *probe.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return probe


def _make_rules(config: LintConfig) -> list[Rule]:
    from .rules import ALL_RULES
    by_id = {rule_cls.rule_id: rule_cls for rule_cls in ALL_RULES}
    wanted = config.select or tuple(by_id)
    unknown = set(wanted) - set(by_id)
    if unknown:
        raise LintUsageError(
            f"unknown rule id(s) {sorted(unknown)}; available: "
            f"{sorted(by_id)}")
    return [by_id[rule_id]() for rule_id in wanted]


def lint_paths(paths: typing.Sequence[str | pathlib.Path],
               config: LintConfig | None = None,
               root: pathlib.Path | None = None) -> list[Finding]:
    """Lint ``paths`` (files or directories) and return the findings.

    ``root`` anchors repo-relative paths and, when ``config`` is not
    given, locates the ``pyproject.toml`` whose ``[tool.repro.lint]``
    section configures the run.
    """
    if not paths:
        raise LintUsageError("no paths given")
    if root is None:
        root = find_project_root(pathlib.Path(paths[0]))
    if config is None:
        config = LintConfig.load(root)
    rules = _make_rules(config)

    modules: list[SourceModule] = []
    findings: list[Finding] = []
    for path in _collect_files(paths, root, config):
        relpath = _relpath(path, root)
        try:
            modules.append(SourceModule(path, relpath,
                                        path.read_text()))
        except SyntaxError as exc:
            findings.append(Finding(relpath, exc.lineno or 1,
                                    (exc.offset or 0) + 1,
                                    SYNTAX_RULE_ID,
                                    f"file does not parse: {exc.msg}"))

    for rule in rules:
        rule.prepare(modules)
    for module in modules:
        active = [rule for rule in rules if rule.applies_to(module)]
        if not active:
            continue
        for rule in active:
            rule.begin_module(module)
        _Walker(active).visit(module.tree)
        for rule in active:
            rule.end_module()

    for rule in rules:
        findings.extend(f for f in rule.findings if not config.allows(f))
    return sorted(findings)


def apply_rules(module: SourceModule,
                rules: typing.Sequence[Rule]) -> list[Finding]:
    """Run ``rules`` over one in-memory module; no filesystem walk.

    Used by the planted-bug harness (``repro sanitize --planted-bug``)
    and tests, where the module under analysis is synthesised with a
    chosen ``relpath`` (rule scoping matches on the relpath, so a
    fixture can opt into ``src/repro``-scoped rules without living
    there).
    """
    active = [rule for rule in rules if rule.applies_to(module)]
    for rule in active:
        rule.prepare([module])
        rule.begin_module(module)
    _Walker(active).visit(module.tree)
    findings: list[Finding] = []
    for rule in active:
        rule.end_module()
        findings.extend(rule.findings)
    return sorted(findings)


# ----------------------------------------------------------------------
# Reporters
# ----------------------------------------------------------------------
def render_text(findings: typing.Sequence[Finding],
                files_checked: int | None = None) -> str:
    lines = [finding.format() for finding in findings]
    tail = f"{len(findings)} finding(s)"
    if files_checked is not None:
        tail += f" in {files_checked} file(s)"
    lines.append(tail)
    return "\n".join(lines)


def render_json(findings: typing.Sequence[Finding]) -> str:
    return json.dumps({
        "findings": [finding.to_dict() for finding in findings],
        "count": len(findings),
    }, indent=2, sort_keys=True)


def render_sarif(findings: typing.Sequence[Finding],
                 rule_index: typing.Mapping[str, str] | None = None, *,
                 tool_name: str = "simlint") -> str:
    """Render findings as a SARIF 2.1.0 log (one run, one tool).

    ``rule_index`` maps rule ids to one-line descriptions for the
    driver's rule table; ids seen only in ``findings`` get an empty
    description.  The output is what GitHub code scanning ingests, so
    findings render as inline annotations on pull requests.
    """
    rules: dict[str, str] = dict(rule_index or {})
    for finding in findings:
        rules.setdefault(finding.rule_id, "")
    return json.dumps({
        "$schema": ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json"),
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": tool_name,
                "informationUri":
                    "https://github.com/example/repro",
                "rules": [{
                    "id": rule_id,
                    "shortDescription": {"text": summary or rule_id},
                } for rule_id, summary in sorted(rules.items())],
            }},
            "results": [{
                "ruleId": finding.rule_id,
                "level": "error",
                "message": {"text": finding.message},
                "locations": [{"physicalLocation": {
                    "artifactLocation": {"uri": finding.path},
                    "region": {"startLine": finding.line,
                               "startColumn": finding.col},
                }}],
            } for finding in findings],
        }],
    }, indent=2, sort_keys=True)


# ----------------------------------------------------------------------
# CLI (wired up as ``repro lint``)
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="simlint: determinism-safety static analysis for "
                    "the simulator (see repro.analysis.rules)")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint "
                             "(default: src)")
    parser.add_argument("--format", default="text",
                        choices=("text", "json", "sarif"),
                        help="report format (default: text)")
    parser.add_argument("--select", default=None,
                        help="comma-separated rule ids to run "
                             "(default: all rules)")
    parser.add_argument("--root", default=None,
                        help="project root for relative paths and "
                             "pyproject.toml config (default: nearest "
                             "ancestor with a pyproject.toml)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the available rules and exit")
    return parser


def main(argv: typing.Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        from .rules import ALL_RULES
        for rule_cls in sorted(ALL_RULES, key=lambda r: r.rule_id):
            print(f"{rule_cls.rule_id}: {rule_cls.summary}")
        return EXIT_CLEAN

    root = pathlib.Path(args.root) if args.root else \
        find_project_root(pathlib.Path(args.paths[0]))
    try:
        config = LintConfig.load(root)
        if args.select:
            select = tuple(part.strip()
                           for part in args.select.split(",")
                           if part.strip())
            config = dataclasses.replace(config, select=select)
        files = _collect_files(args.paths, root, config)
        findings = lint_paths(args.paths, config=config, root=root)
    except LintUsageError as exc:
        print(f"repro lint: error: {exc}", file=sys.stderr)
        return EXIT_ERROR

    if args.format == "json":
        print(render_json(findings))
    elif args.format == "sarif":
        from .rules import ALL_RULES
        rule_index = {rule_cls.rule_id: rule_cls.summary
                      for rule_cls in ALL_RULES}
        print(render_sarif(findings, rule_index))
    else:
        print(render_text(findings, files_checked=len(files)))
    return EXIT_FINDINGS if findings else EXIT_CLEAN
