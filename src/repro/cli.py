"""Command-line interface: ``repro <experiment> [--scale ...]``.

Examples::

    repro fig1                 # the naive-policy trade-off triangle
    repro fig8 --scale smoke   # the QC spectrum, 1-minute workload
    repro fig9                 # adaptability + the rho trajectory
    repro table3               # workload information
    repro run --policy QUTS    # a single simulation with default QCs
    repro lint src benchmarks  # simlint determinism static analysis
    repro sanitize fig5 fig9   # simsan dynamic race + perturbation run
    repro trace figures --fig 5 --out trace.json
                               # instrumented run -> Perfetto trace
    repro chaos --seeds 8      # chaos search; shrinks failing schedules
    repro serve --policy QUTS  # live asyncio QC gateway (TCP front)
    repro loadgen --multiplier 2.0
                               # open-loop load harness -> JSON report
    repro shard --skew         # sharded scale-out + hot-key rebalancing
"""

from __future__ import annotations

import argparse
import sys
import typing

from repro.experiments import (ABLATIONS, ExperimentConfig, fault_sweep, fig1,
                               fig10, fig5, fig6, fig7, fig8, fig9,
                               format_series, format_table, recovery_sweep,
                               run_simulation, save_csv, table3, table4)
from repro.qc.generator import QCFactory
from repro.scheduling import make_scheduler
from repro.workload.traces import Trace

#: What a figure exporter yields: (filename suffix, report rows).
ExportIter = typing.Iterator[tuple[str, list[dict[str, typing.Any]]]]

EXPERIMENTS = ("fig1", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
               "table3", "table4", "run", "ablation", "export", "faults",
               "recover")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Preference-Aware Query and Update "
                    "Scheduling in Web-databases' (ICDE 2007)",
        epilog="'repro lint [paths...]' runs the simlint determinism "
               "static analyser (see 'repro lint --help'); "
               "'repro sanitize [experiments...]' runs the simsan "
               "determinism sanitizer over experiment cells "
               "(see 'repro sanitize --help'); "
               "'repro trace <experiment>' runs one instrumented "
               "simulation and exports a Chrome/Perfetto trace "
               "(see 'repro trace --help'); "
               "'repro chaos [--seeds N]' searches sampled gray-failure "
               "schedules for invariant violations and shrinks failures "
               "to minimal JSON repros (see 'repro chaos --help'); "
               "'repro serve' runs the live asyncio QC gateway and "
               "'repro loadgen' its open-loop load harness (see their "
               "--help); "
               "'repro shard' runs the sharded scale-out sweeps "
               "(profit vs shard count, hot-key rebalancing; see "
               "'repro shard --help')")
    parser.add_argument("experiment", choices=EXPERIMENTS,
                        help="which table/figure to regenerate")
    parser.add_argument("--scale", default=None,
                        choices=("smoke", "standard", "full"),
                        help="workload scale (default: $REPRO_SCALE or "
                             "'standard')")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes for sweep fan-out "
                             "(default: $REPRO_WORKERS or 1); results "
                             "are bit-identical for any value")
    parser.add_argument("--policy", default="QUTS",
                        help="policy for 'run' (FIFO/UH/QH/QUTS/...)")
    parser.add_argument("--seed", type=int, default=1,
                        help="simulation master seed for 'run'")
    parser.add_argument("--which", default="rho",
                        choices=sorted(ABLATIONS),
                        help="which sweep for 'ablation'")
    parser.add_argument("--out", default="figure_data",
                        help="output directory for 'export'")
    parser.add_argument("--figures", default="fig1,fig7,fig8,fig9,fig10",
                        help="comma-separated figure list for 'export'")
    return parser


def main(argv: typing.Sequence[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv[:1] == ["lint"]:
        # The linter has its own argument grammar (paths, --format,
        # --select); dispatch before the experiment parser sees it.
        from repro.analysis import main as lint_main
        return lint_main(argv[1:])
    if argv[:1] == ["sanitize"]:
        # Same pattern: the sanitizer harness owns its own grammar.
        from repro.experiments.sanitize import main as sanitize_main
        return sanitize_main(argv[1:])
    if argv[:1] == ["trace"]:
        # Same pattern: the trace exporter owns its own grammar.
        from repro.telemetry.cli import main as trace_main
        return trace_main(argv[1:])
    if argv[:1] == ["chaos"]:
        # Same pattern: the chaos harness owns its own grammar.
        from repro.experiments.chaos import main as chaos_main
        return chaos_main(argv[1:])
    if argv[:1] == ["serve"]:
        # Same pattern: the live gateway owns its own grammar.
        from repro.serve.cli import serve_main
        return serve_main(argv[1:])
    if argv[:1] == ["loadgen"]:
        # Same pattern: the open-loop load harness owns its own grammar.
        from repro.serve.cli import loadgen_main
        return loadgen_main(argv[1:])
    if argv[:1] == ["shard"]:
        # Same pattern: the sharded scale-out sweeps own their grammar.
        from repro.experiments.scaleout import main as shard_main
        return shard_main(argv[1:])
    args = build_parser().parse_args(argv)
    config = ExperimentConfig.from_env(args.scale, workers=args.workers)
    if config.workers > 1:
        # Fork the sweep pool before any trace/database state exists so
        # the workers inherit a small heap (see repro.parallel).
        from repro.parallel import warm_pool
        warm_pool(config.workers)
    handler = _HANDLERS[args.experiment]
    try:
        handler(config, args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early — not an error.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0
    return 0


# ----------------------------------------------------------------------
def _cmd_fig1(config: ExperimentConfig,
              args: argparse.Namespace) -> None:
    rows = fig1(config)
    print(format_table(rows, title="Figure 1 - response time vs staleness "
                                   "(naive policies, no QCs)"))


def _cmd_fig5(config: ExperimentConfig,
              args: argparse.Namespace) -> None:
    data = fig5(config)
    print(format_table([data["summary"]],
                       title="Figure 5 - trace characteristics"))
    rates = data["query_rates"]
    print(format_series(list(rates.seconds), [float(c) for c in rates.counts],
                        title="Figure 5a - queries per second"))
    rates = data["update_rates"]
    print(format_series(list(rates.seconds), [float(c) for c in rates.counts],
                        title="Figure 5b - updates per second"))


def _cmd_fig6(config: ExperimentConfig,
              args: argparse.Namespace) -> None:
    data = fig6(config)
    for shape, rows in data.items():
        print(format_table(rows, title=f"Figure 6 - {shape} QCs"))
        print()


def _cmd_fig7(config: ExperimentConfig,
              args: argparse.Namespace) -> None:
    print(format_table(fig7(config),
                       title="Figure 7 - FIFO across the QC spectrum"))


def _cmd_fig8(config: ExperimentConfig,
              args: argparse.Namespace) -> None:
    data = fig8(config)
    for policy in ("UH", "QH", "QUTS"):
        print(format_table(data[policy], title=f"Figure 8 - {policy}"))
        print()
    print(format_table(data["improvements"],
                       title="QUTS improvement over UH / QH"))


def _cmd_fig9(config: ExperimentConfig,
              args: argparse.Namespace) -> None:
    data = fig9(config)
    print(format_table(data["phase_rho"],
                       title="Figure 9d - mean rho per preference phase"))
    result = data["result"]
    print(f"\nQUTS under changing QCs: total%={result.total_percent:.3f} "
          f"QOS%={result.qos_percent:.3f} QOD%={result.qod_percent:.3f}")
    series = data["gained_total"]
    print(format_series(series.times, series.values,
                        title="Figure 9a - gained profit per second "
                              "(5 s moving window)"))
    rho = data["rho_series"]
    print(format_series(rho.times, rho.values,
                        title="Figure 9d - rho over time"))


def _cmd_fig10(config: ExperimentConfig,
              args: argparse.Namespace) -> None:
    data = fig10(config)
    print(format_table(data["omega"],
                       title="Figure 10a - sensitivity to adaptation "
                             "period omega"))
    print()
    print(format_table(data["tau"],
                       title="Figure 10b - sensitivity to atom time tau"))


def _cmd_faults(config: ExperimentConfig,
              args: argparse.Namespace) -> None:
    rows = fault_sweep(config)
    print(format_table(rows,
                       title="Robustness - profit retention under replica "
                             "faults (2 hedged replicas, balanced QCs; "
                             "mttf_s=inf rows are the fault-free "
                             "baselines)"))


def _cmd_recover(config: ExperimentConfig,
              args: argparse.Namespace) -> None:
    rows = recovery_sweep(config)
    print(format_table(rows,
                       title="Durability - checkpoint interval vs. "
                             "recovery cost under a portal-wide crash "
                             "(RPO in #uu, RTO in ms; checkpoint_s=inf "
                             "rows are the fault-free baselines)"))


def _cmd_table3(config: ExperimentConfig,
              args: argparse.Namespace) -> None:
    rows = [{"parameter": k, "value": v} for k, v in table3(config)]
    print(format_table(rows, title="Table 3 - workload information"))


def _cmd_table4(config: ExperimentConfig,
              args: argparse.Namespace) -> None:
    print(format_table(table4(), title="Table 4 - QC grid"))


def _cmd_run(config: ExperimentConfig,
              args: argparse.Namespace) -> None:
    trace = config.trace()
    result = run_simulation(make_scheduler(args.policy), trace,
                            QCFactory.balanced(), master_seed=args.seed)
    print(format_table([{
        "policy": result.scheduler_name,
        "QOS%": result.qos_percent,
        "QOD%": result.qod_percent,
        "total%": result.total_percent,
        "rt_ms": result.mean_response_time,
        "uu": result.mean_staleness,
    }], title=f"{args.policy} on {trace.name} ({config.scale})"))
    print()
    counters = [{"counter": k, "value": v}
                for k, v in result.counters.items()]
    print(format_table(counters, title="outcome counters"))


def _cmd_ablation(config: ExperimentConfig,
              args: argparse.Namespace) -> None:
    rows = ABLATIONS[args.which](config)
    print(format_table(rows, title=f"Ablation - {args.which} "
                                   f"({config.scale} scale)"))


def _cmd_export(config: ExperimentConfig,
              args: argparse.Namespace) -> None:
    """Write each requested figure's data as CSV files under --out."""
    import pathlib

    out = pathlib.Path(args.out)
    wanted = [name.strip() for name in args.figures.split(",")
              if name.strip()]
    unknown = set(wanted) - set(_EXPORTERS)
    if unknown:
        raise SystemExit(f"cannot export {sorted(unknown)}; choose from "
                         f"{sorted(_EXPORTERS)}")
    trace = config.trace()
    for name in wanted:
        for suffix, rows in _EXPORTERS[name](config, trace):
            target = out / f"{name}{suffix}.csv"
            save_csv(rows, target)
            print(f"wrote {target} ({len(rows)} rows)")


def _export_fig1(config: ExperimentConfig,
                 trace: Trace) -> ExportIter:
    yield "", fig1(config, trace=trace)


def _export_fig7(config: ExperimentConfig,
                 trace: Trace) -> ExportIter:
    yield "", fig7(config, trace=trace)


def _export_fig8(config: ExperimentConfig,
                 trace: Trace) -> ExportIter:
    data = fig8(config, trace=trace)
    for policy in ("UH", "QH", "QUTS"):
        yield f"_{policy.lower()}", data[policy]
    yield "_improvements", data["improvements"]


def _export_fig9(config: ExperimentConfig,
                 trace: Trace) -> ExportIter:
    data = fig9(config, trace=trace)
    yield "_phase_rho", data["phase_rho"]
    rho = data["rho_series"]
    yield "_rho_series", [{"t_ms": t, "rho": v} for t, v in rho.items()]
    gained = data["gained_total"]
    maxima = data["max_total"]
    yield "_profit", [{"t_ms": t, "gained": g, "max": m}
                      for (t, g), (__, m) in zip(gained.items(),
                                                 maxima.items())]


def _export_fig10(config: ExperimentConfig,
                 trace: Trace) -> ExportIter:
    data = fig10(config, trace=trace)
    yield "_omega", data["omega"]
    yield "_tau", data["tau"]


_EXPORTERS = {
    "fig1": _export_fig1,
    "fig7": _export_fig7,
    "fig8": _export_fig8,
    "fig9": _export_fig9,
    "fig10": _export_fig10,
}


_HANDLERS = {
    "ablation": _cmd_ablation,
    "export": _cmd_export,
    "faults": _cmd_faults,
    "fig1": _cmd_fig1,
    "fig5": _cmd_fig5,
    "fig6": _cmd_fig6,
    "fig7": _cmd_fig7,
    "fig8": _cmd_fig8,
    "fig9": _cmd_fig9,
    "fig10": _cmd_fig10,
    "recover": _cmd_recover,
    "table3": _cmd_table3,
    "table4": _cmd_table4,
    "run": _cmd_run,
}


if __name__ == "__main__":
    sys.exit(main())
