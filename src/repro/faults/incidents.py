"""Incident sampling: random-but-reproducible gray-failure schedules.

The chaos harness (:mod:`repro.experiments.chaos`) does not search the
space of raw :class:`~.plan.FaultEvent` lists — most such lists are not
even valid plans.  It searches the space of **incidents**: a
:class:`FaultIncident` is one self-contained episode (a crash and its
repair, a slowdown and its restore, a lossy window and its heal, a WAL
corruption and the crash that surfaces it) that always expands to a
well-formed event pair via :func:`expand_incidents`.  Sampling,
shrinking, and JSON repro artifacts all operate at this granularity:
dropping any subset of incidents from a schedule leaves a valid plan,
which is exactly the property delta-debugging needs.

Sampling is deterministic: every draw comes from the caller's named
:class:`~repro.sim.rng.RandomStream`, so one master seed yields one
schedule, bit-identical across runs and across the policies it is used
to compare.  Per-replica incidents never overlap (plan validation
requires exclusive conditions); non-overlap is enforced by construction,
walking each replica's timeline left to right.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.sim.rng import RandomStream

from .plan import (CRASH, CORRUPT_WAL, DELAY_UPDATES, DROP_UPDATES,
                   HEAL_UPDATES, RECOVER, REORDER_UPDATES, RESTORE_REPLICA,
                   SLOW_REPLICA, FaultEvent, FaultPlan)

#: Incident kinds the sampler draws from (weights tuned so that the
#: cheap-to-trigger gray faults dominate over fail-stop crashes).
INCIDENT_KINDS: tuple[str, ...] = (
    CRASH, SLOW_REPLICA, DROP_UPDATES, DELAY_UPDATES, REORDER_UPDATES,
    CORRUPT_WAL,
)

_WEIGHTS: tuple[int, ...] = (2, 3, 3, 2, 2, 1)
assert len(_WEIGHTS) == len(INCIDENT_KINDS)


@dataclasses.dataclass(frozen=True)
class FaultIncident:
    """One self-contained failure episode on one replica.

    ``magnitude`` means what the expanded kind needs it to mean: the
    slowdown factor for ``slow_replica``, the delivery delay (ms) for
    ``delay_updates``, the damaged-record count for ``corrupt_wal``,
    and is ignored for the rest.
    """

    kind: str
    replica: int
    at_ms: float
    duration_ms: float
    magnitude: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in INCIDENT_KINDS:
            raise ValueError(f"unknown incident kind {self.kind!r}; "
                             f"choose from {INCIDENT_KINDS}")
        if self.replica < 0:
            raise ValueError(
                f"replica must be non-negative, got {self.replica}")
        if self.at_ms < 0:
            raise ValueError(f"at_ms must be >= 0, got {self.at_ms}")
        if self.duration_ms <= 0:
            raise ValueError(
                f"duration_ms must be positive, got {self.duration_ms}")

    @property
    def end_ms(self) -> float:
        return self.at_ms + self.duration_ms

    def events(self) -> list[FaultEvent]:
        """The well-formed event pair (or triple) this incident is."""
        if self.kind == CRASH:
            return [FaultEvent(self.at_ms, CRASH, replica=self.replica),
                    FaultEvent(self.end_ms, RECOVER, replica=self.replica)]
        if self.kind == SLOW_REPLICA:
            return [FaultEvent(self.at_ms, SLOW_REPLICA,
                               replica=self.replica,
                               magnitude=max(1.5, self.magnitude)),
                    FaultEvent(self.end_ms, RESTORE_REPLICA,
                               replica=self.replica)]
        if self.kind in (DROP_UPDATES, DELAY_UPDATES, REORDER_UPDATES):
            magnitude = (max(1.0, self.magnitude)
                         if self.kind == DELAY_UPDATES else 1.0)
            return [FaultEvent(self.at_ms, self.kind, replica=self.replica,
                               magnitude=magnitude),
                    FaultEvent(self.end_ms, HEAL_UPDATES,
                               replica=self.replica)]
        # corrupt_wal: flip bytes, then crash so the damage surfaces at
        # the recovery CRC scan (the latent fault alone changes nothing).
        return [FaultEvent(self.at_ms, CORRUPT_WAL, replica=self.replica,
                           magnitude=max(1.0, self.magnitude)),
                FaultEvent(self.at_ms, CRASH, replica=self.replica),
                FaultEvent(self.end_ms, RECOVER, replica=self.replica)]

    def as_dict(self) -> dict[str, typing.Any]:
        return {"kind": self.kind, "replica": self.replica,
                "at_ms": self.at_ms, "duration_ms": self.duration_ms,
                "magnitude": self.magnitude}

    @classmethod
    def from_dict(cls, row: typing.Mapping[str, typing.Any],
                  ) -> "FaultIncident":
        return cls(kind=row["kind"], replica=row["replica"],
                   at_ms=row["at_ms"], duration_ms=row["duration_ms"],
                   magnitude=row.get("magnitude", 1.0))


def expand_incidents(incidents: typing.Iterable[FaultIncident],
                     ) -> FaultPlan:
    """The :class:`FaultPlan` equivalent of an incident list.

    Any subset of a sampled incident list expands to a *valid* plan
    (per-replica non-overlap is preserved by subsetting), which is what
    lets the shrinker delete incidents freely.
    """
    events: list[FaultEvent] = []
    for incident in incidents:
        events.extend(incident.events())
    return FaultPlan(events)


def sample_incidents(rng: RandomStream, n_replicas: int,
                     horizon_ms: float,
                     mean_incidents: float = 3.0,
                     min_duration_ms: float = 200.0,
                     ) -> list[FaultIncident]:
    """Draw a random, valid-by-construction incident schedule.

    Each replica's timeline is walked left to right: an exponential gap,
    then an incident whose duration is clipped so the episode closes
    before the horizon (the run must observe the heal/recover — open
    episodes at the horizon are a different experiment).  Incidents on
    the same replica therefore never overlap.  All draws come from
    ``rng`` in replica order: same stream, same schedule.
    """
    if n_replicas <= 0:
        raise ValueError(f"n_replicas must be positive, got {n_replicas}")
    if horizon_ms <= 0:
        raise ValueError(f"horizon_ms must be positive, got {horizon_ms}")
    if mean_incidents <= 0:
        raise ValueError(
            f"mean_incidents must be positive, got {mean_incidents}")
    mean_gap = horizon_ms / (mean_incidents + 1.0)
    incidents: list[FaultIncident] = []
    for replica in range(n_replicas):
        t = rng.exponential(mean_gap)
        while t < horizon_ms * 0.9:
            kind = rng.choices(INCIDENT_KINDS, weights=_WEIGHTS, k=1)[0]
            duration = min(max(min_duration_ms,
                               rng.exponential(horizon_ms * 0.15)),
                           horizon_ms - t - 1.0)
            if duration < min_duration_ms:
                break  # too close to the horizon to close the episode
            if kind == SLOW_REPLICA:
                magnitude = rng.uniform(2.0, 8.0)
            elif kind == DELAY_UPDATES:
                magnitude = rng.uniform(100.0, 1_000.0)
            elif kind == CORRUPT_WAL:
                magnitude = float(rng.randint(1, 4))
            else:
                magnitude = 1.0
            incidents.append(FaultIncident(kind, replica, t, duration,
                                           magnitude))
            t += duration + rng.exponential(mean_gap)
    incidents.sort(key=lambda i: (i.at_ms, i.replica, i.kind))
    return incidents
