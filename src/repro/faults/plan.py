"""Fault plans: deterministic schedules of failure events.

A :class:`FaultPlan` is an immutable, time-ordered list of
:class:`FaultEvent` records describing *what goes wrong and when* during a
simulation run: replica crashes and recoveries, stalls and bursts of the
external update source, and query load spikes.

Plans are either **scripted** (explicit event lists, the reproducible unit
tests use these) or **sampled** from failure models — exponential
MTTF/MTTR crash/repair cycles — using the library's named
:class:`~repro.sim.rng.RandomStream` machinery, so that a plan derived
from a master seed is bit-identical across runs and across the policies it
is used to compare.  Sampling happens *eagerly*: the returned plan is a
plain scripted event list, which keeps the injector trivial and the
schedule inspectable.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.sim.rng import RandomStream

#: Event kinds understood by the injector.
CRASH = "crash"
RECOVER = "recover"
PORTAL_CRASH = "portal_crash"
PORTAL_RECOVER = "portal_recover"
STALL_UPDATES = "stall_updates"
RESUME_UPDATES = "resume_updates"
SPIKE_START = "spike_start"
SPIKE_END = "spike_end"

KINDS = frozenset({CRASH, RECOVER, PORTAL_CRASH, PORTAL_RECOVER,
                   STALL_UPDATES, RESUME_UPDATES, SPIKE_START, SPIKE_END})

#: Kinds that name a target replica.
REPLICA_KINDS = frozenset({CRASH, RECOVER})


@dataclasses.dataclass(frozen=True, order=True)
class FaultEvent:
    """One scheduled fault: ``kind`` fires at ``at_ms`` on the sim clock.

    ``replica`` is the target replica index for crash/recover events (and
    must be ``None`` for the others).  ``magnitude`` is the query-rate
    multiplier for ``spike_start`` events (ignored elsewhere).
    """

    at_ms: float
    kind: str
    replica: int | None = None
    magnitude: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"choose from {sorted(KINDS)}")
        if self.at_ms < 0:
            raise ValueError(f"fault time must be >= 0, got {self.at_ms}")
        if self.kind in REPLICA_KINDS:
            if self.replica is None or self.replica < 0:
                raise ValueError(
                    f"{self.kind!r} needs a non-negative replica index, "
                    f"got {self.replica!r}")
        elif self.replica is not None:
            raise ValueError(f"{self.kind!r} does not target a replica")
        if self.kind == SPIKE_START and self.magnitude < 1.0:
            raise ValueError(
                f"spike magnitude must be >= 1, got {self.magnitude}")


class FaultPlan:
    """An immutable, time-sorted schedule of :class:`FaultEvent` records."""

    def __init__(self, events: typing.Iterable[FaultEvent] = ()) -> None:
        self.events: tuple[FaultEvent, ...] = tuple(
            sorted(events, key=lambda e: (e.at_ms, e.kind)))
        self._validate()

    def _validate(self) -> None:
        """Reject schedules that cannot describe a fail-stop history.

        Walking the time-sorted events with per-replica health state:
        crashing an already-down replica, recovering a replica that never
        crashed, double portal crashes, and portal recoveries without a
        preceding portal crash are all plan bugs — injecting them would
        silently no-op (the portal's lifecycle hooks are idempotent) and
        make the plan lie about the outage history it encodes.  Replica
        events inside a portal-wide outage are rejected for the same
        reason: the portal crash already owns every replica's state.
        """
        down: set[int] = set()
        portal_down = False
        for event in self.events:
            if event.kind == CRASH:
                replica = typing.cast(int, event.replica)
                if portal_down:
                    raise ValueError(
                        f"invalid fault plan: crash of replica {replica} "
                        f"at t={event.at_ms:g} falls inside a portal-wide "
                        f"outage (every replica is already down)")
                if replica in down:
                    raise ValueError(
                        f"invalid fault plan: replica {replica} is "
                        f"crashed again at t={event.at_ms:g} while still "
                        f"down (missing recover event?)")
                down.add(replica)
            elif event.kind == RECOVER:
                replica = typing.cast(int, event.replica)
                if portal_down:
                    raise ValueError(
                        f"invalid fault plan: recovery of replica "
                        f"{replica} at t={event.at_ms:g} falls inside a "
                        f"portal-wide outage (use portal_recover)")
                if replica not in down:
                    raise ValueError(
                        f"invalid fault plan: replica {replica} is "
                        f"recovered at t={event.at_ms:g} without a prior "
                        f"crash")
                down.discard(replica)
            elif event.kind == PORTAL_CRASH:
                if portal_down:
                    raise ValueError(
                        f"invalid fault plan: portal crashed again at "
                        f"t={event.at_ms:g} while still down")
                portal_down = True
            elif event.kind == PORTAL_RECOVER:
                if not portal_down:
                    raise ValueError(
                        f"invalid fault plan: portal recovery at "
                        f"t={event.at_ms:g} without a prior portal crash")
                portal_down = False
                down.clear()  # portal recovery brings every replica back

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> typing.Iterator[FaultEvent]:
        return iter(self.events)

    def __repr__(self) -> str:
        kinds = {}
        for event in self.events:
            kinds[event.kind] = kinds.get(event.kind, 0) + 1
        return f"<FaultPlan {len(self)} events {kinds}>"

    @property
    def max_replica(self) -> int:
        """Highest replica index any event targets (-1 if none do)."""
        targets = [e.replica for e in self.events if e.replica is not None]
        return max(targets) if targets else -1

    def merged(self, other: "FaultPlan") -> "FaultPlan":
        """A new plan combining both schedules."""
        return FaultPlan((*self.events, *other.events))

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def none(cls) -> "FaultPlan":
        """The empty plan: injecting it must not change any result."""
        return cls()

    @classmethod
    def scripted(cls, events: typing.Iterable[FaultEvent]) -> "FaultPlan":
        return cls(events)

    @classmethod
    def replica_crash(cls, replica: int, at_ms: float,
                      down_ms: float) -> "FaultPlan":
        """One crash of ``replica`` at ``at_ms``, repaired ``down_ms``
        later."""
        if down_ms <= 0:
            raise ValueError(f"down_ms must be positive, got {down_ms}")
        return cls([FaultEvent(at_ms, CRASH, replica=replica),
                    FaultEvent(at_ms + down_ms, RECOVER, replica=replica)])

    @classmethod
    def portal_crash(cls, at_ms: float, down_ms: float) -> "FaultPlan":
        """The whole portal fails at ``at_ms`` and returns ``down_ms``
        later — every replica crashes and recovers together."""
        if down_ms <= 0:
            raise ValueError(f"down_ms must be positive, got {down_ms}")
        return cls([FaultEvent(at_ms, PORTAL_CRASH),
                    FaultEvent(at_ms + down_ms, PORTAL_RECOVER)])

    @classmethod
    def update_stall(cls, at_ms: float, duration_ms: float) -> "FaultPlan":
        """The update source stalls at ``at_ms`` and bursts back after
        ``duration_ms`` (all withheld updates arrive at once)."""
        if duration_ms <= 0:
            raise ValueError(
                f"duration_ms must be positive, got {duration_ms}")
        return cls([FaultEvent(at_ms, STALL_UPDATES),
                    FaultEvent(at_ms + duration_ms, RESUME_UPDATES)])

    @classmethod
    def load_spike(cls, at_ms: float, duration_ms: float,
                   magnitude: float = 2.0) -> "FaultPlan":
        """Multiply the query arrival rate by ``magnitude`` for a window."""
        if duration_ms <= 0:
            raise ValueError(
                f"duration_ms must be positive, got {duration_ms}")
        return cls([FaultEvent(at_ms, SPIKE_START, magnitude=magnitude),
                    FaultEvent(at_ms + duration_ms, SPIKE_END)])

    @classmethod
    def sample_mtbf(cls, rng: RandomStream, n_replicas: int,
                    mttf_ms: float, mttr_ms: float,
                    horizon_ms: float) -> "FaultPlan":
        """Exponential crash/repair cycles for every replica.

        Each replica independently alternates UP (exponential with mean
        ``mttf_ms``) and DOWN (exponential with mean ``mttr_ms``) periods
        until ``horizon_ms``.  Draws come from ``rng`` in replica order, so
        the same stream produces the same plan — hand every policy under
        comparison a plan sampled from an identically-seeded stream.
        """
        if n_replicas <= 0:
            raise ValueError(f"n_replicas must be positive, got "
                             f"{n_replicas}")
        if horizon_ms <= 0:
            raise ValueError(f"horizon_ms must be positive, got "
                             f"{horizon_ms}")
        events: list[FaultEvent] = []
        for replica in range(n_replicas):
            t = rng.exponential(mttf_ms)
            while t < horizon_ms:
                events.append(FaultEvent(t, CRASH, replica=replica))
                t += rng.exponential(mttr_ms)
                if t >= horizon_ms:
                    break
                events.append(FaultEvent(t, RECOVER, replica=replica))
                t += rng.exponential(mttf_ms)
        return cls(events)
