"""Fault plans: deterministic schedules of failure events.

A :class:`FaultPlan` is an immutable, time-ordered list of
:class:`FaultEvent` records describing *what goes wrong and when* during a
simulation run: replica crashes and recoveries, stalls and bursts of the
external update source, and query load spikes.

Plans are either **scripted** (explicit event lists, the reproducible unit
tests use these) or **sampled** from failure models — exponential
MTTF/MTTR crash/repair cycles — using the library's named
:class:`~repro.sim.rng.RandomStream` machinery, so that a plan derived
from a master seed is bit-identical across runs and across the policies it
is used to compare.  Sampling happens *eagerly*: the returned plan is a
plain scripted event list, which keeps the injector trivial and the
schedule inspectable.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.sim.rng import RandomStream

#: Event kinds understood by the injector — fail-stop set.
CRASH = "crash"
RECOVER = "recover"
PORTAL_CRASH = "portal_crash"
PORTAL_RECOVER = "portal_recover"
STALL_UPDATES = "stall_updates"
RESUME_UPDATES = "resume_updates"
SPIKE_START = "spike_start"
SPIKE_END = "spike_end"

#: Gray-failure kinds: the replica stays up but degrades.
SLOW_REPLICA = "slow_replica"        #: service-rate multiplier on
RESTORE_REPLICA = "restore_replica"  #: ... and back off
DROP_UPDATES = "drop_updates"        #: broadcast link silently drops
DELAY_UPDATES = "delay_updates"      #: broadcast link delivers late
REORDER_UPDATES = "reorder_updates"  #: broadcast link shuffles
HEAL_UPDATES = "heal_updates"        #: close any lossy window (re-sync)
CORRUPT_WAL = "corrupt_wal"          #: flip bytes in durable WAL records

KINDS = frozenset({CRASH, RECOVER, PORTAL_CRASH, PORTAL_RECOVER,
                   STALL_UPDATES, RESUME_UPDATES, SPIKE_START, SPIKE_END,
                   SLOW_REPLICA, RESTORE_REPLICA, DROP_UPDATES,
                   DELAY_UPDATES, REORDER_UPDATES, HEAL_UPDATES,
                   CORRUPT_WAL})

#: Kinds that name a target replica.
REPLICA_KINDS = frozenset({CRASH, RECOVER, SLOW_REPLICA, RESTORE_REPLICA,
                           DROP_UPDATES, DELAY_UPDATES, REORDER_UPDATES,
                           HEAL_UPDATES, CORRUPT_WAL})

#: Kinds that open a lossy per-replica broadcast window.
WINDOW_KINDS = frozenset({DROP_UPDATES, DELAY_UPDATES, REORDER_UPDATES})


@dataclasses.dataclass(frozen=True, order=True)
class FaultEvent:
    """One scheduled fault: ``kind`` fires at ``at_ms`` on the sim clock.

    ``replica`` is the target replica index for crash/recover events (and
    must be ``None`` for the others).  ``magnitude`` is the query-rate
    multiplier for ``spike_start`` events (ignored elsewhere).
    """

    at_ms: float
    kind: str
    replica: int | None = None
    magnitude: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"choose from {sorted(KINDS)}")
        if self.at_ms < 0:
            raise ValueError(f"fault time must be >= 0, got {self.at_ms}")
        if self.kind in REPLICA_KINDS:
            if self.replica is None or self.replica < 0:
                raise ValueError(
                    f"{self.kind!r} needs a non-negative replica index, "
                    f"got {self.replica!r}")
        elif self.replica is not None:
            raise ValueError(f"{self.kind!r} does not target a replica")
        if self.kind == SPIKE_START and self.magnitude < 1.0:
            raise ValueError(
                f"spike magnitude must be >= 1, got {self.magnitude}")
        if self.kind == SLOW_REPLICA and self.magnitude <= 1.0:
            raise ValueError(
                f"slowdown factor must be > 1, got {self.magnitude}")
        if self.kind == DELAY_UPDATES and self.magnitude <= 0.0:
            raise ValueError(
                f"delay_updates needs a positive delay (ms) in "
                f"magnitude, got {self.magnitude}")
        if self.kind == CORRUPT_WAL and self.magnitude < 1.0:
            raise ValueError(
                f"corrupt_wal needs a record count >= 1 in magnitude, "
                f"got {self.magnitude}")

    def as_dict(self) -> dict[str, typing.Any]:
        """JSON-ready row (chaos repro artifacts round-trip through it)."""
        return {"at_ms": self.at_ms, "kind": self.kind,
                "replica": self.replica, "magnitude": self.magnitude}


class FaultPlan:
    """An immutable, time-sorted schedule of :class:`FaultEvent` records."""

    def __init__(self, events: typing.Iterable[FaultEvent] = ()) -> None:
        self.events: tuple[FaultEvent, ...] = tuple(
            sorted(events, key=lambda e: (e.at_ms, e.kind)))
        self._validate()

    #: What a replica-targeted kind does to the replica's condition:
    #: ``(required_condition, resulting_condition)``.  A replica is in at
    #: most one abnormal condition at a time — crash, slowdown, and lossy
    #: windows are mutually exclusive per replica (one incident at a
    #: time), which is also what the sampler in
    #: :mod:`repro.faults.incidents` guarantees by construction.
    _TRANSITIONS: typing.ClassVar[dict[str, tuple[object, str | None]]] = {
        CRASH: (None, "down"),
        RECOVER: ("down", None),
        SLOW_REPLICA: (None, "slow"),
        RESTORE_REPLICA: ("slow", None),
        DROP_UPDATES: (None, "drop"),
        DELAY_UPDATES: (None, "delay"),
        REORDER_UPDATES: (None, "reorder"),
    }

    def _validate(self) -> None:
        """Reject schedules that cannot describe a real fault history.

        Walking the time-sorted events with a per-replica *condition*
        (``None`` healthy, else one of ``down`` / ``slow`` / ``drop`` /
        ``delay`` / ``reorder``): crashing an already-down replica,
        healing a window that is not open, restoring a replica that is
        not slowed, double portal crashes, and portal recoveries without
        a preceding portal crash are all plan bugs — injecting them
        would silently no-op (the portal's lifecycle hooks are
        idempotent) and make the plan lie about the history it encodes.
        Conditions are mutually exclusive per replica: a plan wanting a
        slow *and* lossy replica expresses that with back-to-back
        incidents, not overlapping ones.  Replica events inside a
        portal-wide outage are rejected (the portal crash owns every
        replica's state and implicitly aborts open windows/slowdowns);
        ``corrupt_wal`` is exempt — flipping bytes in the durable log is
        legal at any time, including while its replica is down, and only
        surfaces at the next recovery's CRC scan.
        """
        condition: dict[int, str | None] = {}
        portal_down = False
        for event in self.events:
            if event.kind in REPLICA_KINDS:
                replica = typing.cast(int, event.replica)
                if event.kind == CORRUPT_WAL:
                    continue  # latent: no condition change, legal anywhere
                if portal_down:
                    raise ValueError(
                        f"invalid fault plan: {event.kind!r} on replica "
                        f"{replica} at t={event.at_ms:g} falls inside a "
                        f"portal-wide outage (the portal crash owns every "
                        f"replica's state)")
                if event.kind == HEAL_UPDATES:
                    current = condition.get(replica)
                    if current not in ("drop", "delay", "reorder"):
                        raise ValueError(
                            f"invalid fault plan: heal_updates on replica "
                            f"{replica} at t={event.at_ms:g} but no lossy "
                            f"window is open (condition: {current!r})")
                    condition[replica] = None
                    continue
                required, resulting = self._TRANSITIONS[event.kind]
                current = condition.get(replica)
                if current != required:
                    raise ValueError(
                        f"invalid fault plan: {event.kind!r} on replica "
                        f"{replica} at t={event.at_ms:g} requires "
                        f"condition {required!r} but the replica is in "
                        f"{current!r} (conditions are exclusive — close "
                        f"the open incident first)")
                condition[replica] = resulting
            elif event.kind == PORTAL_CRASH:
                if portal_down:
                    raise ValueError(
                        f"invalid fault plan: portal crashed again at "
                        f"t={event.at_ms:g} while still down")
                portal_down = True
            elif event.kind == PORTAL_RECOVER:
                if not portal_down:
                    raise ValueError(
                        f"invalid fault plan: portal recovery at "
                        f"t={event.at_ms:g} without a prior portal crash")
                portal_down = False
                # Portal recovery brings every replica back healthy; the
                # crash already aborted open windows and slowdowns.
                condition.clear()

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> typing.Iterator[FaultEvent]:
        return iter(self.events)

    def __repr__(self) -> str:
        kinds = {}
        for event in self.events:
            kinds[event.kind] = kinds.get(event.kind, 0) + 1
        return f"<FaultPlan {len(self)} events {kinds}>"

    @property
    def max_replica(self) -> int:
        """Highest replica index any event targets (-1 if none do)."""
        targets = [e.replica for e in self.events if e.replica is not None]
        return max(targets) if targets else -1

    def merged(self, other: "FaultPlan") -> "FaultPlan":
        """A new plan combining both schedules."""
        return FaultPlan((*self.events, *other.events))

    def as_dicts(self) -> list[dict[str, typing.Any]]:
        """JSON-ready rows, time-sorted (repro artifacts embed these)."""
        return [event.as_dict() for event in self.events]

    @classmethod
    def from_dicts(cls, rows: typing.Iterable[typing.Mapping[str, typing.Any]],
                   ) -> "FaultPlan":
        """Inverse of :meth:`as_dicts` (revalidates the schedule)."""
        return cls(FaultEvent(at_ms=row["at_ms"], kind=row["kind"],
                              replica=row.get("replica"),
                              magnitude=row.get("magnitude", 1.0))
                   for row in rows)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def none(cls) -> "FaultPlan":
        """The empty plan: injecting it must not change any result."""
        return cls()

    @classmethod
    def scripted(cls, events: typing.Iterable[FaultEvent]) -> "FaultPlan":
        return cls(events)

    @classmethod
    def replica_crash(cls, replica: int, at_ms: float,
                      down_ms: float) -> "FaultPlan":
        """One crash of ``replica`` at ``at_ms``, repaired ``down_ms``
        later."""
        if down_ms <= 0:
            raise ValueError(f"down_ms must be positive, got {down_ms}")
        return cls([FaultEvent(at_ms, CRASH, replica=replica),
                    FaultEvent(at_ms + down_ms, RECOVER, replica=replica)])

    @classmethod
    def portal_crash(cls, at_ms: float, down_ms: float) -> "FaultPlan":
        """The whole portal fails at ``at_ms`` and returns ``down_ms``
        later — every replica crashes and recovers together."""
        if down_ms <= 0:
            raise ValueError(f"down_ms must be positive, got {down_ms}")
        return cls([FaultEvent(at_ms, PORTAL_CRASH),
                    FaultEvent(at_ms + down_ms, PORTAL_RECOVER)])

    @classmethod
    def update_stall(cls, at_ms: float, duration_ms: float) -> "FaultPlan":
        """The update source stalls at ``at_ms`` and bursts back after
        ``duration_ms`` (all withheld updates arrive at once)."""
        if duration_ms <= 0:
            raise ValueError(
                f"duration_ms must be positive, got {duration_ms}")
        return cls([FaultEvent(at_ms, STALL_UPDATES),
                    FaultEvent(at_ms + duration_ms, RESUME_UPDATES)])

    @classmethod
    def load_spike(cls, at_ms: float, duration_ms: float,
                   magnitude: float = 2.0) -> "FaultPlan":
        """Multiply the query arrival rate by ``magnitude`` for a window."""
        if duration_ms <= 0:
            raise ValueError(
                f"duration_ms must be positive, got {duration_ms}")
        return cls([FaultEvent(at_ms, SPIKE_START, magnitude=magnitude),
                    FaultEvent(at_ms + duration_ms, SPIKE_END)])

    @classmethod
    def slowdown(cls, replica: int, at_ms: float, duration_ms: float,
                 factor: float = 4.0) -> "FaultPlan":
        """Replica ``replica`` serves ``factor``x slower for a window."""
        if duration_ms <= 0:
            raise ValueError(
                f"duration_ms must be positive, got {duration_ms}")
        return cls([FaultEvent(at_ms, SLOW_REPLICA, replica=replica,
                               magnitude=factor),
                    FaultEvent(at_ms + duration_ms, RESTORE_REPLICA,
                               replica=replica)])

    @classmethod
    def update_loss(cls, replica: int, at_ms: float, duration_ms: float,
                    mode: str = DROP_UPDATES,
                    delay_ms: float = 500.0) -> "FaultPlan":
        """A lossy broadcast window on ``replica``: updates are dropped,
        delayed by ``delay_ms``, or reordered until the healing event
        ``duration_ms`` later (which re-syncs whatever the mode lost)."""
        if duration_ms <= 0:
            raise ValueError(
                f"duration_ms must be positive, got {duration_ms}")
        if mode not in WINDOW_KINDS:
            raise ValueError(f"mode must be one of "
                             f"{sorted(WINDOW_KINDS)}, got {mode!r}")
        magnitude = delay_ms if mode == DELAY_UPDATES else 1.0
        return cls([FaultEvent(at_ms, mode, replica=replica,
                               magnitude=magnitude),
                    FaultEvent(at_ms + duration_ms, HEAL_UPDATES,
                               replica=replica)])

    @classmethod
    def wal_corruption(cls, replica: int, at_ms: float, down_ms: float,
                       records: int = 1) -> "FaultPlan":
        """Corrupt the newest ``records`` durable WAL records of
        ``replica`` at ``at_ms``, then crash it so the corruption
        surfaces at recovery (CRC scan → truncated replay + re-sync)."""
        if records < 1:
            raise ValueError(f"records must be >= 1, got {records}")
        if down_ms <= 0:
            raise ValueError(f"down_ms must be positive, got {down_ms}")
        return cls([FaultEvent(at_ms, CORRUPT_WAL, replica=replica,
                               magnitude=float(records)),
                    FaultEvent(at_ms, CRASH, replica=replica),
                    FaultEvent(at_ms + down_ms, RECOVER, replica=replica)])

    @classmethod
    def sample_mtbf(cls, rng: RandomStream, n_replicas: int,
                    mttf_ms: float, mttr_ms: float,
                    horizon_ms: float) -> "FaultPlan":
        """Exponential crash/repair cycles for every replica.

        Each replica independently alternates UP (exponential with mean
        ``mttf_ms``) and DOWN (exponential with mean ``mttr_ms``) periods
        until ``horizon_ms``.  Draws come from ``rng`` in replica order, so
        the same stream produces the same plan — hand every policy under
        comparison a plan sampled from an identically-seeded stream.
        """
        if n_replicas <= 0:
            raise ValueError(f"n_replicas must be positive, got "
                             f"{n_replicas}")
        if horizon_ms <= 0:
            raise ValueError(f"horizon_ms must be positive, got "
                             f"{horizon_ms}")
        events: list[FaultEvent] = []
        for replica in range(n_replicas):
            t = rng.exponential(mttf_ms)
            while t < horizon_ms:
                events.append(FaultEvent(t, CRASH, replica=replica))
                t += rng.exponential(mttr_ms)
                if t >= horizon_ms:
                    break
                events.append(FaultEvent(t, RECOVER, replica=replica))
                t += rng.exponential(mttf_ms)
        return cls(events)
