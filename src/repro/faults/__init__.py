"""Fault injection: deterministic failure schedules for robustness runs.

The paper's system is infallible; production web-databases are not.  This
subpackage adds the failure half of the robustness story:

* :class:`FaultPlan` / :class:`FaultEvent` — scripted or sampled
  (exponential MTTF/MTTR) schedules of replica crashes, update-source
  stalls, and query load spikes;
* :class:`FaultInjector` — a simulation process replaying a plan against a
  :class:`~repro.cluster.portal.ReplicatedPortal`.

Degraded-operation machinery lives with the components it degrades:
replica crash/recovery in :mod:`repro.cluster.portal`, failure-aware
routing and failover in :mod:`repro.cluster`, overload shedding in
:mod:`repro.db.admission`.
"""

from .injector import FaultInjector
from .plan import (CRASH, KINDS, PORTAL_CRASH, PORTAL_RECOVER, RECOVER,
                   RESUME_UPDATES, SPIKE_END, SPIKE_START, STALL_UPDATES,
                   FaultEvent, FaultPlan)

__all__ = [
    "CRASH",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "KINDS",
    "PORTAL_CRASH",
    "PORTAL_RECOVER",
    "RECOVER",
    "RESUME_UPDATES",
    "SPIKE_END",
    "SPIKE_START",
    "STALL_UPDATES",
]
