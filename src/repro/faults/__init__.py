"""Fault injection: deterministic failure schedules for robustness runs.

The paper's system is infallible; production web-databases are not.  This
subpackage adds the failure half of the robustness story:

* :class:`FaultPlan` / :class:`FaultEvent` — scripted or sampled
  (exponential MTTF/MTTR) schedules of replica crashes, update-source
  stalls, and query load spikes;
* :class:`FaultInjector` — a simulation process replaying a plan against a
  :class:`~repro.cluster.portal.ReplicatedPortal`;
* :class:`FaultIncident` / :func:`sample_incidents` /
  :func:`expand_incidents` — the incident granularity the chaos harness
  samples and shrinks (every subset of an incident list is a valid plan);
* :func:`shrink_incidents` — delta-debugging a failing schedule down to
  a minimal repro.

The plan vocabulary covers fail-stop faults (crashes, portal outages,
source stalls, load spikes) and **gray failures**: replica slowdowns
(``slow_replica``), lossy broadcast windows (``drop_updates`` /
``delay_updates`` / ``reorder_updates`` closed by ``heal_updates``), and
silent WAL corruption (``corrupt_wal``).

Degraded-operation machinery lives with the components it degrades:
replica crash/recovery, gray-failure windows, the failure detector and
circuit breakers in :mod:`repro.cluster`, overload shedding and brownout
in :mod:`repro.db.admission`.
"""

from .incidents import (INCIDENT_KINDS, FaultIncident, expand_incidents,
                        sample_incidents)
from .injector import FaultInjector
from .plan import (CORRUPT_WAL, CRASH, DELAY_UPDATES, DROP_UPDATES,
                   HEAL_UPDATES, KINDS, PORTAL_CRASH, PORTAL_RECOVER,
                   RECOVER, REORDER_UPDATES, RESTORE_REPLICA,
                   RESUME_UPDATES, SLOW_REPLICA, SPIKE_END, SPIKE_START,
                   STALL_UPDATES, WINDOW_KINDS, FaultEvent, FaultPlan)
from .shrink import ShrinkResult, shrink_incidents

__all__ = [
    "CORRUPT_WAL",
    "CRASH",
    "DELAY_UPDATES",
    "DROP_UPDATES",
    "FaultEvent",
    "FaultIncident",
    "FaultInjector",
    "FaultPlan",
    "HEAL_UPDATES",
    "INCIDENT_KINDS",
    "KINDS",
    "PORTAL_CRASH",
    "PORTAL_RECOVER",
    "RECOVER",
    "REORDER_UPDATES",
    "RESTORE_REPLICA",
    "RESUME_UPDATES",
    "SLOW_REPLICA",
    "SPIKE_END",
    "SPIKE_START",
    "STALL_UPDATES",
    "ShrinkResult",
    "WINDOW_KINDS",
    "expand_incidents",
    "sample_incidents",
    "shrink_incidents",
]
