"""The fault injector: replays a :class:`FaultPlan` on the sim clock.

The injector is a plain simulation process.  It walks the plan's events in
time order and, at each event's instant:

* ``crash`` / ``recover`` — calls
  :meth:`~repro.cluster.portal.ReplicatedPortal.crash_replica` /
  :meth:`~repro.cluster.portal.ReplicatedPortal.recover_replica` on the
  attached portal (plans that would double-crash a replica or recover
  one that never went down are rejected by
  :class:`~repro.faults.plan.FaultPlan` validation at construction);
* ``portal_crash`` / ``portal_recover`` — a portal-wide outage:
  :meth:`~repro.cluster.portal.ReplicatedPortal.crash_portal` takes every
  replica down at once and
  :meth:`~repro.cluster.portal.ReplicatedPortal.recover_portal` brings
  them all back (with a durability layer attached, each replica recovers
  from its last checkpoint plus the durable WAL tail);
* ``stall_updates`` / ``resume_updates`` — flips a gate the cluster
  runner's update source waits on.  While stalled, the source is parked;
  on resume every withheld update is delivered in one burst at the resume
  instant (the source replays its backlog with zero inter-arrival delay);
* ``spike_start`` / ``spike_end`` — sets the query multiplier the runner
  consults: during a spike of magnitude *m*, each trace query is submitted
  *m* times (clones share the original's contract), modelling a flash
  crowd on top of the recorded trace;
* ``slow_replica`` / ``restore_replica`` — gray failure: the target
  replica's service rate is divided by ``magnitude`` (CPU slices and
  class-switch overheads stretch) without flipping its health bit;
* ``drop_updates`` / ``delay_updates`` / ``reorder_updates`` /
  ``heal_updates`` — a lossy broadcast window on one replica: updates
  are silently withheld, delivered ``magnitude`` ms late, or shuffled;
  the heal event closes the window and re-syncs whatever was lost (see
  :meth:`~repro.cluster.portal.ReplicatedPortal.heal_updates`);
* ``corrupt_wal`` — flips the newest ``magnitude`` durable WAL records
  of the target replica without touching their checksums; the damage is
  latent until the replica next restores, whose CRC scan truncates the
  replay at the first bad record and read-repairs from a healthy peer.

With an empty plan the injector does nothing and a run with it attached is
bit-identical to a run without it (the determinism contract extends to
fault schedules).
"""

from __future__ import annotations

import typing

from repro.sim import Environment, Event
from repro.sim.process import ProcessGenerator

from .plan import (CORRUPT_WAL, CRASH, DELAY_UPDATES, DROP_UPDATES,
                   HEAL_UPDATES, PORTAL_CRASH, PORTAL_RECOVER, RECOVER,
                   REORDER_UPDATES, RESTORE_REPLICA, RESUME_UPDATES,
                   SLOW_REPLICA, SPIKE_END, SPIKE_START, STALL_UPDATES,
                   FaultEvent, FaultPlan)

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.portal import ReplicatedPortal


class FaultInjector:
    """Schedules a plan's fault events against a replicated portal."""

    def __init__(self, env: Environment, plan: FaultPlan,
                 portal: "ReplicatedPortal") -> None:
        if plan.max_replica >= len(portal.replicas):
            raise ValueError(
                f"plan targets replica {plan.max_replica} but the portal "
                f"has only {len(portal.replicas)} replicas")
        self.env = env
        self.plan = plan
        self.portal = portal
        #: Events fired so far, by kind (inspection/reporting).
        self.fired: dict[str, int] = {}
        self._stall_released: Event | None = None
        self._spike_multiplier = 1.0
        if len(plan):
            env.process(self._driver(), name="fault-injector")

    def __repr__(self) -> str:
        return (f"<FaultInjector t={self.env.now:.0f} "
                f"fired={self.fired} plan={self.plan!r}>")

    # ------------------------------------------------------------------
    # State the runner's arrival sources consult
    # ------------------------------------------------------------------
    @property
    def updates_stalled(self) -> bool:
        return self._stall_released is not None

    @property
    def query_multiplier(self) -> float:
        """Current load-spike multiplier (1.0 outside spike windows)."""
        return self._spike_multiplier

    def extra_query_copies(self) -> int:
        """Clone count the runner submits on top of each trace query."""
        return max(0, round(self._spike_multiplier) - 1)

    def update_gate(self) -> ProcessGenerator:
        """Generator the update source yields from before each delivery;
        parks the source while the update stream is stalled."""
        while self._stall_released is not None:
            yield self._stall_released

    # ------------------------------------------------------------------
    # The driver process
    # ------------------------------------------------------------------
    def _driver(self) -> ProcessGenerator:
        env = self.env
        for event in self.plan:
            delay = event.at_ms - env.now
            if delay > 0:
                yield env.timeout(delay)
            self._fire(event)

    def _fire(self, event: FaultEvent) -> None:
        self.fired[event.kind] = self.fired.get(event.kind, 0) + 1
        if event.kind == CRASH:
            self.portal.crash_replica(event.replica)
        elif event.kind == RECOVER:
            self.portal.recover_replica(event.replica)
        elif event.kind == PORTAL_CRASH:
            self.portal.crash_portal()
        elif event.kind == PORTAL_RECOVER:
            self.portal.recover_portal()
        elif event.kind == STALL_UPDATES:
            if self._stall_released is None:
                self._stall_released = self.env.event()
        elif event.kind == RESUME_UPDATES:
            released = self._stall_released
            self._stall_released = None
            if released is not None and not released.triggered:
                released.succeed()
        elif event.kind == SPIKE_START:
            self._spike_multiplier = event.magnitude
        elif event.kind == SPIKE_END:
            self._spike_multiplier = 1.0
        elif event.kind == SLOW_REPLICA:
            self.portal.slow_replica(typing.cast(int, event.replica),
                                     event.magnitude)
        elif event.kind == RESTORE_REPLICA:
            self.portal.restore_replica(typing.cast(int, event.replica))
        elif event.kind in (DROP_UPDATES, DELAY_UPDATES, REORDER_UPDATES):
            mode = {DROP_UPDATES: "drop", DELAY_UPDATES: "delay",
                    REORDER_UPDATES: "reorder"}[event.kind]
            self.portal.open_update_window(
                typing.cast(int, event.replica), mode,
                delay_ms=event.magnitude)
        elif event.kind == HEAL_UPDATES:
            self.portal.heal_updates(typing.cast(int, event.replica))
        elif event.kind == CORRUPT_WAL:
            self.portal.corrupt_wal(typing.cast(int, event.replica),
                                    records=int(event.magnitude))
