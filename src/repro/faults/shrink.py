"""Schedule shrinking: delta-debug a failing chaos schedule to a minimum.

When the chaos harness finds a sampled incident schedule that makes an
invariant fail, the raw schedule is a poor repro: most of its incidents
are noise.  :func:`shrink_incidents` reduces it with the classic ddmin
moves, re-running the oracle after every candidate reduction:

1. **chunk removal** — try deleting halves, then quarters, ... then
   single incidents; keep any deletion that still reproduces;
2. **duration narrowing** — for each surviving incident, repeatedly try
   halving its duration (a shorter window that still fails localises the
   trigger in time).

Subsets of an incident list always expand to valid plans (per-replica
episodes stay disjoint under deletion — see
:mod:`repro.faults.incidents`), so the search never wastes oracle runs
on malformed candidates.  The whole procedure is deterministic: the
move order is fixed, and the oracle itself is a deterministic
simulation, so the same failing schedule always shrinks to the same
minimal repro.

The oracle (``reproduces``) is arbitrary — the chaos harness passes "run
the full simulation under this incident list and see whether the
invariant still fails".  Oracle runs are budgeted via ``max_checks``:
shrinking is best-effort and stops improving when the budget runs out
(the current smallest failing schedule is returned).
"""

from __future__ import annotations

import dataclasses
import typing

from .incidents import FaultIncident

Oracle = typing.Callable[[typing.Sequence[FaultIncident]], bool]


@dataclasses.dataclass
class ShrinkResult:
    """Outcome of a shrink: the minimal schedule plus search statistics."""

    incidents: list[FaultIncident]
    checks: int
    removed: int
    narrowed: int
    exhausted: bool  # True when the budget ran out mid-search


def shrink_incidents(incidents: typing.Sequence[FaultIncident],
                     reproduces: Oracle,
                     max_checks: int = 64) -> ShrinkResult:
    """Reduce a failing incident schedule to a (1-)minimal one.

    ``reproduces(candidate)`` must return True when the candidate
    schedule still triggers the failure.  The input schedule itself is
    assumed to reproduce (the caller just observed it fail); it is never
    re-checked.
    """
    if max_checks < 1:
        raise ValueError(f"max_checks must be >= 1, got {max_checks}")
    current = list(incidents)
    checks = 0
    removed = 0
    narrowed = 0
    exhausted = False

    def try_candidate(candidate: list[FaultIncident]) -> bool:
        nonlocal checks, exhausted
        if checks >= max_checks:
            exhausted = True
            return False
        checks += 1
        return reproduces(candidate)

    # Phase 1: ddmin chunk removal.  Granularity starts at halves and
    # refines toward single incidents; any successful deletion restarts
    # the pass at the same granularity on the smaller schedule.
    granularity = 2
    while len(current) >= 2 and not exhausted:
        chunk = max(1, len(current) // granularity)
        reduced = False
        start = 0
        while start < len(current):
            candidate = current[:start] + current[start + chunk:]
            if candidate and try_candidate(candidate):
                removed += len(current) - len(candidate)
                current = candidate
                reduced = True
                # Stay at this granularity; re-scan from the start.
                start = 0
                chunk = max(1, len(current) // granularity)
                continue
            if exhausted:
                break
            start += chunk
        if not reduced:
            if chunk == 1:
                break  # 1-minimal w.r.t. deletion
            granularity = min(len(current), granularity * 2)

    # Phase 2: narrow the survivors' durations (halving, a few rounds).
    for index in range(len(current)):
        if exhausted:
            break
        for _ in range(4):
            incident = current[index]
            shorter = incident.duration_ms / 2.0
            if shorter < 100.0:
                break
            candidate = list(current)
            candidate[index] = dataclasses.replace(incident,
                                                   duration_ms=shorter)
            if not try_candidate(candidate):
                break
            current = candidate
            narrowed += 1

    return ShrinkResult(incidents=current, checks=checks, removed=removed,
                        narrowed=narrowed, exhausted=exhausted)
