"""Staleness-aware replica selection (the Dynamo expected-staleness model).

PAPERS.md's "Minimizing Content Staleness in Dynamo-Style Replicated
Storage Systems" scores a replica by the staleness a read served there is
*expected* to see, not by queue lengths alone; Liu & Ji's
performance-vs-freshness tradeoff motivates measuring that expectation in
simulated **age**, not unapplied-update counts.  The
:class:`StalenessAwareRouter` reproduces that model on top of the shared
freshness metric exposed by :mod:`repro.cluster.routers`:

``expected staleness = current age + backlog x per-update cost x
(1 + hotness)``

* *current age* — how long the read set has already been stale on the
  replica (:func:`repro.cluster.routers.staleness_age`);
* *backlog* — pending updates queued on the replica: each delays the
  catch-up by roughly one update service time;
* *hotness* — a per-key update-rate EWMA (maintained from the update
  stream via :meth:`StalenessAwareRouter.observe_update`): a read set
  whose keys are refreshed every few ms goes stale again immediately, so
  backlog on its replicas is weighted up.

The score is blended with the query's own preference (a QoD-heavy
contract weighs expected staleness; a QoS-heavy one weighs the query
queue) and with the gray-failure health signal (a replica whose circuit
breaker is not CLOSED pays a flat penalty — it may be routable only
because every breaker tripped and routing failed open).

Everything is deterministic: no randomness, pure arithmetic over
simulated-clock state, ties broken by replica index.
"""

from __future__ import annotations

import typing

from repro.cluster.health import CLOSED
from repro.cluster.routers import Router, staleness_age, update_backlog
from repro.db.transactions import Query

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.portal import ReplicaHandle


class UpdateRateTracker:
    """Per-key inter-arrival EWMA over the update stream.

    ``observe(key, now)`` folds one arrival in; ``rate(key)`` is the
    estimated update rate in updates/ms (0.0 for keys never observed or
    observed once — no gap, no rate).
    """

    __slots__ = ("alpha", "_last", "_gap_ewma")

    def __init__(self, alpha: float = 0.2) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._last: dict[str, float] = {}
        self._gap_ewma: dict[str, float] = {}

    def observe(self, key: str, now: float) -> None:
        last = self._last.get(key)
        self._last[key] = now
        if last is None:
            return
        gap = now - last
        current = self._gap_ewma.get(key)
        self._gap_ewma[key] = (gap if current is None
                               else current + self.alpha * (gap - current))

    def rate(self, key: str) -> float:
        """Estimated update rate for ``key``, updates per ms."""
        gap = self._gap_ewma.get(key)
        if gap is None or gap <= 0.0:
            return 0.0
        return 1.0 / gap

    def hotness(self, keys: typing.Iterable[str]) -> float:
        """The read set's worst-case rate (its hottest key)."""
        return max((self.rate(key) for key in keys), default=0.0)


class StalenessAwareRouter(Router):
    """Pick the replica minimising blended expected staleness.

    ``backlog_ms_per_update`` approximates one update's service +
    queueing cost; ``hotness_scale`` converts the rate EWMA into a
    backlog multiplier; ``queue_ms_per_query`` prices the query queue
    for the QoS side of the blend; ``breaker_penalty_ms`` is the flat
    health penalty for a not-CLOSED breaker.
    """

    name = "staleness-aware"

    def __init__(self, backlog_ms_per_update: float = 4.0,
                 hotness_scale: float = 100.0,
                 queue_ms_per_query: float = 4.0,
                 breaker_penalty_ms: float = 1_000.0,
                 rate_alpha: float = 0.2) -> None:
        if backlog_ms_per_update < 0 or queue_ms_per_query < 0:
            raise ValueError("per-item costs must be >= 0")
        if hotness_scale < 0 or breaker_penalty_ms < 0:
            raise ValueError("scales must be >= 0")
        self.backlog_ms_per_update = backlog_ms_per_update
        self.hotness_scale = hotness_scale
        self.queue_ms_per_query = queue_ms_per_query
        self.breaker_penalty_ms = breaker_penalty_ms
        self.rates = UpdateRateTracker(alpha=rate_alpha)

    # -- the update-rate watermark --------------------------------------
    def observe_update(self, key: str, now: float) -> None:
        """Fold one update arrival into the per-key rate EWMA."""
        self.rates.observe(key, now)

    # -- the expected-staleness model -----------------------------------
    def expected_staleness_ms(self, replica: "ReplicaHandle",
                              keys: typing.Sequence[str],
                              now: float) -> float:
        """Expected read-set staleness (ms) if served by ``replica``."""
        age = staleness_age(replica, keys, now)
        backlog = update_backlog(replica)
        hot = self.hotness_scale * self.rates.hotness(keys)
        return age + backlog * self.backlog_ms_per_update * (1.0 + hot)

    def _health_penalty(self, replica: "ReplicaHandle") -> float:
        breaker = getattr(replica, "breaker", None)
        if breaker is None or breaker.state == CLOSED:
            return 0.0
        return self.breaker_penalty_ms

    # -- Router ----------------------------------------------------------
    def choose(self, query: Query,
               replicas: "typing.Sequence[ReplicaHandle]") -> int:
        healthy = self.healthy_indices(replicas)
        now = replicas[healthy[0]].server.env.now
        total = query.qc.total_max
        qod_share = query.qc.qod_max / total if total > 0 else 0.0

        def score(index: int) -> float:
            replica = replicas[index]
            freshness = self.expected_staleness_ms(replica, query.items,
                                                   now)
            latency = (replica.pending_queries()
                       * self.queue_ms_per_query)
            return (qod_share * freshness + (1.0 - qod_share) * latency
                    + self._health_penalty(replica))

        return min(healthy, key=lambda i: (score(i), i))
