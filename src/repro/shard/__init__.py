"""repro.shard — sharded multi-portal scale-out.

The keyspace is partitioned across shards by a deterministic
consistent-hash ring (:class:`HashRing`); each shard is a full
:class:`~repro.cluster.portal.ReplicatedPortal`.  Queries are planned
over the ring by the :class:`ShardPlanner` (owner routing, scatter-
gather fan-out with deadline propagation and partial-result
degradation); replicas within a shard are picked by the
:class:`StalenessAwareRouter` (Dynamo expected-staleness model); the
:class:`ShardedPortal` ties it together and, when given a
:class:`RebalanceConfig`, rebalances ring weight away from hot shards
with a deterministic drain → copy → cutover migration.

See ``docs/API.md`` §18 and ``repro.experiments.scaleout`` for the
driver; ``benchmarks/test_shard_scaleout.py`` measures profit vs shard
count and static-vs-rebalancing rings under Zipf hot-key skew.
"""

from .planner import FanoutState, ShardPlanner
from .portal import RebalanceConfig, ShardedPortal
from .ring import DEFAULT_VNODES_PER_WEIGHT, HashRing
from .router import StalenessAwareRouter, UpdateRateTracker

__all__ = [
    "DEFAULT_VNODES_PER_WEIGHT",
    "FanoutState",
    "HashRing",
    "RebalanceConfig",
    "ShardPlanner",
    "ShardedPortal",
    "StalenessAwareRouter",
    "UpdateRateTracker",
]
