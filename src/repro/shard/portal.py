"""The sharded portal: N replicated portals behind a consistent-hash ring.

``ShardedPortal`` is the scale-out layer the ROADMAP's top open item
asks for: instead of every portal paying the full 4,608-stock update
stream (replication), the keyspace is **partitioned** across shards —
each shard a full :class:`~repro.cluster.portal.ReplicatedPortal`, so
sharding composes with replication, failover, WAL recovery, and the
gray-failure health machinery unchanged.  The pieces:

* **routing** — the :class:`~repro.shard.ring.HashRing` fixes key
  ownership; queries go through the
  :class:`~repro.shard.planner.ShardPlanner` (owner routing +
  scatter-gather fan-out), updates go to their owner's portal only —
  this is what makes update work actually partition;
* **staleness-aware replica choice** — each shard's portal routes among
  its replicas with a
  :class:`~repro.shard.router.StalenessAwareRouter` fed by the update
  stream's per-key rate EWMA;
* **rebalancing** — a deterministic controller samples per-shard load
  every ``interval_ms``; when the hottest shard carries more than
  ``skew_threshold`` times the mean it sheds ring weight, and the moved
  arcs migrate with a drain → copy → cutover protocol built on the
  existing snapshot primitives.  Updates for in-flight keys are frozen
  into a buffer and replayed at cutover; the
  :class:`~repro.sim.invariants.InvariantMonitor`'s ``shard_cutover``
  law asserts buffered == replayed (no update lost or double-applied
  across a migration).

Everything is deterministic: ring positions are seed-derived, the
controller draws no randomness, per-shard portals get *spawned* stream
registries (independent, reproducible seed universes), and migration
steps run in fixed shard order.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.cluster.portal import ReplicatedPortal
from repro.cluster.routers import Router
from repro.db.admission import AdmissionPolicy
from repro.db.server import ServerConfig
from repro.db.transactions import Query
from repro.db.wal import DurabilityConfig
from repro.scheduling.base import Scheduler
from repro.sim.environment import Environment
from repro.sim.invariants import InvariantMonitor
from repro.sim.monitor import CounterSet
from repro.sim.process import ProcessGenerator
from repro.sim.rng import StreamRegistry
from repro.telemetry.hooks import TelemetryKnob, TelemetrySession

from .planner import ShardPlanner
from .ring import HashRing
from .router import StalenessAwareRouter

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.health import HealthConfig


@dataclasses.dataclass(frozen=True)
class RebalanceConfig:
    """Knobs for the hot-key rebalancing controller (plain, picklable)."""

    #: How often the controller samples the per-shard load window.
    interval_ms: float = 5_000.0
    #: Hottest-shard load must exceed ``skew_threshold x mean`` to act.
    skew_threshold: float = 1.5
    #: Drain poll cadence while waiting for in-flight updates.
    drain_poll_ms: float = 10.0
    #: Give up draining after this long; still-pending update values are
    #: salvaged into the replay buffer so they reach the destination.
    drain_timeout_ms: float = 2_000.0
    #: A shard never sheds weight below this floor.
    min_weight: int = 1

    def __post_init__(self) -> None:
        if self.interval_ms <= 0 or self.drain_poll_ms <= 0:
            raise ValueError("intervals must be positive")
        if self.skew_threshold < 1.0:
            raise ValueError(
                f"skew_threshold must be >= 1, got {self.skew_threshold}")
        if self.drain_timeout_ms < 0 or self.min_weight < 1:
            raise ValueError("invalid drain_timeout_ms / min_weight")


class _MigrationGroup:
    """One (source, dest) key batch inside a migration step."""

    __slots__ = ("source", "dest", "keys", "buffer", "buffered")

    def __init__(self, source: int, dest: int) -> None:
        self.source = source
        self.dest = dest
        self.keys: list[str] = []
        #: Frozen updates: (buffered_at, exec_ms, item, value).
        self.buffer: list[tuple[float, float, str, float]] = []
        self.buffered = 0


class ShardedPortal:
    """The 4,608-stock keyspace partitioned across ``n_shards`` portals."""

    def __init__(self, env: Environment, n_shards: int,
                 scheduler_factory: typing.Callable[[], Scheduler],
                 streams: StreamRegistry,
                 keys: typing.Sequence[str],
                 *,
                 replicas_per_shard: int = 1,
                 router_factory: typing.Callable[[], Router] | None = None,
                 server_config: ServerConfig | None = None,
                 failover_retries: int = 6,
                 failover_backoff_ms: float = 50.0,
                 durability: DurabilityConfig | None = None,
                 monitor: InvariantMonitor | None = None,
                 telemetry: TelemetryKnob = None,
                 health: "HealthConfig | None" = None,
                 admission_factory: typing.Callable[
                     [], AdmissionPolicy] | None = None,
                 base_weight: int = 4,
                 rebalance: RebalanceConfig | None = None) -> None:
        if n_shards <= 0:
            raise ValueError(f"need at least one shard, got {n_shards}")
        if base_weight < 1:
            raise ValueError(f"base_weight must be >= 1, got {base_weight}")
        self.env = env
        self.monitor = monitor
        #: The key universe, sorted for deterministic migration order.
        self.keys: tuple[str, ...] = tuple(sorted(keys))
        #: Ring seed derived from the master seed through the registry,
        #: so placement is part of the run's reproducible seed universe.
        ring_seed = streams.stream("shard.ring").initial_seed
        self.ring = HashRing(
            n_shards, ring_seed,
            weights={s: base_weight for s in range(n_shards)})
        self.rebalance = rebalance
        self.telemetry = TelemetrySession.from_knob(telemetry)
        self._probe = (self.telemetry.shard_probe("shard")
                       if self.telemetry is not None else None)
        self.planner = ShardPlanner(env, monitor=monitor,
                                    probe=self._probe)
        #: Per-shard replica routers (shared freshness metric consumers);
        #: update arrivals feed their rate EWMAs.
        self.routers: list[Router] = []
        self.shards: list[ReplicatedPortal] = []
        for index in range(n_shards):
            router = (router_factory() if router_factory is not None
                      else StalenessAwareRouter())
            self.routers.append(router)
            self.shards.append(ReplicatedPortal(
                env, replicas_per_shard, scheduler_factory,
                streams.spawn(f"shard-{index}"), router=router,
                server_config=server_config,
                failover_retries=failover_retries,
                failover_backoff_ms=failover_backoff_ms,
                durability=durability, monitor=monitor,
                telemetry=self.telemetry, health=health,
                admission_factory=admission_factory,
                telemetry_prefix=f"shard{index}/"))
        #: Load window the rebalance controller samples (queries routed
        #: + updates delivered per shard since the last sample).
        self._load_window = [0] * n_shards
        #: Lifetime per-shard routing tallies (balance inspection).
        self.query_counts = [0] * n_shards
        self.update_counts = [0] * n_shards
        #: Keys frozen mid-migration -> their (source, dest) group.
        self._migrating: dict[str, _MigrationGroup] = {}
        self._migration_active = False
        self.rebalances = 0
        self.keys_migrated = 0
        self.counters = CounterSet()
        if rebalance is not None and n_shards > 1:
            env.process(self._rebalance_controller(),
                        name="shard-rebalancer")

    def __repr__(self) -> str:
        return (f"<ShardedPortal shards={len(self.shards)} "
                f"weights={self.ring.weights} "
                f"rebalances={self.rebalances}>")

    # ------------------------------------------------------------------
    # Arrivals
    # ------------------------------------------------------------------
    def submit_query(self, query: Query) -> None:
        """Plan the read set over the ring and dispatch."""
        owners = self.planner.split(query, self.ring.owner)
        if len(owners) == 1:
            shard = next(iter(owners))
            self._load_window[shard] += 1
            self.query_counts[shard] += 1
            self.counters.increment("queries_single_shard")
            if self._probe is not None:
                self._probe.route(self.env.now, query, shard)
            self.shards[shard].submit_query(query)
            return
        self.counters.increment("queries_fanned_out")
        for shard, sub in self.planner.fan_out(query, owners):
            self._load_window[shard] += 1
            self.query_counts[shard] += 1
            self.shards[shard].adopt_query(sub)

    def route_update(self, arrival_time: float, exec_ms: float, item: str,
                     value: float) -> None:
        """Deliver one update to its owning shard (or freeze it).

        A key mid-migration buffers its updates; the cutover replays
        them on the destination, so nothing is lost and nothing applies
        twice — the ``shard_cutover`` invariant.
        """
        group = self._migrating.get(item)
        if group is not None:
            group.buffer.append((arrival_time, exec_ms, item, value))
            group.buffered += 1
            self.counters.increment("updates_frozen")
            return
        shard = self.ring.owner(item)
        self._deliver_update(shard, arrival_time, exec_ms, item, value)

    def _deliver_update(self, shard: int, arrival_time: float,
                        exec_ms: float, item: str, value: float) -> None:
        self._load_window[shard] += 1
        self.update_counts[shard] += 1
        router = self.routers[shard]
        observe = getattr(router, "observe_update", None)
        if observe is not None:
            observe(item, arrival_time)
        self.shards[shard].broadcast_update(arrival_time, exec_ms, item,
                                            value)

    # ------------------------------------------------------------------
    # Rebalancing under hot-key skew
    # ------------------------------------------------------------------
    def _rebalance_controller(self) -> ProcessGenerator:
        config = typing.cast(RebalanceConfig, self.rebalance)
        n = len(self.shards)
        while True:
            yield self.env.timeout(config.interval_ms)
            loads = list(self._load_window)
            self._load_window = [0] * n
            if self._migration_active:
                continue  # one migration at a time
            total = sum(loads)
            if total <= 0:
                continue
            mean = total / n
            hot = max(range(n), key=lambda i: (loads[i], -i))
            if loads[hot] < config.skew_threshold * mean:
                continue
            if self.ring.weights[hot] <= config.min_weight:
                continue  # cannot shed further
            successor = self.ring.with_weight(
                hot, self.ring.weights[hot] - 1)
            moved = self.ring.moved_keys(successor, self.keys)
            if not moved:
                continue
            cold = min(range(n), key=lambda i: (loads[i], i))
            self._migration_active = True
            self.rebalances += 1
            self.counters.increment("rebalances")
            if self._probe is not None:
                self._probe.rebalance(self.env.now, hot, cold, len(moved))
            self.env.process(
                self._migration(successor, moved),
                name=f"shard-migration-{self.rebalances}")

    def _migration(self, successor: HashRing,
                   moved: dict[str, tuple[int, int]]) -> ProcessGenerator:
        """Drain → copy → cutover for one ring change (one weight move).

        Queries keep hitting the *source* throughout (ownership flips
        only at cutover), so reads never block on a migration; updates
        for the moved keys freeze into per-group buffers.
        """
        config = typing.cast(RebalanceConfig, self.rebalance)
        groups: dict[tuple[int, int], _MigrationGroup] = {}
        for key in sorted(moved):
            source, dest = moved[key]
            group = groups.get((source, dest))
            if group is None:
                group = _MigrationGroup(source, dest)
                groups[(source, dest)] = group
            group.keys.append(key)
            self._migrating[key] = group
        ordered = [groups[pair] for pair in sorted(groups)]
        now = self.env.now
        if self._probe is not None:
            for group in ordered:
                self._probe.migrate_start(now, group.source, group.dest,
                                          len(group.keys))
        # Drain: wait for in-flight (registered, unapplied) updates on
        # the moved keys to commit on their source shard.
        polls = max(1, int(config.drain_timeout_ms // config.drain_poll_ms))
        for _ in range(polls):
            pending = any(
                self.shards[group.source].pending_update_for(key)
                for group in ordered for key in group.keys)
            if not pending:
                break
            yield self.env.timeout(config.drain_poll_ms)
        # Salvage: an update still pending after the timeout would apply
        # on the source *after* cutover — to a copy nothing reads any
        # more.  Re-route its value through the buffer so the
        # destination sees it; the stale source apply is then harmless.
        for group in ordered:
            salvaged: list[tuple[float, float, str, float]] = []
            for key in group.keys:
                update = None
                for replica in self.shards[group.source].replicas:
                    if replica.up:
                        update = \
                            replica.server.database.pending_update(key)
                        if update is not None:
                            break
                if update is not None:
                    salvaged.append((self.env.now, update.exec_time,
                                     update.item, update.value))
                    group.buffered += 1
                    self.counters.increment("updates_salvaged")
            group.buffer[:0] = salvaged
        # Copy: partial snapshot over the existing durability primitives.
        for group in ordered:
            snapshot = self.shards[group.source].export_items(group.keys)
            self.shards[group.dest].import_items(snapshot)
            self.keys_migrated += len(group.keys)
            self.counters.increment("keys_migrated", len(group.keys))
            if self._probe is not None:
                self._probe.migrate_copy(self.env.now, group.source,
                                         group.dest, len(snapshot))
        # Cutover: flip ownership, then replay the frozen updates on the
        # destination in buffered order (no yields below — the whole
        # cutover is atomic at one simulated instant).
        self.ring = successor
        for key in moved:
            del self._migrating[key]
        for group in ordered:
            replayed = 0
            for buffered_at, exec_ms, item, value in group.buffer:
                self._deliver_update(group.dest, buffered_at, exec_ms,
                                     item, value)
                replayed += 1
            if self.monitor is not None:
                self.monitor.record(
                    "shard_cutover", source=group.source,
                    dest=group.dest, buffered=group.buffered,
                    replayed=replayed)
            if self._probe is not None:
                self._probe.cutover(self.env.now, group.source,
                                    group.dest, replayed)
        self._migration_active = False

    # ------------------------------------------------------------------
    # End of run + aggregates
    # ------------------------------------------------------------------
    def finalize(self) -> None:
        """Finalize every shard; fan-out merges resolve via the subs'
        terminal hooks as their servers finalize."""
        for shard in self.shards:
            shard.finalize()
        if self.planner.open_fanouts:  # pragma: no cover - safety net
            raise RuntimeError(
                f"{len(self.planner.open_fanouts)} fan-out merge(s) "
                f"unresolved after finalize")

    @property
    def total_max(self) -> float:
        return (sum(s.total_max for s in self.shards)
                + self.planner.ledger.total_max)

    @property
    def total_gained(self) -> float:
        return (sum(s.total_gained for s in self.shards)
                + self.planner.ledger.total_gained)

    @property
    def total_percent(self) -> float:
        total_max = self.total_max
        return self.total_gained / total_max if total_max else 0.0

    @property
    def qos_percent(self) -> float:
        total_max = self.total_max
        if not total_max:
            return 0.0
        gained = (sum(r.ledger.qos_gained
                      for s in self.shards for r in s.replicas)
                  + self.planner.ledger.qos_gained)
        return gained / total_max

    @property
    def qod_percent(self) -> float:
        total_max = self.total_max
        if not total_max:
            return 0.0
        gained = (sum(r.ledger.qod_gained
                      for s in self.shards for r in s.replicas)
                  + self.planner.ledger.qod_gained)
        return gained / total_max

    def mean_response_time(self) -> float:
        """Committed-query mean over every shard plus fan-out parents."""
        tallies = [r.ledger.response_time
                   for s in self.shards for r in s.replicas]
        tallies.append(self.planner.ledger.response_time)
        count = sum(t.count for t in tallies)
        if not count:
            return 0.0
        return sum(t.total for t in tallies) / count

    def merged_counters(self) -> dict[str, int]:
        """Portal + planner + every shard's counters, summed by name."""
        combined: dict[str, int] = dict(self.counters.as_dict())
        for name, value in \
                self.planner.ledger.counters.as_dict().items():
            combined[name] = combined.get(name, 0) + value
        for shard in self.shards:
            for name, value in shard.counters().items():
                combined[name] = combined.get(name, 0) + value
        return combined
