"""The shard-aware query planner: owner routing and scatter-gather merge.

Single-stock queries go straight to the shard owning the stock; a query
whose read set spans shards is **fanned out**: one sub-query per touched
shard, each carrying

* the shard's slice of the read set,
* a proportional slice of the service demand (a 3-item read costs the
  shard holding 2 of them two thirds of the work),
* a *scaled copy* of the parent contract
  (:meth:`~repro.qc.contracts.QualityContract.scaled`) — same deadlines
  and shape, dollar amounts scaled by the slice.  Priority schedulers
  (VRD's deadline key, QUTS's profit mass) therefore treat the sub-query
  like its parent instead of starving it behind every deadline-carrying
  query (a free-QC sub-query's VRD key would sort *last*),
* ``shadow_priced=True`` — the serving shard credits zero profit at
  commit, because the parent contract is priced exactly once, here, in
  the planner's fan-out ledger,
* the parent's ``lifetime_deadline`` (deadline propagation: the fan-out
  must finish inside the parent's lifetime, not restart the clock).

The merge resolves when the *last* sub-query reaches a terminal state
(observed via ``Transaction.on_terminal``, which fires on every exit
path — commit, drop, crash loss, end-of-run finalisation):

* ≥ 1 sub committed → the parent commits at the resolution time with
  staleness aggregated over the committed slices; if any slice failed
  the commit is **degraded** (qod = 0) — the partial-result semantics of
  ``repro.serve``'s brownout answers;
* every sub failed → the parent takes the dominant failure (crash loss
  > lifetime drop > unfinished) so cluster accounting stays faithful.

Every parent and sub-query is also recorded with the run's
:class:`~repro.sim.invariants.InvariantMonitor`, so the conservation
laws cover the fan-out layer: each sub terminates exactly once, each
parent terminates exactly once, and the profit credited for a parent
matches the fan-out ledger's gained total.
"""

from __future__ import annotations

import typing

from repro.db.transactions import Query, TxnStatus
from repro.metrics.profit import ProfitLedger

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.environment import Environment
    from repro.sim.invariants import InvariantMonitor
    from repro.telemetry.hooks import ShardProbe


class FanoutState:
    """Bookkeeping for one in-flight scatter-gather parent."""

    __slots__ = ("parent", "subs", "submitted", "expected", "terminal")

    def __init__(self, parent: Query, submitted: float,
                 expected: int) -> None:
        self.parent = parent
        self.submitted = submitted
        self.expected = expected
        self.subs: list[Query] = []
        self.terminal = 0


class ShardPlanner:
    """Plans read sets over the ring and resolves scatter-gather merges.

    The planner owns the **fan-out ledger**: the only place a
    multi-shard query's contract is priced and credited.  Single-shard
    queries bypass it entirely (their contracts are priced by the
    owning shard's portal, exactly like an unsharded run).
    """

    def __init__(self, env: "Environment",
                 monitor: "InvariantMonitor | None" = None,
                 probe: "ShardProbe | None" = None) -> None:
        self.env = env
        self.monitor = monitor
        self.probe = probe
        #: Prices and credits every fan-out parent contract.
        self.ledger = ProfitLedger()
        #: parent txn_id -> in-flight state; removed at resolution.
        self.open_fanouts: dict[int, FanoutState] = {}
        self.fanouts_resolved = 0

    # ------------------------------------------------------------------
    def split(self, query: Query,
              owner_of: typing.Callable[[str], int]) -> dict[int, list[str]]:
        """Group the read set by owning shard (insertion-ordered)."""
        owners: dict[int, list[str]] = {}
        for item in query.items:
            owners.setdefault(owner_of(item), []).append(item)
        return owners

    def fan_out(self, query: Query,
                owners: dict[int, list[str]]) -> list[tuple[int, Query]]:
        """Build the sub-queries for a multi-shard parent.

        Returns ``[(shard, sub_query), ...]`` in ascending shard order;
        the caller adopts each sub into its shard portal.  The parent is
        priced into the fan-out ledger here, and both the parent and
        every sub are opened with the invariant monitor.
        """
        now = self.env.now
        self.ledger.on_query_submitted(query, now)
        if self.monitor is not None:
            self.monitor.record("query_submitted", txn_id=query.txn_id)
        state = FanoutState(query, now, expected=len(owners))
        self.open_fanouts[query.txn_id] = state
        n_items = len(query.items)
        planned: list[tuple[int, Query]] = []
        for shard in sorted(owners):
            items = owners[shard]
            share = len(items) / n_items
            sub = Query(now, query.exec_time * share, items,
                        query.qc.scaled(share),
                        lifetime_deadline=query.lifetime_deadline)
            sub.shadow_priced = True
            sub.on_terminal = self._make_terminal_hook(state)
            if self.monitor is not None:
                self.monitor.record("query_submitted", txn_id=sub.txn_id)
            state.subs.append(sub)
            planned.append((shard, sub))
        if self.probe is not None:
            self.probe.fanout(now, query, [s for s, _ in planned])
        return planned

    def _make_terminal_hook(
            self, state: FanoutState) -> typing.Callable[[typing.Any], None]:
        def on_terminal(_txn: typing.Any) -> None:
            state.terminal += 1
            if state.terminal == state.expected:
                self._resolve(state)
        return on_terminal

    # ------------------------------------------------------------------
    def _resolve(self, state: FanoutState) -> None:
        """The last sub-query died or committed: settle the parent."""
        now = self.env.now
        parent = state.parent
        self.open_fanouts.pop(parent.txn_id, None)
        self.fanouts_resolved += 1
        committed = [sub for sub in state.subs
                     if sub.status is TxnStatus.COMMITTED]
        failed = len(state.subs) - len(committed)
        parent.finish_time = now
        if committed:
            # Staleness aggregates over the slices that answered (max —
            # the same aggregation Database applies within one server).
            parent.staleness = max(
                typing.cast(float, sub.staleness) for sub in committed)
            qos, qod = parent.qc.evaluate(parent.response_time(),
                                          parent.staleness)
            if failed:
                # Partial result: answer with what arrived, forfeit the
                # freshness half — repro.serve's degraded-commit rule.
                parent.degraded = True
                qod = 0.0
            parent.qos_profit = qos
            parent.qod_profit = qod
            parent.status = TxnStatus.COMMITTED
            self.ledger.on_query_committed(parent, now)
            if self.monitor is not None:
                self.monitor.record("query_committed",
                                    txn_id=parent.txn_id,
                                    profit=parent.total_profit)
            if self.probe is not None:
                self.probe.merge(now, parent, state.submitted,
                                 len(committed), failed, parent.degraded)
            return
        # Nothing answered: the parent inherits the dominant failure.
        statuses = {sub.status for sub in state.subs}
        if TxnStatus.LOST_CRASH in statuses:
            parent.status = TxnStatus.LOST_CRASH
            self.ledger.on_query_lost_to_crash(parent, now)
            kind = "query_lost"
        elif statuses == {TxnStatus.UNFINISHED}:
            parent.status = TxnStatus.UNFINISHED
            self.ledger.on_query_unfinished(parent)
            kind = "query_unfinished"
        else:
            parent.status = TxnStatus.DROPPED_LIFETIME
            self.ledger.on_query_dropped(parent, now)
            kind = "query_dropped"
        if self.monitor is not None:
            self.monitor.record(kind, txn_id=parent.txn_id)
        if self.probe is not None:
            self.probe.merge(now, parent, state.submitted, 0, failed,
                             True)
