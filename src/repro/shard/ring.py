"""A deterministic, weighted consistent-hash ring over stock keys.

The ring partitions the keyspace across shards with the classic
virtual-node construction (Karger et al.; the placement half of the
Dynamo design in PAPERS.md): every shard owns ``weight x
vnodes_per_weight`` points on a 64-bit circle, and a key belongs to the
shard owning the first point at or after the key's own position
(wrapping).  Three properties make it the right data structure here:

* **determinism** — positions come from SHA-256 over
  ``"{seed}:..."`` strings, never from Python's salted ``hash()``, so
  the same seed gives the same ring on every run, platform, and worker
  process (the bit-identity contract extends to placement);
* **balance** — with enough virtual nodes per shard the arc lengths
  concentrate, so the 4,608 stocks spread within a small factor of the
  fair share (property-tested in ``tests/test_shard_ring.py``);
* **minimal movement** — vnode positions depend only on ``(seed, shard,
  vnode index)``.  Adding a shard, or raising a shard's weight, adds
  points without moving any existing one, so exactly the keys on the
  newly claimed arcs change owner — the property that makes online
  rebalancing affordable (only the moved arcs migrate).

Rings are immutable; rebalancing builds a successor with
:meth:`HashRing.with_weight` / :meth:`HashRing.with_shard` and diffs
ownership via :meth:`HashRing.moved_keys`.
"""

from __future__ import annotations

import bisect
import hashlib
import typing

#: Virtual nodes per unit of shard weight.  128 keeps the max/fair-share
#: ratio under ~1.6 at 4,608 keys (see the balance property test) while
#: ring construction stays sub-millisecond.
DEFAULT_VNODES_PER_WEIGHT = 128


def _position(seed: int, label: str) -> int:
    """A stable 64-bit ring position for ``label`` under ``seed``."""
    digest = hashlib.sha256(f"{seed}:{label}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Immutable weighted consistent-hash ring: key -> shard index."""

    def __init__(self, n_shards: int, seed: int,
                 weights: typing.Mapping[int, int] | None = None,
                 vnodes_per_weight: int = DEFAULT_VNODES_PER_WEIGHT) -> None:
        if n_shards <= 0:
            raise ValueError(f"need at least one shard, got {n_shards}")
        if vnodes_per_weight <= 0:
            raise ValueError(
                f"vnodes_per_weight must be positive, "
                f"got {vnodes_per_weight}")
        self.n_shards = n_shards
        self.seed = seed
        self.vnodes_per_weight = vnodes_per_weight
        self.weights: dict[int, int] = {
            shard: 1 for shard in range(n_shards)}
        if weights is not None:
            for shard, weight in weights.items():
                if not 0 <= shard < n_shards:
                    raise ValueError(f"unknown shard {shard}")
                if weight < 1:
                    raise ValueError(
                        f"shard {shard} weight must be >= 1, got {weight}")
                self.weights[shard] = weight
        # One (position, shard) point per vnode.  Vnode ``v`` of a shard
        # keeps its position forever — weight changes only add or remove
        # the highest-numbered vnodes, which is what bounds movement.
        points: list[tuple[int, int]] = []
        for shard in range(n_shards):
            for vnode in range(self.weights[shard] * vnodes_per_weight):
                points.append(
                    (_position(seed, f"vnode:{shard}:{vnode}"), shard))
        points.sort()
        self._positions = [p for p, _ in points]
        self._owners = [s for _, s in points]

    def __repr__(self) -> str:
        return (f"<HashRing shards={self.n_shards} "
                f"weights={self.weights} vnodes={len(self._positions)}>")

    def owner(self, key: str) -> int:
        """The shard owning ``key`` (first vnode at/after its position)."""
        position = _position(self.seed, f"key:{key}")
        index = bisect.bisect_left(self._positions, position)
        if index == len(self._positions):
            index = 0  # wrap past the top of the circle
        return self._owners[index]

    def assign(self, keys: typing.Iterable[str]) -> dict[int, list[str]]:
        """Ownership map ``shard -> keys`` (every key exactly once)."""
        out: dict[int, list[str]] = {s: [] for s in range(self.n_shards)}
        for key in keys:
            out[self.owner(key)].append(key)
        return out

    # ------------------------------------------------------------------
    # Successor rings (rebalancing)
    # ------------------------------------------------------------------
    def with_weight(self, shard: int, weight: int) -> "HashRing":
        """A successor ring with ``shard``'s weight set to ``weight``."""
        weights = dict(self.weights)
        weights[shard] = weight
        return HashRing(self.n_shards, self.seed, weights=weights,
                        vnodes_per_weight=self.vnodes_per_weight)

    def with_shard(self) -> "HashRing":
        """A successor ring with one more (weight-1) shard appended."""
        return HashRing(self.n_shards + 1, self.seed,
                        weights=dict(self.weights),
                        vnodes_per_weight=self.vnodes_per_weight)

    def moved_keys(self, successor: "HashRing",
                   keys: typing.Iterable[str]) -> dict[str, tuple[int, int]]:
        """Keys whose owner differs under ``successor``.

        Returns ``key -> (old_owner, new_owner)`` — the migration
        work-list for a rebalance step.  Deterministic iteration order:
        follows ``keys``.
        """
        moved: dict[str, tuple[int, int]] = {}
        for key in keys:
            old = self.owner(key)
            new = successor.owner(key)
            if old != new:
                moved[key] = (old, new)
        return moved
