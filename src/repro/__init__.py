"""repro — Quality Contracts and QUTS scheduling for web-databases.

A from-scratch, production-quality reproduction of

    Huiming Qu, Alexandros Labrinidis.
    "Preference-Aware Query and Update Scheduling in Web-databases."
    ICDE 2007.

The package layers:

* :mod:`repro.sim` — a discrete-event simulation kernel;
* :mod:`repro.db` — the main-memory web-database (items, update register
  table, 2PL-HP locks, preemptive single-CPU server);
* :mod:`repro.qc` — Quality Contracts (step/linear/piecewise profit
  functions over QoS and QoD);
* :mod:`repro.scheduling` — FIFO, UH, QH baselines and the QUTS two-level
  scheduler;
* :mod:`repro.workload` — a synthetic Stock.com/NYSE trace generator;
* :mod:`repro.metrics` — profit ledgers and run results;
* :mod:`repro.parallel` — deterministic multiprocess fan-out of
  experiment sweeps (bit-identical to sequential runs);
* :mod:`repro.faults` — deterministic fault injection (replica crashes,
  portal-wide outages, update stalls, load spikes) for robustness
  experiments, with write-ahead logging + checkpoint recovery
  (:mod:`repro.db.wal`) and a runtime invariant monitor
  (:mod:`repro.sim.invariants`);
* :mod:`repro.experiments` — one driver per table/figure of the paper.

Quickstart::

    from repro import (QCFactory, QUTSScheduler, paper_trace,
                       run_simulation)

    trace = paper_trace(duration_ms=60_000)
    result = run_simulation(QUTSScheduler(), trace, QCFactory.balanced())
    print(result.total_percent)
"""

from repro.db import (Database, DatabaseServer, DurabilityConfig, Query,
                      ServerConfig, Update, WriteAheadLog)
from repro.experiments import ExperimentConfig, run_simulation
from repro.faults import FaultEvent, FaultInjector, FaultPlan
from repro.metrics import ProfitLedger, SimulationResult
from repro.parallel import Task, run_tasks, task_seed
from repro.sim.invariants import InvariantMonitor, InvariantViolation
from repro.qc import (CompositionMode, LinearProfit, PhasedQCFactory,
                      PiecewiseLinearProfit, QCFactory, QualityContract,
                      StepProfit)
from repro.scheduling import (FIFOScheduler, QUTSScheduler, make_qh,
                              make_scheduler, make_uh, optimal_rho)
from repro.sim import Environment, StreamRegistry
from repro.workload import (StockWorkloadGenerator, Trace, WorkloadSpec,
                            paper_trace)

__version__ = "1.0.0"

__all__ = [
    "CompositionMode",
    "Database",
    "DatabaseServer",
    "Environment",
    "ExperimentConfig",
    "FIFOScheduler",
    "DurabilityConfig",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "InvariantMonitor",
    "InvariantViolation",
    "LinearProfit",
    "PhasedQCFactory",
    "PiecewiseLinearProfit",
    "ProfitLedger",
    "QCFactory",
    "QUTSScheduler",
    "QualityContract",
    "Query",
    "ServerConfig",
    "SimulationResult",
    "Task",
    "StepProfit",
    "StockWorkloadGenerator",
    "StreamRegistry",
    "Trace",
    "Update",
    "WorkloadSpec",
    "WriteAheadLog",
    "make_qh",
    "make_scheduler",
    "make_uh",
    "optimal_rho",
    "paper_trace",
    "run_simulation",
    "run_tasks",
    "task_seed",
    "__version__",
]
