"""CLI entry points: ``repro serve`` and ``repro loadgen``.

``repro serve`` runs the live gateway with a JSON-lines TCP front until
interrupted; ``repro loadgen`` drives one in-process policy × load cell
(or a TCP target) and prints the cell report as JSON.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import typing

from repro.scheduling import make_scheduler

from .gateway import GatewayConfig, QCGateway
from .loadgen import (LoadgenConfig, baseline_gateway_config,
                      defended_gateway_config, run_cell)
from .protocol import serve_tcp

SERVE_POLICIES = ("FIFO", "UH", "QH", "QUTS", "FIFO-UH", "FIFO-QH",
                  "QUTS-inherit")


def _add_gateway_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--policy", default="QUTS", choices=SERVE_POLICIES,
                        help="scheduling policy (default QUTS)")
    parser.add_argument("--admission", default="brownout",
                        choices=("none", "shed", "brownout"),
                        help="overload admission mode (default brownout)")
    parser.add_argument("--max-pending", type=int, default=256,
                        help="bounded-ingress query capacity before "
                             "backpressure (default 256; the update "
                             "bound is 8x this)")
    parser.add_argument("--no-deadlines", action="store_true",
                        help="disable deadline-based cancellation of "
                             "expired work")
    parser.add_argument("--seed", type=int, default=0,
                        help="master seed for the gateway's named "
                             "streams")


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Run the live QC gateway (the simulator's scheduling "
                    "core on a monotonic clock) behind a JSON-lines TCP "
                    "front")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8642,
                        help="TCP port (0 lets the OS pick; default 8642)")
    _add_gateway_args(parser)
    return parser


def _gateway_from_args(args: argparse.Namespace) -> QCGateway:
    from .loadgen import _admission_for
    config = GatewayConfig(max_pending_queries=args.max_pending,
                           max_pending_updates=8 * args.max_pending,
                           drop_expired=not args.no_deadlines)
    if args.no_deadlines:
        config.deadline_factor = None
    return QCGateway(make_scheduler(args.policy), config,
                     admission=_admission_for(args.admission),
                     master_seed=args.seed)


async def _serve_forever(args: argparse.Namespace) -> int:
    gateway = _gateway_from_args(args)
    await gateway.start()
    server = await serve_tcp(gateway, args.host, args.port)
    host, port = server.sockets[0].getsockname()[:2]
    print(f"repro serve: policy={args.policy} admission={args.admission} "
          f"listening on {host}:{port}")
    try:
        await server.serve_forever()
    except asyncio.CancelledError:  # pragma: no cover - shutdown path
        pass
    finally:
        server.close()
        await server.wait_closed()
        await gateway.stop()
    return 0


def serve_main(argv: typing.Sequence[str] | None = None) -> int:
    args = build_serve_parser().parse_args(argv)
    try:
        return asyncio.run(_serve_forever(args))
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        print("repro serve: interrupted, shutting down")
        return 0


def build_loadgen_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro loadgen",
        description="Open-loop load harness: Poisson arrivals, "
                    "Zipf-skewed keys, QC contracts; drives an "
                    "in-process gateway cell and prints the report "
                    "as JSON")
    _add_gateway_args(parser)
    parser.add_argument("--duration-ms", type=float, default=2_500.0,
                        help="offered-load window (default 2500)")
    parser.add_argument("--multiplier", type=float, default=1.0,
                        help="load multiplier on the base rates "
                             "(default 1.0)")
    parser.add_argument("--baseline", action="store_true",
                        help="run the no-defenses baseline instead of "
                             "the defended stack")
    parser.add_argument("--retry-fraction", type=float, default=0.1,
                        help="client retry-budget fraction "
                             "(default 0.1; negative disables retries)")
    return parser


def loadgen_main(argv: typing.Sequence[str] | None = None) -> int:
    args = build_loadgen_parser().parse_args(argv)
    retry: float | None = args.retry_fraction
    if retry is not None and retry < 0:
        retry = None
    config = LoadgenConfig(duration_ms=args.duration_ms,
                           rate_multiplier=args.multiplier,
                           master_seed=args.seed,
                           retry_fraction=retry)
    report = run_cell(args.policy, defended=not args.baseline,
                      admission=args.admission, config=config)
    report["defended"] = not args.baseline
    print(json.dumps(report, indent=2, sort_keys=True))
    return 0


__all__ = [
    "baseline_gateway_config",
    "build_loadgen_parser",
    "build_serve_parser",
    "defended_gateway_config",
    "loadgen_main",
    "serve_main",
]
