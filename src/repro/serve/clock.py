"""The live monotonic clock — the only module allowed to read the host
clock inside :mod:`repro.serve`.

Everything in the gateway measures time through
:class:`MonotonicClock`, which implements the same
:class:`~repro.scheduling.core.SchedulerClock` surface the DES binds via
:class:`~repro.scheduling.core.DESClock`: ``now`` in milliseconds and
``call_periodic`` for QUTS's ρ-adaptation.  Keeping every
``time.monotonic()`` read behind this one class is enforced by simlint's
``no-wall-clock`` rule (this file is its single exemption under
``src/repro/serve/``), so the rest of the serving stack stays testable
against a :class:`ManualClock` and cannot grow hidden host-time
dependencies.
"""

from __future__ import annotations

import asyncio
import time
import typing


class _Periodic:
    """One registered periodic callback (period in ms)."""

    __slots__ = ("period_ms", "fn", "name")

    def __init__(self, period_ms: float,
                 fn: typing.Callable[[float], None], name: str) -> None:
        self.period_ms = period_ms
        self.fn = fn
        self.name = name


class MonotonicClock:
    """Milliseconds since construction, read from ``time.monotonic``.

    Implements :class:`~repro.scheduling.core.SchedulerClock`.
    ``call_periodic`` registrations become asyncio tasks once
    :meth:`start` runs inside an event loop (registrations made after
    ``start`` spawn immediately); :meth:`stop` cancels them.  The zero
    point is the clock's construction instant, so gateway timestamps are
    small, comparable floats just like simulated time.
    """

    def __init__(self) -> None:
        self._origin = time.monotonic()
        self._periodics: list[_Periodic] = []
        self._tasks: list[asyncio.Task[None]] = []
        self._started = False

    @property
    def now(self) -> float:
        """Milliseconds elapsed since the clock was created."""
        return (time.monotonic() - self._origin) * 1000.0

    def call_periodic(self, period_ms: float,
                      fn: typing.Callable[[float], None], *,
                      name: str) -> None:
        if period_ms <= 0:
            raise ValueError(f"period_ms must be positive, got {period_ms}")
        periodic = _Periodic(period_ms, fn, name)
        self._periodics.append(periodic)
        if self._started:
            self._spawn(periodic)

    # ------------------------------------------------------------------
    # Lifecycle (driven by the gateway)
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn one asyncio ticker task per registered periodic."""
        if self._started:
            return
        self._started = True
        for periodic in self._periodics:
            self._spawn(periodic)

    def _spawn(self, periodic: _Periodic) -> None:
        task = asyncio.get_running_loop().create_task(
            self._tick(periodic), name=periodic.name)
        self._tasks.append(task)

    async def _tick(self, periodic: _Periodic) -> None:
        period_s = periodic.period_ms / 1000.0
        while True:
            await asyncio.sleep(period_s)
            periodic.fn(self.now)

    async def stop(self) -> None:
        """Cancel every ticker task and wait for them to unwind."""
        self._started = False
        tasks, self._tasks = self._tasks, []
        for task in tasks:
            task.cancel()
        for task in tasks:
            try:
                await task
            except asyncio.CancelledError:
                pass


class ManualClock:
    """A hand-cranked :class:`~repro.scheduling.core.SchedulerClock` for
    tests: ``advance`` moves time and fires due periodics in
    registration order, with no host clock and no event loop."""

    def __init__(self, start_ms: float = 0.0) -> None:
        self._now = start_ms
        self._periodics: list[_Periodic] = []
        self._due: dict[int, float] = {}

    @property
    def now(self) -> float:
        return self._now

    def call_periodic(self, period_ms: float,
                      fn: typing.Callable[[float], None], *,
                      name: str) -> None:
        if period_ms <= 0:
            raise ValueError(f"period_ms must be positive, got {period_ms}")
        periodic = _Periodic(period_ms, fn, name)
        self._periodics.append(periodic)
        self._due[id(periodic)] = self._now + period_ms

    def advance(self, delta_ms: float) -> None:
        """Move the clock forward, firing periodics as they come due."""
        if delta_ms < 0:
            raise ValueError(f"cannot move time backwards ({delta_ms})")
        target = self._now + delta_ms
        while True:
            upcoming = [(due, periodic) for periodic in self._periodics
                        if (due := self._due[id(periodic)]) <= target]
            if not upcoming:
                break
            upcoming.sort(key=lambda pair: pair[0])
            due, periodic = upcoming[0]
            self._now = due
            self._due[id(periodic)] = due + periodic.period_ms
            periodic.fn(self._now)
        self._now = target
