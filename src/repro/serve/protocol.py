"""JSON-lines wire protocol + the TCP front for the QC gateway.

One request per line, one reply per line, plain JSON — trivially
debuggable with ``nc localhost 8642``:

.. code-block:: json

    {"op": "query", "id": 7, "items": ["S0012"], "exec_ms": 3.2,
     "qc": {"shape": "step", "qos_max": 30.0, "rt_max": 75.0,
            "qod_max": 20.0, "uu_max": 1.0, "lifetime_ms": 5000.0}}
    {"op": "update", "id": 8, "item": "S0012", "value": 101.5,
     "exec_ms": 1.0}

Replies echo the client's ``id`` and carry the terminal
:class:`~repro.serve.gateway.GatewayReply` fields (``outcome``,
``rt_ms``, ``qos``, ``qod``, ``staleness``, ``degraded``,
``retry_after_ms``).  Backpressure and shedding are *replies*, not
dropped connections — explicit signaling is what lets the client's
retry budget make an informed decision.
"""

from __future__ import annotations

import asyncio
import json
import typing

from repro.qc.contracts import QualityContract

from .gateway import GatewayReply, QCGateway

#: QC shapes expressible on the wire.
_QC_SHAPES = ("step", "linear")


class ProtocolError(ValueError):
    """A malformed request line (the reply carries the message)."""


# ----------------------------------------------------------------------
# Quality contracts on the wire
# ----------------------------------------------------------------------
def qc_to_wire(qc: QualityContract, shape: str = "step",
               ) -> dict[str, typing.Any]:
    """Flatten a contract to its wire dict (step/linear shapes only)."""
    if shape not in _QC_SHAPES:
        raise ValueError(f"unknown QC shape {shape!r}")
    return {"shape": shape, "qos_max": qc.qos_max, "rt_max": qc.rt_max,
            "qod_max": qc.qod_max, "uu_max": qc.uu_max,
            "lifetime_ms": qc.lifetime}


def qc_from_wire(wire: typing.Mapping[str, typing.Any]) -> QualityContract:
    """Rebuild a contract from its wire dict."""
    shape = wire.get("shape", "step")
    if shape not in _QC_SHAPES:
        raise ProtocolError(f"unknown QC shape {shape!r}")
    builder = (QualityContract.step if shape == "step"
               else QualityContract.linear)
    try:
        return builder(
            float(wire["qos_max"]), float(wire["rt_max"]),
            float(wire["qod_max"]), float(wire["uu_max"]),
            lifetime=float(wire.get("lifetime_ms", 150_000.0)))
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"bad QC on the wire: {exc}") from exc


# ----------------------------------------------------------------------
# Requests and replies
# ----------------------------------------------------------------------
def encode_reply(request_id: typing.Any, reply: GatewayReply) -> bytes:
    payload = {
        "id": request_id,
        "outcome": reply.outcome,
        "rt_ms": reply.response_time_ms,
        "qos": reply.qos_profit,
        "qod": reply.qod_profit,
        "staleness": reply.staleness,
        "degraded": reply.degraded,
        "values": reply.values,
        "retry_after_ms": reply.retry_after_ms,
    }
    return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")


def encode_error(request_id: typing.Any, message: str) -> bytes:
    payload = {"id": request_id, "outcome": "error", "error": message}
    return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")


def decode_request(line: bytes) -> dict[str, typing.Any]:
    try:
        request = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"not JSON: {exc}") from exc
    if not isinstance(request, dict) or "op" not in request:
        raise ProtocolError("a request must be an object with an 'op'")
    return typing.cast(dict[str, typing.Any], request)


def submit_from_wire(gateway: QCGateway,
                     request: typing.Mapping[str, typing.Any],
                     ) -> "asyncio.Future[GatewayReply]":
    """Dispatch one decoded request into the gateway."""
    op = request["op"]
    if op == "query":
        try:
            items = [str(item) for item in request["items"]]
            exec_ms = float(request.get("exec_ms", 5.0))
            qc = qc_from_wire(request.get("qc", {}))
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"bad query: {exc}") from exc
        return gateway.submit_query(items, qc, exec_ms)
    if op == "update":
        try:
            item = str(request["item"])
            value = float(request.get("value", 0.0))
            exec_ms = float(request.get("exec_ms", 2.0))
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"bad update: {exc}") from exc
        return gateway.submit_update(item, value, exec_ms)
    raise ProtocolError(f"unknown op {op!r}")


# ----------------------------------------------------------------------
# The TCP front
# ----------------------------------------------------------------------
async def _handle_connection(gateway: QCGateway,
                             reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
    """One client connection: requests in, replies out, in any order.

    Replies are written as each request *resolves* (a completed query
    may overtake a backlogged one), which is why every reply echoes the
    request ``id``.
    """
    replies: set[asyncio.Task[None]] = set()

    async def _answer(request_id: typing.Any,
                      future: "asyncio.Future[GatewayReply]") -> None:
        reply = await future
        writer.write(encode_reply(request_id, reply))

    try:
        while True:
            line = await reader.readline()
            if not line:
                break
            if not line.strip():
                continue
            request_id: typing.Any = None
            try:
                request = decode_request(line)
                request_id = request.get("id")
                future = submit_from_wire(gateway, request)
            except ProtocolError as exc:
                writer.write(encode_error(request_id, str(exc)))
                continue
            task = asyncio.get_running_loop().create_task(
                _answer(request_id, future))
            replies.add(task)
            task.add_done_callback(replies.discard)
        if replies:
            await asyncio.gather(*replies, return_exceptions=True)
        await writer.drain()
    finally:
        # Host-side teardown: cancellation order carries no state.
        for task in replies:  # repro: lint-ignore[no-set-iteration]
            task.cancel()
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - teardown
            pass


async def serve_tcp(gateway: QCGateway, host: str = "127.0.0.1",
                    port: int = 8642) -> "asyncio.base_events.Server":
    """Start the JSON-lines TCP front on a running gateway.

    With ``port=0`` the OS picks a free port (tests use this); the
    bound address is on ``server.sockets[0].getsockname()``.
    """

    async def handler(reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        await _handle_connection(gateway, reader, writer)

    return await asyncio.start_server(handler, host, port)
