"""Live serving: the simulator's scheduling core on real traffic.

``repro.serve`` binds the *same* :class:`~repro.scheduling.core.
SchedulerCore` policies the DES drives to a monotonic host clock and
serves them behind an asyncio gateway with an overload-robustness
layer: per-request QC deadlines with cooperative cancellation, bounded
ingress with explicit backpressure, admission-policy reuse
(shedding/brownout), honest QoD accounting for degraded answers, and a
budgeted client retry policy.  See ``docs/API.md`` §16.
"""

from .clock import ManualClock, MonotonicClock
from .gateway import OUTCOMES, GatewayConfig, GatewayReply, QCGateway
from .loadgen import (DEADLINE_FACTOR, Arrival, LoadgenConfig,
                      RequestRecord, build_schedule, drive, run_cell,
                      summarize)
from .protocol import (ProtocolError, qc_from_wire, qc_to_wire,
                       serve_tcp)
from .retry import RetryBudget, RetryPolicy

__all__ = [
    "DEADLINE_FACTOR",
    "OUTCOMES",
    "Arrival",
    "GatewayConfig",
    "GatewayReply",
    "LoadgenConfig",
    "ManualClock",
    "MonotonicClock",
    "ProtocolError",
    "QCGateway",
    "RequestRecord",
    "RetryBudget",
    "RetryPolicy",
    "build_schedule",
    "drive",
    "qc_from_wire",
    "qc_to_wire",
    "run_cell",
    "serve_tcp",
    "summarize",
]
