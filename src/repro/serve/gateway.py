"""The live QC gateway: the simulator's scheduling core on real traffic.

:class:`QCGateway` drives the *same* :class:`~repro.scheduling.core.
SchedulerCore` instances the DES drives — bound to a
:class:`~repro.serve.clock.MonotonicClock` instead of simulated time —
against an in-memory :class:`~repro.db.database.Database`, with the
same :class:`~repro.metrics.profit.ProfitLedger` accounting (timestamps
are gateway-clock milliseconds).  A single asyncio executor task owns
the CPU: it pops the scheduler's choice, "runs" it by sleeping its
service time in bounded slices (cooperative quanta, exactly the DES
executor's slicing discipline), and commits with the same
QC-evaluation semantics (`qc.evaluate(rt, staleness)`, brownout
forfeits QoD).  Because only that one task touches the database, the
2PL lock manager is unnecessary on the live path — serialisation is
structural, not lock-based.

The overload-robustness layer wraps that core:

* **bounded ingress + backpressure** — at most ``max_pending`` queued
  transactions; beyond that, submissions get an immediate
  ``backpressure`` reply with a ``retry_after_ms`` hint instead of an
  unbounded queue (the client's retry policy decides what to do);
* **admission reuse** — any :class:`~repro.db.admission.AdmissionPolicy`
  (notably :class:`~repro.db.admission.OverloadShedding` and
  :class:`~repro.db.admission.BrownoutAdmission`) plugs in unchanged:
  the gateway exposes the ``.scheduler`` / ``.ledger`` surface those
  policies read;
* **deadlines + cooperative cancellation** — each query gets an
  absolute deadline ``min(lifetime, arrival + deadline_factor·rtmax)``;
  expired work is cancelled at pop time and by a periodic sweep, so a
  query that can no longer earn QoS profit never wastes CPU;
* **graceful degradation** — brownout answers are served from current
  replica state at reduced service cost with the QoD half of the
  contract honestly forfeited at commit (``degraded`` → ``qod = 0``),
  identical to the DES commit rule.

Every submission resolves to exactly one terminal
:class:`GatewayReply` outcome — ``completed``, ``shed``,
``backpressure``, ``timed_out``, ``superseded``, or ``unfinished`` (at
forced shutdown) — a conservation law the property tests pin down.
"""

from __future__ import annotations

import asyncio
import dataclasses
import typing

from repro.db.admission import AdmissionPolicy
from repro.db.database import Database, StalenessAggregation
from repro.db.transactions import Query, Transaction, TxnStatus, Update
from repro.metrics.profit import ProfitLedger
from repro.qc.contracts import QualityContract
from repro.scheduling.core import SchedulerCore
from repro.sim.rng import StreamRegistry

from .clock import MonotonicClock

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.telemetry.hooks import ServerProbe, TelemetrySession

#: Terminal outcomes a submission can resolve to.
OUTCOMES = ("completed", "shed", "backpressure", "timed_out",
            "superseded", "unfinished")


@dataclasses.dataclass
class GatewayReply:
    """The terminal answer for one submitted request."""

    outcome: str
    txn_id: int
    response_time_ms: float | None = None
    qos_profit: float = 0.0
    qod_profit: float = 0.0
    staleness: float | None = None
    degraded: bool = False
    values: dict[str, float] | None = None
    #: Backpressure hint: how long the client should wait before retrying.
    retry_after_ms: float | None = None


@dataclasses.dataclass
class GatewayConfig:
    """Tuning knobs for the serving path (times in milliseconds)."""

    #: Bounded ingress, per class: a full query queue must not block
    #: updates (freshness) and a full update queue must not block
    #: queries (responsiveness), so each class gets its own bound.
    max_pending_queries: int = 256
    max_pending_updates: int = 1024
    #: Longest uninterrupted CPU slice (the cooperative quantum bound).
    slice_ms: float = 5.0
    #: Query deadline = arrival + deadline_factor × rtmax (capped by the
    #: QC lifetime); None disables rtmax-derived deadlines (lifetime
    #: still applies).
    deadline_factor: float | None = 4.0
    #: Cooperatively cancel expired queries (False: no-defenses baseline
    #: — expired work still burns CPU and commits worthless answers).
    drop_expired: bool = True
    #: Period of the expired-work sweep over the waiting queries.
    sweep_interval_ms: float = 25.0
    #: Service-time divisor (2.0 halves every sleep: a 2× faster CPU).
    cpu_speed: float = 1.0
    #: Backpressure hint handed to clients with a ``backpressure`` reply.
    retry_after_ms: float = 25.0
    #: Staleness aggregation over a query's read set (paper default max).
    staleness_aggregation: StalenessAggregation = "max"

    def __post_init__(self) -> None:
        if self.max_pending_queries <= 0:
            raise ValueError(f"max_pending_queries must be positive, "
                             f"got {self.max_pending_queries}")
        if self.max_pending_updates <= 0:
            raise ValueError(f"max_pending_updates must be positive, "
                             f"got {self.max_pending_updates}")
        if self.slice_ms <= 0:
            raise ValueError(
                f"slice_ms must be positive, got {self.slice_ms}")
        if self.deadline_factor is not None and self.deadline_factor <= 0:
            raise ValueError(
                f"deadline_factor must be positive, got "
                f"{self.deadline_factor}")
        if self.sweep_interval_ms <= 0:
            raise ValueError(
                f"sweep_interval_ms must be positive, got "
                f"{self.sweep_interval_ms}")
        if self.cpu_speed <= 0:
            raise ValueError(
                f"cpu_speed must be positive, got {self.cpu_speed}")


class QCGateway:
    """A live asyncio database server around one scheduling core."""

    def __init__(self, scheduler: SchedulerCore,
                 config: GatewayConfig | None = None,
                 admission: AdmissionPolicy | None = None,
                 master_seed: int = 0,
                 telemetry: "TelemetrySession | None" = None) -> None:
        self.config = config if config is not None else GatewayConfig()
        #: The decision core — the same instance type the DES drives.
        self.scheduler = scheduler
        self.admission = admission
        self.database = Database(
            staleness_aggregation=self.config.staleness_aggregation)
        self.ledger = ProfitLedger()
        self.streams = StreamRegistry(master_seed)
        self.clock = MonotonicClock()
        self.telemetry = telemetry
        self._probe: "ServerProbe | None" = None

        self._running = False
        self._tasks: list[asyncio.Task[None]] = []
        self._work = asyncio.Event()
        self._running_txn: Transaction | None = None
        self._preempted_by: Transaction | None = None
        #: txn_id -> (txn, future) for every in-flight submission.
        self._waiters: dict[
            int, tuple[Transaction, asyncio.Future[GatewayReply]]] = {}
        #: txn_id -> absolute deadline (gateway-clock ms).
        self._deadlines: dict[int, float] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the core to the live clock and start serving."""
        if self._running:
            return
        self._running = True
        if self.telemetry is not None:
            self._probe = self.telemetry.server_probe("gateway")
            self.scheduler.attach_telemetry(
                self.telemetry.scheduler_probe("gateway"))
        self.scheduler.bind_clock(self.clock, self.streams)
        self.clock.start()
        loop = asyncio.get_running_loop()
        self._tasks = [loop.create_task(self._executor(), name="gw-executor"),
                       loop.create_task(self._sweeper(), name="gw-sweeper")]

    async def stop(self) -> None:
        """Stop serving; unresolved submissions resolve ``unfinished``."""
        self._running = False
        self._work.set()
        await self.clock.stop()
        tasks, self._tasks = self._tasks, []
        for task in tasks:
            task.cancel()
        for task in tasks:
            try:
                await task
            except asyncio.CancelledError:
                pass
        for txn_id in list(self._waiters):
            txn, _ = self._waiters[txn_id]
            if txn.alive:
                txn.status = TxnStatus.UNFINISHED
            if txn.is_query:
                self.ledger.on_query_unfinished(
                    typing.cast(Query, txn))
            else:
                self.ledger.on_update_unfinished(
                    typing.cast(Update, txn))
            self._resolve(txn_id, GatewayReply("unfinished", txn_id))
        self._deadlines.clear()

    async def drain(self, timeout_ms: float = 10_000.0) -> bool:
        """Wait until every in-flight submission resolved (True) or the
        timeout elapsed (False)."""
        deadline = self.clock.now + timeout_ms
        while self._waiters:
            if self.clock.now >= deadline:
                return False
            await asyncio.sleep(0.005)
        return True

    @property
    def pending(self) -> int:
        """Queued transactions (the bounded-ingress occupancy)."""
        return (self.scheduler.pending_queries()
                + self.scheduler.pending_updates())

    # ------------------------------------------------------------------
    # Ingress
    # ------------------------------------------------------------------
    def submit_query(self, items: typing.Sequence[str],
                     qc: QualityContract,
                     exec_ms: float) -> "asyncio.Future[GatewayReply]":
        """Submit a query; the future resolves to its terminal reply."""
        now = self.clock.now
        query = Query(now, exec_ms / self.config.cpu_speed, items, qc)
        future: asyncio.Future[GatewayReply] = (
            asyncio.get_running_loop().create_future())
        if self._probe is not None:
            self._probe.arrive(now, query)
        if (self.scheduler.pending_queries()
                >= self.config.max_pending_queries):
            self.ledger.counters.increment("queries_backpressured")
            future.set_result(GatewayReply(
                "backpressure", query.txn_id,
                retry_after_ms=self.config.retry_after_ms))
            return future
        if self.admission is not None and not self.admission.admit(
                query, typing.cast(typing.Any, self)):
            query.status = TxnStatus.REJECTED
            query.finish_time = now
            self.ledger.on_query_rejected(
                query, now,
                shed=getattr(self.admission, "is_shedding", False))
            if self._probe is not None:
                self._probe.reject(now, query)
            future.set_result(GatewayReply(
                "shed", query.txn_id,
                retry_after_ms=self.config.retry_after_ms))
            return future
        self._waiters[query.txn_id] = (query, future)
        self._deadlines[query.txn_id] = self._deadline_for(query)
        query.status = TxnStatus.QUEUED
        self.ledger.on_query_submitted(query, now)
        self.scheduler.submit_query(query)
        if self._probe is not None:
            self._probe.queued(now, query)
        self._on_arrival(query)
        return future

    def submit_update(self, item: str, value: float,
                      exec_ms: float) -> "asyncio.Future[GatewayReply]":
        """Submit a blind update; resolves ``completed`` when applied or
        ``superseded`` when a newer update for the item invalidates it."""
        now = self.clock.now
        update = Update(now, exec_ms / self.config.cpu_speed, item, value)
        future: asyncio.Future[GatewayReply] = (
            asyncio.get_running_loop().create_future())
        if self._probe is not None:
            self._probe.arrive(now, update)
        if (self.scheduler.pending_updates()
                >= self.config.max_pending_updates):
            self.ledger.counters.increment("updates_backpressured")
            future.set_result(GatewayReply(
                "backpressure", update.txn_id,
                retry_after_ms=self.config.retry_after_ms))
            return future
        superseded = self.database.register_update(update, now)
        if superseded is not None:
            self.ledger.on_update_superseded(superseded, now)
            if self._probe is not None \
                    and superseded.status is TxnStatus.DROPPED_SUPERSEDED:
                self._probe.supersede(now, superseded, update)
            self._resolve(superseded.txn_id,
                          GatewayReply("superseded", superseded.txn_id))
        self._waiters[update.txn_id] = (update, future)
        update.status = TxnStatus.QUEUED
        self.scheduler.submit_update(update)
        if self._probe is not None:
            self._probe.queued(now, update)
        self._on_arrival(update)
        return future

    def _deadline_for(self, query: Query) -> float:
        deadline = query.lifetime_deadline
        factor = self.config.deadline_factor
        rt_max = query.qc.rt_max
        if factor is not None and 0 < rt_max < float("inf"):
            deadline = min(deadline, query.arrival_time + factor * rt_max)
        return deadline

    def _on_arrival(self, txn: Transaction) -> None:
        self._work.set()
        running = self._running_txn
        if running is not None and self.scheduler.preempts(running, txn):
            self._preempted_by = txn

    # ------------------------------------------------------------------
    # The executor task (the single CPU)
    # ------------------------------------------------------------------
    async def _executor(self) -> None:
        scheduler, clock = self.scheduler, self.clock
        while self._running:
            txn = scheduler.next_transaction(clock.now)
            if txn is None:
                self._work.clear()
                if not scheduler.has_work():
                    await self._work.wait()
                else:  # pragma: no cover - scheduler declined to pick
                    await asyncio.sleep(0)
                continue
            if not txn.alive:
                continue  # lazily-deleted entry (e.g. superseded update)
            now = clock.now
            if (self.config.drop_expired and txn.is_query
                    and self._expired(typing.cast(Query, txn), now)):
                self._drop_expired(typing.cast(Query, txn), now)
                continue
            await self._run(txn)

    def _expired(self, query: Query, now: float) -> bool:
        deadline = self._deadlines.get(query.txn_id,
                                       query.lifetime_deadline)
        return now >= deadline

    def _drop_expired(self, query: Query, now: float) -> None:
        query.status = TxnStatus.DROPPED_LIFETIME
        query.finish_time = now
        self.ledger.on_query_dropped(query, now)
        self.scheduler.notify_query_finished(query)
        if self._probe is not None:
            self._probe.expire(now, query)
        self._resolve(query.txn_id,
                      GatewayReply("timed_out", query.txn_id))

    async def _run(self, txn: Transaction) -> None:
        """Run ``txn`` in cooperative slices until commit, preemption, a
        zero quantum, or mid-run supersession.

        Each slice charges the *requested* duration against
        ``txn.remaining`` — if the event loop lags, the work still took
        its nominal service time and the lag shows up (honestly) in the
        response time, exactly like a busy real server.
        """
        scheduler, clock, config = self.scheduler, self.clock, self.config
        txn.status = TxnStatus.RUNNING
        if txn.start_time is None:
            txn.start_time = clock.now
        self._running_txn = txn
        self._preempted_by = None
        try:
            while True:
                now = clock.now
                quantum = scheduler.quantum(txn, now)
                if quantum <= 0.0:
                    txn.status = TxnStatus.QUEUED
                    txn.preemptions += 1
                    scheduler.requeue(txn)
                    return
                slice_ms = min(txn.remaining, quantum, config.slice_ms)
                slice_start = now
                await asyncio.sleep(slice_ms / 1000.0)
                if not txn.alive:
                    return  # superseded mid-run; already resolved
                if self._probe is not None:
                    self._probe.cpu_slice(slice_start, clock.now, txn)
                txn.remaining -= slice_ms
                if txn.remaining <= 1e-9:
                    self._commit(txn)
                    return
                preemptor = self._preempted_by
                if preemptor is not None:
                    self._preempted_by = None
                    txn.status = TxnStatus.QUEUED
                    txn.preemptions += 1
                    scheduler.requeue(txn)
                    if self._probe is not None:
                        self._probe.preempt(clock.now, txn, preemptor)
                    return
        finally:
            self._running_txn = None

    def _commit(self, txn: Transaction) -> None:
        now = self.clock.now
        txn.finish_time = now
        txn.status = TxnStatus.COMMITTED
        if txn.is_query:
            query = typing.cast(Query, txn)
            query.staleness = self.database.query_staleness(query)
            qos, qod = query.qc.evaluate(query.response_time(),
                                         query.staleness)
            if query.degraded:
                # Brownout answers skip freshness work: the QoD half of
                # the contract is forfeited, whatever the staleness
                # metric says (the QoS half is what brownout saves).
                qod = 0.0
            query.qos_profit = qos
            query.qod_profit = qod
            self.ledger.on_query_committed(query, now)
            self.scheduler.notify_query_finished(query)
            self._resolve(query.txn_id, GatewayReply(
                "completed", query.txn_id,
                response_time_ms=query.response_time(),
                qos_profit=qos, qod_profit=qod,
                staleness=query.staleness, degraded=query.degraded,
                values={key: self.database.read(key)
                        for key in query.items}))
        else:
            update = typing.cast(Update, txn)
            self.database.apply_update(update, now)
            self.ledger.on_update_applied(update, now)
            self._resolve(update.txn_id, GatewayReply(
                "completed", update.txn_id,
                response_time_ms=update.response_time()))
        if self._probe is not None:
            self._probe.commit(now, txn)

    # ------------------------------------------------------------------
    # The deadline sweeper task
    # ------------------------------------------------------------------
    async def _sweeper(self) -> None:
        """Periodically cancel waiting queries that are past deadline.

        The pop-time check alone is enough for correctness, but under a
        long backlog an expired query would sit queued (and hold its
        client's future open) until the scheduler finally reached it;
        the sweep resolves it as soon as its deadline passes.  The
        status flip to ``DROPPED_LIFETIME`` is what evicts it from the
        lazy-deletion heap.
        """
        interval_s = self.config.sweep_interval_ms / 1000.0
        while self._running:
            await asyncio.sleep(interval_s)
            if not self.config.drop_expired:
                continue
            now = self.clock.now
            expired = [typing.cast(Query, txn)
                       for txn, _ in self._waiters.values()
                       if txn.is_query
                       and txn.status is TxnStatus.QUEUED
                       and now >= self._deadlines.get(
                           txn.txn_id, float("inf"))]
            for query in expired:
                self._drop_expired(query, now)

    # ------------------------------------------------------------------
    def _resolve(self, txn_id: int, reply: GatewayReply) -> None:
        entry = self._waiters.pop(txn_id, None)
        self._deadlines.pop(txn_id, None)
        if entry is None:
            return
        _, future = entry
        if not future.done():
            future.set_result(reply)
