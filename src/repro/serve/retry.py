"""Client-side retry policy: jittered exponential backoff + a budget.

Naive retries *amplify* overload: every shed or backpressured request
comes straight back, so an overloaded server sees its arrival rate
multiply exactly when it can least afford it (the classic retry storm).
Two standard defenses, composed here:

* **jittered exponential backoff** — retry ``k`` waits
  ``base · factor^k`` ms scaled by a uniform jitter draw from a *named
  deterministic stream*, so synchronized clients cannot re-converge
  into bursts and test runs stay reproducible;
* **retry budget** — a token bucket that earns a fraction of a token
  per *first-attempt* send and spends one token per retry.  With
  ``fraction = b`` and zero initial balance, retries can never exceed
  ``b ×`` first sends, so total client sends are bounded by
  ``(1 + b) × offered load`` no matter how the server behaves.  This
  bound is asserted in the tests and in the acceptance criteria.
"""

from __future__ import annotations

from repro.sim.rng import RandomStream


class RetryBudget:
    """Token bucket bounding retries to a fraction of first sends."""

    def __init__(self, fraction: float = 0.1,
                 max_tokens: float = 100.0) -> None:
        if fraction < 0:
            raise ValueError(f"fraction must be >= 0, got {fraction}")
        if max_tokens <= 0:
            raise ValueError(f"max_tokens must be positive, got {max_tokens}")
        self.fraction = fraction
        self.max_tokens = max_tokens
        self._tokens = 0.0
        #: Accounting, for tests and reports.
        self.first_sends = 0
        self.retries_granted = 0
        self.retries_denied = 0

    def on_first_send(self) -> None:
        """A fresh request went out: earn ``fraction`` of a token."""
        self.first_sends += 1
        self._tokens = min(self._tokens + self.fraction, self.max_tokens)

    def try_spend(self) -> bool:
        """Spend one token for a retry; False when the budget is dry."""
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            self.retries_granted += 1
            return True
        self.retries_denied += 1
        return False

    @property
    def total_sends(self) -> int:
        return self.first_sends + self.retries_granted


class RetryPolicy:
    """Jittered exponential backoff drawn from a deterministic stream."""

    def __init__(self, rng: RandomStream,
                 base_ms: float = 5.0,
                 factor: float = 2.0,
                 max_backoff_ms: float = 250.0,
                 max_retries: int = 3,
                 budget: RetryBudget | None = None) -> None:
        if base_ms <= 0:
            raise ValueError(f"base_ms must be positive, got {base_ms}")
        if factor < 1.0:
            raise ValueError(f"factor must be >= 1, got {factor}")
        if max_backoff_ms < base_ms:
            raise ValueError("max_backoff_ms must be >= base_ms")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self._rng = rng
        self.base_ms = base_ms
        self.factor = factor
        self.max_backoff_ms = max_backoff_ms
        self.max_retries = max_retries
        self.budget = budget

    def backoff_ms(self, attempt: int) -> float:
        """Full-jitter backoff for retry number ``attempt`` (0-based)."""
        ceiling = min(self.base_ms * self.factor ** attempt,
                      self.max_backoff_ms)
        return ceiling * self._rng.random()

    def should_retry(self, attempt: int) -> bool:
        """May retry number ``attempt`` (0-based) go out?

        Checks the attempt cap first, then spends from the budget (when
        one is attached) so denied retries are visible in its counters.
        """
        if attempt >= self.max_retries:
            return False
        if self.budget is not None:
            return self.budget.try_spend()
        return True
