"""Open-loop load harness for the live gateway (SNIPPETS §3 idiom).

The generator is **open-loop**: the arrival schedule is precomputed
from deterministic named streams (Poisson arrivals, Zipf-skewed stock
keys, QC contracts from the paper's balanced factory) and dispatched
*on schedule regardless of how the server is doing* — a slow server
faces a growing backlog, exactly like production traffic.  Closed-loop
clients (wait for the reply, then send) would silently throttle
themselves and hide the overload the robustness layer exists to
survive.

Three tiers, mirroring the benchmark layout of the mini-exchange
harness the ROADMAP points at:

* **correctness** — a short run whose value is its assertions: every
  offered request resolves to exactly one terminal outcome and the
  ledger's counters reconcile with the client's view;
* **micro-scaling** — a small policy × load-multiplier grid recording
  p50/p99/p999 response time and realized QoS/QoD per cell;
* **realistic (overload)** — the full robustness stack (deadlines +
  backpressure + brownout + retry budget) against a no-defenses
  baseline *on the same arrival schedule*, comparing goodput
  (completed-within-deadline rate).

Both arms and every cell are scored with the same report-side
deadline — ``min(lifetime, deadline_factor × rtmax)`` — so disabling
server-side cancellation never changes the measuring stick, only the
behaviour.
"""

from __future__ import annotations

import asyncio
import dataclasses
import math
import typing

from repro.db.admission import (AdmissionPolicy, BrownoutAdmission,
                                OverloadShedding)
from repro.qc.contracts import QualityContract
from repro.qc.generator import QCFactory
from repro.scheduling import make_scheduler
from repro.sim.rng import StreamRegistry

from .gateway import GatewayConfig, GatewayReply, QCGateway
from .retry import RetryBudget, RetryPolicy

#: Report-side deadline factor (also the default server-side factor).
DEADLINE_FACTOR = 4.0


@dataclasses.dataclass
class LoadgenConfig:
    """The offered-load model (times in ms, rates per second)."""

    duration_ms: float = 2_500.0
    #: Scales both arrival rates; the knob the scaling tier sweeps.
    rate_multiplier: float = 1.0
    #: Base rates at multiplier 1.0 (≈0.6 CPU utilisation with the
    #: service times below — multiplier ~1.7 is the saturation knee).
    query_rate_per_s: float = 100.0
    update_rate_per_s: float = 300.0
    n_keys: int = 512
    #: Zipf skew (Table 2: queries 0.9, updates 0.75).
    query_zipf_theta: float = 0.9
    update_zipf_theta: float = 0.75
    query_exec_ms: tuple[float, float] = (2.0, 4.0)
    update_exec_ms: tuple[float, float] = (0.5, 1.5)
    master_seed: int = 1
    #: Client retry budget fraction (None: retries disabled).
    retry_fraction: float | None = 0.1
    max_retries: int = 3

    def __post_init__(self) -> None:
        if self.duration_ms <= 0:
            raise ValueError(
                f"duration_ms must be positive, got {self.duration_ms}")
        if self.rate_multiplier <= 0:
            raise ValueError(f"rate_multiplier must be positive, "
                             f"got {self.rate_multiplier}")
        if self.n_keys < 1:
            raise ValueError(f"n_keys must be >= 1, got {self.n_keys}")


@dataclasses.dataclass
class Arrival:
    """One scheduled request (an update when ``items`` is length 1 and
    ``qc`` is None)."""

    at_ms: float
    kind: str  # "query" | "update"
    items: tuple[str, ...]
    exec_ms: float
    qc: QualityContract | None = None
    value: float = 0.0


@dataclasses.dataclass
class RequestRecord:
    """The client's view of one offered request's fate."""

    kind: str
    offered_at_ms: float
    outcome: str
    sends: int
    response_time_ms: float | None = None
    qos_profit: float = 0.0
    qod_profit: float = 0.0
    degraded: bool = False
    deadline_met: bool = False


def _key(rank: int) -> str:
    return f"S{rank:04d}"


def build_schedule(config: LoadgenConfig) -> list[Arrival]:
    """Sample the deterministic open-loop arrival schedule."""
    streams = StreamRegistry(config.master_seed)
    qc_factory = QCFactory.balanced()
    qc_rng = streams.stream("live.qc")
    arrivals: list[Arrival] = []

    rate = config.query_rate_per_s * config.rate_multiplier
    if rate > 0:
        rng = streams.stream("live.arrivals.query")
        keys = streams.stream("live.keys.query")
        execs = streams.stream("live.exec.query")
        mean_gap = 1000.0 / rate
        at = rng.exponential(mean_gap)
        low, high = config.query_exec_ms
        while at < config.duration_ms:
            rank = keys.zipf_rank(config.n_keys, config.query_zipf_theta)
            arrivals.append(Arrival(
                at, "query", (_key(rank),),
                execs.uniform(low, high),
                qc=qc_factory.sample(qc_rng, now=at)))
            at += rng.exponential(mean_gap)

    rate = config.update_rate_per_s * config.rate_multiplier
    if rate > 0:
        rng = streams.stream("live.arrivals.update")
        keys = streams.stream("live.keys.update")
        execs = streams.stream("live.exec.update")
        values = streams.stream("live.values.update")
        mean_gap = 1000.0 / rate
        at = rng.exponential(mean_gap)
        low, high = config.update_exec_ms
        while at < config.duration_ms:
            rank = keys.zipf_rank(config.n_keys, config.update_zipf_theta)
            arrivals.append(Arrival(
                at, "update", (_key(rank),),
                execs.uniform(low, high),
                value=values.uniform(1.0, 100.0)))
            at += rng.exponential(mean_gap)

    arrivals.sort(key=lambda a: a.at_ms)
    return arrivals


def _report_deadline_ms(arrival: Arrival) -> float:
    """The report-side deadline both arms are scored against."""
    assert arrival.qc is not None
    deadline = arrival.qc.lifetime
    rt_max = arrival.qc.rt_max
    if 0 < rt_max < float("inf"):
        deadline = min(deadline, DEADLINE_FACTOR * rt_max)
    return deadline


async def _one_request(gateway: QCGateway, arrival: Arrival,
                       retry: RetryPolicy | None,
                       records: list[RequestRecord]) -> None:
    """Submit one offered request, retrying per the client policy."""
    sends = 0
    attempt = 0
    while True:
        sends += 1
        if retry is not None and retry.budget is not None and sends == 1:
            retry.budget.on_first_send()
        if arrival.kind == "query":
            assert arrival.qc is not None
            future = gateway.submit_query(arrival.items, arrival.qc,
                                          arrival.exec_ms)
        else:
            future = gateway.submit_update(arrival.items[0], arrival.value,
                                           arrival.exec_ms)
        reply: GatewayReply = await future
        if reply.outcome in ("backpressure", "shed") and retry is not None \
                and retry.should_retry(attempt):
            backoff = reply.retry_after_ms or 0.0
            backoff += retry.backoff_ms(attempt)
            attempt += 1
            await asyncio.sleep(backoff / 1000.0)
            continue
        met = False
        if arrival.kind == "query" and reply.outcome == "completed" \
                and reply.response_time_ms is not None:
            met = reply.response_time_ms <= _report_deadline_ms(arrival)
        records.append(RequestRecord(
            arrival.kind, arrival.at_ms, reply.outcome, sends,
            response_time_ms=reply.response_time_ms,
            qos_profit=reply.qos_profit, qod_profit=reply.qod_profit,
            degraded=reply.degraded, deadline_met=met))
        return


async def drive(gateway: QCGateway, schedule: typing.Sequence[Arrival],
                config: LoadgenConfig) -> list[RequestRecord]:
    """Dispatch the schedule open-loop against a *running* gateway."""
    retry: RetryPolicy | None = None
    if config.retry_fraction is not None:
        budget = RetryBudget(fraction=config.retry_fraction)
        retry = RetryPolicy(
            gateway.streams.stream("live.client.retry"),
            max_retries=config.max_retries, budget=budget)
    records: list[RequestRecord] = []
    tasks: list[asyncio.Task[None]] = []
    clock = gateway.clock
    origin = clock.now
    index = 0
    loop = asyncio.get_running_loop()
    while index < len(schedule):
        now = clock.now - origin
        # Dispatch everything due (late dispatch = an arrival burst; the
        # open-loop property is that we never *wait* for the server).
        while index < len(schedule) and schedule[index].at_ms <= now:
            tasks.append(loop.create_task(_one_request(
                gateway, schedule[index], retry, records)))
            index += 1
        if index < len(schedule):
            gap_ms = schedule[index].at_ms - (clock.now - origin)
            if gap_ms > 0:
                await asyncio.sleep(gap_ms / 1000.0)
    if tasks:
        await asyncio.gather(*tasks)
    return records


# ----------------------------------------------------------------------
# Cells and reports
# ----------------------------------------------------------------------
def _percentile(ordered: typing.Sequence[float], q: float) -> float | None:
    if not ordered:
        return None
    index = max(0, min(len(ordered) - 1,
                       math.ceil(q * len(ordered)) - 1))
    return ordered[index]


def summarize(records: typing.Sequence[RequestRecord],
              gateway: QCGateway) -> dict[str, typing.Any]:
    """Aggregate one cell's records into the JSON-ready report row."""
    queries = [r for r in records if r.kind == "query"]
    completed = [r for r in queries if r.outcome == "completed"]
    rts = sorted(r.response_time_ms for r in completed
                 if r.response_time_ms is not None)
    ledger = gateway.ledger
    outcome_counts = {outcome: 0 for outcome in
                      ("completed", "shed", "backpressure", "timed_out",
                       "superseded", "unfinished")}
    for record in queries:
        outcome_counts[record.outcome] += 1
    return {
        "offered_queries": len(queries),
        "offered_updates": sum(1 for r in records if r.kind == "update"),
        "outcomes": outcome_counts,
        "degraded": sum(1 for r in queries if r.degraded),
        "goodput": (sum(1 for r in queries if r.deadline_met)
                    / len(queries) if queries else 0.0),
        "response_time_ms": {
            "p50": _percentile(rts, 0.50),
            "p99": _percentile(rts, 0.99),
            "p999": _percentile(rts, 0.999),
        },
        "qos_percent": ledger.qos_percent,
        "qod_percent": ledger.qod_percent,
        "total_percent": ledger.total_percent,
        "mean_qos_profit": (sum(r.qos_profit for r in completed)
                            / len(completed) if completed else 0.0),
        "mean_qod_profit": (sum(r.qod_profit for r in completed)
                            / len(completed) if completed else 0.0),
        "client_sends": sum(r.sends for r in records),
        "updates_applied": ledger.counters.value("updates_applied"),
        "updates_superseded": ledger.counters.value("updates_superseded"),
        "queries_browned_out": ledger.counters.value("queries_browned_out"),
    }


#: Live watermarks: with deadline cancellation on, the query backlog
#: self-limits near deadline/service ≈ 100, so the DES defaults (150/75)
#: would never trip on the live path.
LIVE_HIGH_WATERMARK = 48
LIVE_LOW_WATERMARK = 24


def _admission_for(name: str) -> AdmissionPolicy | None:
    if name == "none":
        return None
    if name == "shed":
        return OverloadShedding(high_watermark=LIVE_HIGH_WATERMARK,
                                low_watermark=LIVE_LOW_WATERMARK)
    if name == "brownout":
        return BrownoutAdmission(high_watermark=LIVE_HIGH_WATERMARK,
                                 low_watermark=LIVE_LOW_WATERMARK)
    raise ValueError(f"unknown admission mode {name!r}; "
                     f"choose none, shed, or brownout")


def defended_gateway_config() -> GatewayConfig:
    """The full robustness stack's server-side half.

    The query bound sits above the brownout watermark but below what a
    deep overload would otherwise queue, so extreme load reaches
    explicit backpressure instead of an ever-longer queue; the update
    bound is loose because supersession already caps live updates at
    one per key.
    """
    return GatewayConfig(max_pending_queries=128,
                         max_pending_updates=1024,
                         deadline_factor=DEADLINE_FACTOR,
                         drop_expired=True)


def baseline_gateway_config() -> GatewayConfig:
    """No defenses: unbounded-ish ingress, no deadline cancellation."""
    return GatewayConfig(max_pending_queries=1_000_000_000,
                         max_pending_updates=1_000_000_000,
                         deadline_factor=None, drop_expired=False)


async def _run_cell_async(policy: str, config: LoadgenConfig,
                          gateway_config: GatewayConfig,
                          admission: AdmissionPolicy | None,
                          ) -> dict[str, typing.Any]:
    schedule = build_schedule(config)
    gateway = QCGateway(make_scheduler(policy), gateway_config,
                        admission=admission,
                        master_seed=config.master_seed)
    await gateway.start()
    try:
        records = await drive(gateway, schedule, config)
        await gateway.drain(timeout_ms=20_000.0)
    finally:
        await gateway.stop()
    report = summarize(records, gateway)
    report["policy"] = policy
    report["rate_multiplier"] = config.rate_multiplier
    report["duration_ms"] = config.duration_ms
    return report


def run_cell(policy: str, *, defended: bool = True,
             admission: str = "brownout",
             config: LoadgenConfig | None = None) -> dict[str, typing.Any]:
    """Run one policy × load cell end to end (its own event loop)."""
    config = config if config is not None else LoadgenConfig()
    gateway_config = (defended_gateway_config() if defended
                      else baseline_gateway_config())
    policy_admission = _admission_for(admission) if defended else None
    if not defended:
        config = dataclasses.replace(config, retry_fraction=None)
    return asyncio.run(_run_cell_async(policy, config, gateway_config,
                                       policy_admission))
