"""Main-memory web-database substrate: items, register table, 2PL-HP locks,
and the preemptive single-CPU server."""

from .admission import (AdmissionPolicy, AdmitAll, OverloadShedding,
                        ProfitAwareAdmission)
from .database import Database
from .items import DataItem
from .locks import (AcquireOutcome, AcquireResult, LockManager, LockMode)
from .server import DatabaseServer, ServerConfig
from .transactions import (LIVE_STATUSES, Query, Transaction, TxnStatus,
                           Update)
from .wal import Checkpoint, DurabilityConfig, WalRecord, WriteAheadLog

__all__ = [
    "Checkpoint",
    "DurabilityConfig",
    "WalRecord",
    "WriteAheadLog",
    "AcquireOutcome",
    "AcquireResult",
    "AdmissionPolicy",
    "AdmitAll",
    "OverloadShedding",
    "ProfitAwareAdmission",
    "DataItem",
    "Database",
    "DatabaseServer",
    "LIVE_STATUSES",
    "LockManager",
    "LockMode",
    "Query",
    "ServerConfig",
    "Transaction",
    "TxnStatus",
    "Update",
]
