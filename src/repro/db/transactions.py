"""Transaction model: read-only queries and write-only ("blind") updates.

The paper's system model (§2.1) has exactly two transaction classes:

* **queries** — read-only, over one or more data items, each carrying a
  :class:`~repro.qc.contracts.QualityContract`;
* **updates** — write-only and *blind*: each refreshes a single data item
  with a value pushed by an external source, and a newer update for the same
  item invalidates any pending older one.

Both classes share the lifecycle bookkeeping needed by the preemptive server
(remaining service time, restarts, suspension) and by the metrics layer
(arrival / commit timestamps, measured response time and staleness).
"""

from __future__ import annotations

import enum
import itertools
import typing

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.qc.contracts import QualityContract


class TxnStatus(enum.Enum):
    """Lifecycle states of a transaction inside the server."""

    #: Created but not yet submitted to a server.
    CREATED = "created"
    #: In a scheduler queue, waiting for the CPU.
    QUEUED = "queued"
    #: Currently occupying the CPU.
    RUNNING = "running"
    #: Preempted mid-execution; keeps its locks and remaining service time.
    SUSPENDED = "suspended"
    #: Waiting for a lock held by a higher-priority transaction.
    BLOCKED = "blocked"
    #: Finished successfully.
    COMMITTED = "committed"
    #: Query only: exceeded its maximum lifetime and was discarded.
    DROPPED_LIFETIME = "dropped_lifetime"
    #: Query only: declined by an admission policy before entering.
    REJECTED = "rejected"
    #: Update only: superseded by a newer update on the same item (the
    #: write-write rule of 2PL-HP / the update register table).
    DROPPED_SUPERSEDED = "dropped_superseded"
    #: Died with a crashed replica: an update whose copy was in flight on
    #: the crashed server, or a query whose failover retries ran out.
    LOST_CRASH = "lost_crash"
    #: Left in the system when the simulation horizon ended.
    UNFINISHED = "unfinished"


#: Statuses from which a transaction can still reach the CPU.
LIVE_STATUSES = frozenset({
    TxnStatus.CREATED, TxnStatus.QUEUED, TxnStatus.RUNNING,
    TxnStatus.SUSPENDED, TxnStatus.BLOCKED,
})

_txn_ids = itertools.count(1)


def _next_txn_id() -> int:
    return next(_txn_ids)


class Transaction:
    """Common state shared by queries and updates."""

    __slots__ = (
        "txn_id", "arrival_time", "exec_time", "remaining", "_status",
        "restarts", "start_time", "finish_time", "preemptions", "_queue",
        "on_terminal",
    )

    def __init__(self, arrival_time: float, exec_time: float) -> None:
        if exec_time <= 0:
            raise ValueError(f"exec_time must be positive, got {exec_time}")
        self.txn_id = _next_txn_id()
        self.arrival_time = arrival_time
        self.exec_time = exec_time
        #: Service time still owed; decremented as the CPU runs the txn.
        self.remaining = exec_time
        self._status = TxnStatus.CREATED
        #: The TransactionQueue currently holding this transaction (back
        #: reference maintained by the queue itself), or None.  Lets the
        #: queue learn about deaths *immediately* — e.g. an update
        #: superseded while waiting — so its O(1) live count stays exact.
        self._queue = None
        #: Number of 2PL-HP restarts suffered (work thrown away).
        self.restarts = 0
        #: First time the transaction got the CPU (None until then).
        self.start_time: float | None = None
        #: Commit or drop time (None while live).
        self.finish_time: float | None = None
        #: Number of times the transaction was preempted off the CPU.
        self.preemptions = 0
        #: Called exactly once, with the transaction, on the live →
        #: terminal status transition (commit, drop, rejection, crash
        #: loss, end-of-run finalisation — *any* terminal state).  Unlike
        #: ``DatabaseServer.query_outcome_hook`` this covers every exit
        #: path, which is what a coordinator fanning a query out across
        #: shards needs to resolve its merge.
        self.on_terminal: typing.Callable[["Transaction"], None] | None = \
            None

    # ------------------------------------------------------------------
    @property
    def status(self) -> TxnStatus:
        return self._status

    @status.setter
    def status(self, new: TxnStatus) -> None:
        old = self._status
        self._status = new
        if new not in LIVE_STATUSES and old in LIVE_STATUSES:
            if self._queue is not None:
                # Died while queued (e.g. superseded by a newer update):
                # tell the owning queue so its live accounting stays
                # exact.
                self._queue._note_death(self)
            if self.on_terminal is not None:
                self.on_terminal(self)

    @property
    def is_query(self) -> bool:
        return isinstance(self, Query)

    @property
    def is_update(self) -> bool:
        return isinstance(self, Update)

    @property
    def alive(self) -> bool:
        """True while the transaction can still complete."""
        return self.status in LIVE_STATUSES

    @property
    def done(self) -> bool:
        return not self.alive

    def response_time(self) -> float:
        """Commit latency; only valid for finished transactions."""
        if self.finish_time is None:
            raise ValueError(f"{self!r} has not finished")
        return self.finish_time - self.arrival_time

    def reset_for_restart(self) -> None:
        """Throw away all progress (2PL-HP restart)."""
        self.remaining = self.exec_time
        self.restarts += 1

    def touched_items(self) -> tuple[str, ...]:
        """Keys this transaction accesses (read or write)."""
        raise NotImplementedError


class Query(Transaction):
    """A read-only user query with an attached Quality Contract.

    ``items`` is the query's read set (stock symbols in the paper's
    workload); ``qc`` prices its QoS (response time) and QoD (staleness).
    """

    __slots__ = ("items", "qc", "lifetime_deadline", "staleness",
                 "qos_profit", "qod_profit", "degraded", "shadow_priced")

    def __init__(self, arrival_time: float, exec_time: float,
                 items: typing.Sequence[str],
                 qc: "QualityContract",
                 lifetime_deadline: float | None = None) -> None:
        super().__init__(arrival_time, exec_time)
        if not items:
            raise ValueError("a query must read at least one item")
        self.items = tuple(items)
        self.qc = qc
        #: Absolute time after which the query is dropped (QoS-independent
        #: composition still requires completion "by a maximum lifetime
        #: deadline", §2.2).
        self.lifetime_deadline = (
            lifetime_deadline if lifetime_deadline is not None
            else arrival_time + qc.lifetime)
        #: Staleness observed at commit (aggregated #uu over the read set).
        self.staleness: float | None = None
        #: Profit actually earned, filled in at commit / drop time.
        self.qos_profit = 0.0
        self.qod_profit = 0.0
        #: Brownout flag: the answer will be served from possibly-stale
        #: cached state at reduced cost; the QoD half of the contract is
        #: forfeited at commit.  See :meth:`apply_brownout`.
        self.degraded = False
        #: Shadow pricing: the contract shapes scheduling priority only;
        #: the server credits zero profit at commit because the contract
        #: is priced (and credited) by a coordinating layer — e.g. the
        #: shard planner's sub-queries, whose parent carries the real
        #: contract.  Prevents double-counting one contract's dollars.
        self.shadow_priced = False

    def apply_brownout(self, factor: float) -> None:
        """Degrade to a brownout answer: cheaper to serve, QoD forfeited.

        Under overload a brownout admission policy admits the query but
        scales its service demand by ``factor`` (skipping the freshness
        work a full answer would do).  The contract stays in every
        denominator — brownout trades the QoD half for keeping the QoS
        half alive, it never hides the contract.  Idempotent; must be
        applied before the query first reaches a CPU.
        """
        if not 0.0 < factor <= 1.0:
            raise ValueError(
                f"brownout factor must be in (0, 1], got {factor}")
        if self.degraded:
            return
        self.degraded = True
        self.exec_time = self.exec_time * factor
        self.remaining = self.exec_time

    def __repr__(self) -> str:
        return (f"<Query #{self.txn_id} items={self.items!r} "
                f"{self.status.value} rem={self.remaining:.2f}>")

    def touched_items(self) -> tuple[str, ...]:
        return self.items

    @property
    def total_profit(self) -> float:
        return self.qos_profit + self.qod_profit

    def past_lifetime(self, now: float) -> bool:
        return now > self.lifetime_deadline


class Update(Transaction):
    """A blind, write-only update to a single data item.

    ``seq`` is the per-item arrival sequence number assigned by the database
    when the update is registered; it is what the staleness metric ``#uu``
    counts.  ``value`` is the new master value (used by the value-distance
    staleness extension).
    """

    __slots__ = ("item", "value", "seq")

    def __init__(self, arrival_time: float, exec_time: float, item: str,
                 value: float = 0.0) -> None:
        super().__init__(arrival_time, exec_time)
        self.item = item
        self.value = value
        #: Per-item sequence number; assigned by Database.register_update.
        self.seq: int = -1

    def __repr__(self) -> str:
        return (f"<Update #{self.txn_id} item={self.item!r} seq={self.seq} "
                f"{self.status.value}>")

    def touched_items(self) -> tuple[str, ...]:
        return (self.item,)
