"""The simulated main-memory web-database server.

A single CPU executes queries and updates in the order the attached
scheduler dictates (§2 "CPU scheduling is the primary means of improving
performance").  The server implements:

* arrival handling — queries are priced into the profit ledger and queued;
  updates pass through the register table (invalidating pending older
  updates, even a *running* one — the 2PL-HP write-write rule);
* a preemptive executor — the scheduler bounds each running slice with a
  quantum (QUTS's atom time) and may preempt on arrivals (UH/QH); preempted
  work keeps its locks and remaining service time;
* 2PL-HP — conservative lock acquisition over a transaction's item set;
  conflicting lower-priority lock holders are restarted (losing progress),
  higher-priority holders block the requester;
* lifetime enforcement — queries past their QC lifetime are dropped when
  they would next touch the CPU;
* class-switch overhead — an optional fixed CPU cost charged whenever the
  CPU switches between serving queries and serving updates, which is what
  makes very small atom times costly (Figure 10b).
"""

from __future__ import annotations

import dataclasses
import typing

from repro.metrics.profit import ProfitLedger
from repro.scheduling.base import Scheduler
from repro.sim import Environment, Interrupt
from repro.sim.process import ProcessGenerator
from repro.sim.invariants import InvariantMonitor
from repro.sim.monitor import TimeSeries
from repro.sim.rng import StreamRegistry
from repro.telemetry.events import CAT_KERNEL
from repro.telemetry.hooks import TelemetryKnob, TelemetrySession
from repro.telemetry.tracer import TelemetryConfig

from .admission import AdmissionPolicy
from .database import Database
from .locks import LockManager, LockMode
from .transactions import Query, Transaction, TxnStatus, Update
from .wal import Checkpoint, WalRecord, WriteAheadLog

#: Float slack for "service time exhausted".
_EPS = 1e-9


@dataclasses.dataclass
class ServerConfig:
    """Tunable server behaviour (defaults follow the paper / DESIGN.md)."""

    #: CPU cost (ms) of switching the CPU between transaction classes.
    #: The paper discusses switching overhead qualitatively (§4.2); 0.1 ms
    #: is small against 1-9 ms service times but makes τ→1 ms measurably
    #: wasteful, reproducing the left edge of Figure 10b.
    class_switch_overhead: float = 0.1
    #: Drop queries whose lifetime deadline passed before completion.
    drop_late_queries: bool = True
    #: What a *cross-class preemption* (UH/QH's "preemptive dual priority
    #: queue") does to a running update: "restart" aborts it 2PL-HP-style
    #: (blind writes are idempotent and cheap to redo, and aborting avoids
    #: holding write latches across arbitrary higher-priority work), while
    #: "suspend" keeps its progress.  Preempted *queries* are always
    #: suspended (long reads are expensive to redo; their read locks are
    #: what 2PL-HP conflict resolution arbitrates).  QUTS's atom-time slot
    #: switches are cooperative (quantum expiry), never preemption, so
    #: they always keep progress — a core advantage of the two-level
    #: design.
    update_preemption: str = "restart"
    #: Which staleness metric feeds the QoD profit function (§2.1): the
    #: number of unapplied updates ("uu", the paper's choice), the time
    #: differential in ms ("td"), or the value distance ("vd").  The QC's
    #: ``uumax`` threshold is interpreted in the chosen metric's unit.
    qod_metric: str = "uu"
    #: Record queue-length samples every this many ms (0 disables).
    queue_sample_every: float = 0.0
    #: Structured tracing/metrics (:mod:`repro.telemetry`).  ``None`` (the
    #: default) disables instrumentation entirely — the server then pays
    #: one pointer comparison per hook and nothing in the kernel loop.
    telemetry: TelemetryConfig | None = None

    def __post_init__(self) -> None:
        if self.class_switch_overhead < 0:
            raise ValueError(
                f"class_switch_overhead must be >= 0, "
                f"got {self.class_switch_overhead}")
        if self.queue_sample_every < 0:
            raise ValueError(
                f"queue_sample_every must be >= 0, "
                f"got {self.queue_sample_every}")
        if self.update_preemption not in ("restart", "suspend"):
            raise ValueError(
                f"update_preemption must be 'restart' or 'suspend', "
                f"got {self.update_preemption!r}")
        if self.qod_metric not in ("uu", "td", "vd"):
            raise ValueError(
                f"qod_metric must be 'uu', 'td', or 'vd', "
                f"got {self.qod_metric!r}")


class _Preempt:
    """Interrupt cause: ``arrival`` wants the CPU from ``victim``."""

    __slots__ = ("arrival",)

    def __init__(self, arrival: Transaction) -> None:
        self.arrival = arrival


class _Superseded:
    """Interrupt cause: the running update was invalidated by ``newer``."""

    __slots__ = ("victim",)

    def __init__(self, victim: Update) -> None:
        self.victim = victim


class _Crashed:
    """Interrupt cause: the server fail-stopped under the running txn."""

    __slots__ = ()


class DatabaseServer:
    """Single-CPU transaction executor driven by a pluggable scheduler."""

    def __init__(self, env: Environment, database: Database,
                 scheduler: Scheduler, ledger: ProfitLedger,
                 streams: StreamRegistry,
                 config: ServerConfig | None = None,
                 admission: "AdmissionPolicy | None" = None,
                 wal: WriteAheadLog | None = None,
                 monitor: InvariantMonitor | None = None,
                 telemetry: TelemetryKnob = None,
                 telemetry_scope: str = "server") -> None:
        self.env = env
        self.database = database
        self.scheduler = scheduler
        self.ledger = ledger
        self.config = config or ServerConfig()
        #: Optional query admission policy (default: admit everything,
        #: the paper's behaviour).  See :mod:`repro.db.admission`.
        self.admission = admission
        #: Optional write-ahead log; when attached, every applied update
        #: is journalled and :meth:`take_checkpoint` fences the log with
        #: a crash-consistent database snapshot.
        self.wal = wal
        #: Optional runtime invariant monitor (an observer: it never
        #: perturbs the run).  See :mod:`repro.sim.invariants`.
        self.monitor = monitor

        scheduler.bind(env, streams)
        self.locks = LockManager(scheduler.has_lock_priority)

        #: Telemetry session (explicit ``telemetry=`` wins; otherwise the
        #: config's knob).  Shared sessions (cluster) pass the session in.
        session = TelemetrySession.from_knob(telemetry)
        if session is None:
            session = TelemetrySession.from_knob(self.config.telemetry)
        self.telemetry = session
        self._probe = (session.server_probe(telemetry_scope)
                       if session is not None else None)
        scheduler.attach_telemetry(
            session.scheduler_probe(telemetry_scope)
            if session is not None else None)
        if (session is not None and env.telemetry is None
                and session.tracer.enabled_for(CAT_KERNEL)):
            env.telemetry = session.kernel_probe()

        #: Gray-failure service-rate multiplier (1.0 = nominal).  A CPU
        #: slice of s ms of *work* occupies s × slowdown ms of wall
        #: clock; set by the portal's ``slow_replica`` fault hook.
        self._slowdown = 1.0
        #: Optional callback ``(query, ok)`` the portal installs to feed
        #: its failure detector: True on commit, False when the query
        #: dies on this server (lifetime drop).
        self.query_outcome_hook: (
            typing.Callable[[Query, bool], None] | None) = None

        self._running: Transaction | None = None
        self._last_class: str | None = None
        self._idle_wakeup = None  # type: ignore[assignment]
        #: Fail-stop state: a crashed server executes nothing and refuses
        #: arrivals until :meth:`recover` is called.
        self._crashed = False
        self._recover_event = None  # type: ignore[assignment]
        #: Transactions blocked on locks, with the holders they wait for.
        self._blocked: dict[Transaction, frozenset[str]] = {}

        self.queue_lengths = TimeSeries("query_queue_length")
        self._proc = env.process(self._executor(), name="db-server")
        if self.config.queue_sample_every > 0:
            env.process(self._queue_sampler(), name="queue-sampler")

    def __repr__(self) -> str:
        return (f"<DatabaseServer t={self.env.now:.0f} "
                f"running={self._running!r}>")

    def _observe(self, kind: str, txn: Transaction,
                 **data: typing.Any) -> None:
        """Feed one lifecycle event to the invariant monitor (if any)."""
        if self.monitor is not None:
            self.monitor.record(
                kind, txn_id=txn.txn_id,
                pending_queries=self.scheduler.pending_queries(),
                pending_updates=self.scheduler.pending_updates(), **data)

    # ------------------------------------------------------------------
    # Arrivals
    # ------------------------------------------------------------------
    def submit_query(self, query: Query) -> None:
        """A user query arrives (read set + quality contract attached).

        An attached admission policy may reject it outright; a rejected
        query never enters the ledger's denominators (the contract was
        declined, not broken).
        """
        self._check_up()
        self._observe("query_submitted", query)
        if self._probe is not None:
            self._probe.arrive(self.env.now, query)
        if self.admission is not None and not self.admission.admit(
                query, self):
            query.status = TxnStatus.REJECTED
            query.finish_time = self.env.now
            self.ledger.on_query_rejected(
                query, self.env.now,
                shed=getattr(self.admission, "is_shedding", False))
            self._observe("query_rejected", query)
            if self._probe is not None:
                self._probe.reject(self.env.now, query)
            return
        query.status = TxnStatus.QUEUED
        self.ledger.on_query_submitted(query, self.env.now)
        self.scheduler.submit_query(query)
        if self._probe is not None:
            self._probe.queued(self.env.now, query)
        self._on_arrival(query)

    def adopt_query(self, query: Query) -> None:
        """Enqueue a query whose contract is already priced elsewhere.

        The failover path of :class:`~repro.cluster.portal.ReplicatedPortal`
        uses this to move a query stranded on a crashed replica here: the
        contract's maxima stay in the *original* replica's ledger (the
        contract was submitted exactly once), while whatever profit the
        query still earns is credited to this server's ledger at commit.
        Cluster-level sums therefore count each contract once on each side.
        Admission control is bypassed — the query was already admitted.
        """
        self._check_up()
        query.status = TxnStatus.QUEUED
        self.ledger.counters.increment("queries_adopted")
        self.scheduler.submit_query(query)
        if self._probe is not None:
            self._probe.queued(self.env.now, query)
        self._on_arrival(query)

    def submit_update(self, update: Update) -> None:
        """A blind update arrives from the external source."""
        self._check_up()
        self._observe("update_submitted", update)
        if self._probe is not None:
            self._probe.arrive(self.env.now, update)
        superseded = self.database.register_update(update, self.env.now)
        if superseded is not None:
            self.ledger.on_update_superseded(superseded, self.env.now)
            self.locks.release_all(superseded)
            self._unblock_waiters()
            if superseded.status is TxnStatus.DROPPED_SUPERSEDED:
                # Only a live victim *transitioned* here; a register
                # entry stranded by an earlier crash already reached its
                # terminal (lost) state.
                self._observe("update_superseded", superseded)
                if self._probe is not None:
                    self._probe.supersede(self.env.now, superseded, update)
            if superseded is self._running:
                self._proc.interrupt(_Superseded(superseded))
        update.status = TxnStatus.QUEUED
        self.scheduler.submit_update(update)
        if self._probe is not None:
            self._probe.queued(self.env.now, update)
        self._on_arrival(update)

    def _on_arrival(self, txn: Transaction) -> None:
        if self._idle_wakeup is not None and not self._idle_wakeup.triggered:
            self._idle_wakeup.succeed()
            return
        running = self._running
        if running is not None and self.scheduler.preempts(running, txn):
            self._proc.interrupt(_Preempt(txn))

    # ------------------------------------------------------------------
    # The executor process
    # ------------------------------------------------------------------
    def _executor(self) -> ProcessGenerator:
        env = self.env
        while True:
            if self._crashed:
                self._recover_event = env.event()
                try:
                    yield self._recover_event
                except Interrupt:
                    pass
                self._recover_event = None
                continue
            txn = self.scheduler.next_transaction(env.now)
            if txn is None:
                self._idle_wakeup = env.event()
                try:
                    yield self._idle_wakeup
                except Interrupt:
                    pass
                self._idle_wakeup = None
                continue

            if (txn.is_query and self.config.drop_late_queries
                    and typing.cast(Query, txn).past_lifetime(env.now)):
                self._drop_query(typing.cast(Query, txn))
                continue

            # Charge the class-switch overhead before the new class runs.
            txn_class = "query" if txn.is_query else "update"
            if (self._last_class is not None
                    and txn_class != self._last_class
                    and self.config.class_switch_overhead > 0):
                interrupted = yield from self._charge_overhead(txn)
                if interrupted:
                    continue
            self._last_class = txn_class

            # 2PL-HP conservative acquisition over the full item set.
            mode = LockMode.READ if txn.is_query else LockMode.WRITE
            result = self.locks.acquire_all(txn, mode)
            if not result.granted:
                txn.status = TxnStatus.BLOCKED
                self._blocked[txn] = self.locks.locks_of(txn) or frozenset(
                    txn.touched_items())
                if self._probe is not None:
                    self._probe.block(env.now, txn)
                continue
            for loser in result.restarted:
                self._handle_restart(loser)

            yield from self._run(txn)

    def _charge_overhead(self, txn: Transaction) -> ProcessGenerator:
        """Burn the switch overhead; returns True if interrupted (in which
        case ``txn`` was requeued and the caller should re-decide).

        ``txn`` is published as running for the duration so that arrivals
        that should preempt it (e.g. an update arriving under UH while a
        query is being switched in) can interrupt the switch.
        """
        self._running = txn
        started = self.env.now
        rate = self._slowdown
        overhead = self.config.class_switch_overhead
        try:
            yield self.env.timeout(
                overhead if rate == 1.0 else overhead * rate)
        except Interrupt:
            if not self._crashed and txn.alive:
                # On a crash the transaction was already stranded by
                # crash(), and a superseded update already reached its
                # terminal state — requeueing either would resurrect it.
                txn.status = TxnStatus.QUEUED
                self.scheduler.requeue(txn)
            return True
        finally:
            self._running = None
            if self._probe is not None:
                self._probe.overhead(started, self.env.now)
        return False

    def _run(self, txn: Transaction) -> ProcessGenerator:
        env = self.env
        txn.status = TxnStatus.RUNNING
        if self._probe is not None:
            self._probe.running(env.now, txn,
                                resumed=txn.start_time is not None)
        if txn.start_time is None:
            txn.start_time = env.now
        self._running = txn

        while True:
            if txn.remaining <= _EPS:
                # Covers both normal completion and the corner case of a
                # transaction preempted at the exact instant its service
                # finished (it re-enters here with no work left).
                self._commit(txn)
                break
            quantum = self.scheduler.quantum(txn, env.now)
            slice_ = min(txn.remaining, quantum)
            started = env.now
            # Gray failure: a slowed replica stretches the wall-clock
            # cost of each work slice.  The rate is captured per slice,
            # so mid-slice slowdown changes take effect at the next
            # slice boundary and the accounting stays exact; at the
            # nominal rate the arithmetic below is bit-identical to the
            # un-multiplied original.
            rate = self._slowdown
            try:
                yield env.timeout(slice_ if rate == 1.0 else slice_ * rate)
            except Interrupt as interrupt:
                elapsed = env.now - started
                txn.remaining -= (elapsed if rate == 1.0
                                  else elapsed / rate)
                if self._probe is not None:
                    self._probe.cpu_slice(started, env.now, txn)
                action = self._handle_interrupt(txn, interrupt.cause)
                if action == "continue":
                    continue
                break
            txn.remaining -= slice_
            if self._probe is not None:
                self._probe.cpu_slice(started, env.now, txn)
            if txn.remaining <= _EPS:
                self._commit(txn)
                break
            # Quantum expired: hand the decision back to the scheduler.
            self._suspend(txn)
            break

        self._running = None

    def _handle_interrupt(self, txn: Transaction, cause: object) -> str:
        """React to an interrupt while ``txn`` runs; returns "continue" to
        keep running or "stop" to leave the run loop."""
        if self._crashed:
            # A pre-crash interrupt (e.g. a preemption raised at the same
            # instant) delivered after the fail-stop: the transaction is
            # stranded already, so never requeue it.
            return "stop"
        if isinstance(cause, _Crashed):
            # Fail-stop: crash() already stranded the transaction and
            # released its locks; just vacate the CPU.
            return "stop"
        if isinstance(cause, _Superseded):
            if cause.victim is txn:
                # Our work is moot; locks were already released on register.
                return "stop"
            return "continue"
        if not txn.alive:
            # Died (e.g. superseded) between the interrupt being raised
            # and delivered: never suspend/requeue a terminal transaction.
            return "stop"
        if isinstance(cause, _Preempt):
            arrival = cause.arrival
            # Re-validate: the arrival may have died (superseded) or the
            # situation may have changed since the interrupt was raised.
            if arrival.alive and self.scheduler.preempts(txn, arrival):
                txn.preemptions += 1
                if self._probe is not None:
                    self._probe.preempt(self.env.now, txn, arrival)
                if (txn.is_update
                        and self.config.update_preemption == "restart"):
                    self._restart_preempted_update(txn)
                else:
                    self._suspend(txn)
                return "stop"
            return "continue"
        # Unknown cause (defensive): keep running.
        return "continue"

    def _suspend(self, txn: Transaction) -> None:
        """Take ``txn`` off the CPU; it keeps locks and progress."""
        txn.status = TxnStatus.SUSPENDED
        if self._probe is not None:
            self._probe.suspend(self.env.now, txn)
        self.scheduler.requeue(txn)

    def _restart_preempted_update(self, update: Transaction) -> None:
        """A cross-class preemption aborts the running update (2PL-HP):
        its write lock is released and the blind write is redone later."""
        update.reset_for_restart()
        self.locks.release_all(update)
        self.ledger.on_restart(victim_is_query=False)
        update.status = TxnStatus.QUEUED
        if self._probe is not None:
            self._probe.restart(self.env.now, update)
        self.scheduler.requeue(update)
        self._unblock_waiters()

    # ------------------------------------------------------------------
    # Completion paths
    # ------------------------------------------------------------------
    def _commit(self, txn: Transaction) -> None:
        now = self.env.now
        txn.finish_time = now
        if txn.is_query:
            # Quality metadata is filled in *before* the status flips so
            # that ``on_terminal`` observers (fired from the status
            # setter) see the completed record.
            query = typing.cast(Query, txn)
            query.staleness = self._measure_staleness(query, now)
            qos, qod = query.qc.evaluate(query.response_time(),
                                         query.staleness)
            if query.degraded:
                # Brownout answers skip freshness work: the QoD half of
                # the contract is forfeited, whatever the staleness
                # metric says (the QoS half is what brownout saves).
                qod = 0.0
            if query.shadow_priced:
                # The contract only shaped scheduling priority here; the
                # coordinating layer (e.g. the shard planner's parent
                # query) prices and credits the real contract.
                qos = qod = 0.0
            query.qos_profit = qos
            query.qod_profit = qod
            txn.status = TxnStatus.COMMITTED
            self.ledger.on_query_committed(query, now)
            self.scheduler.notify_query_finished(query)
            self._observe("query_committed", query,
                          profit=query.total_profit)
            if self.query_outcome_hook is not None:
                self.query_outcome_hook(query, True)
        else:
            txn.status = TxnStatus.COMMITTED
            update = typing.cast(Update, txn)
            self.database.apply_update(update, now)
            if self.wal is not None:
                self.wal.append_applied(update, now)
            self.ledger.on_update_applied(update, now)
            self._observe("update_applied", update)
        if self._probe is not None:
            self._probe.commit(now, txn)
        self.locks.release_all(txn)
        self._unblock_waiters()

    def _measure_staleness(self, query: Query, now: float) -> float:
        """The query's QoD metric per ``ServerConfig.qod_metric``."""
        metric = self.config.qod_metric
        if metric == "uu":
            return self.database.query_staleness(query)
        if metric == "td":
            return self.database.query_time_differential(query, now)
        return self.database.query_value_distance(query)

    def _drop_query(self, query: Query) -> None:
        query.finish_time = self.env.now
        query.status = TxnStatus.DROPPED_LIFETIME
        self.locks.release_all(query)
        self.ledger.on_query_dropped(query, self.env.now)
        self.scheduler.notify_query_finished(query)
        self._observe("query_dropped", query)
        if self._probe is not None:
            self._probe.expire(self.env.now, query)
        if self.query_outcome_hook is not None:
            self.query_outcome_hook(query, False)
        self._unblock_waiters()

    def _handle_restart(self, loser: Transaction) -> None:
        """A 2PL-HP victim: progress lost, back to its queue."""
        loser.reset_for_restart()
        self.ledger.on_restart(loser.is_query)
        self._blocked.pop(loser, None)
        loser.status = TxnStatus.QUEUED
        if self._probe is not None:
            self._probe.restart(self.env.now, loser)
        self.scheduler.requeue(loser)

    def _unblock_waiters(self) -> None:
        """Lock state changed: give every blocked transaction another try."""
        if not self._blocked:
            return
        waiters = list(self._blocked)
        self._blocked.clear()
        for txn in waiters:
            if txn.alive:
                txn.status = TxnStatus.QUEUED
                self.scheduler.requeue(txn)
        if self._idle_wakeup is not None and not self._idle_wakeup.triggered:
            self._idle_wakeup.succeed()

    # ------------------------------------------------------------------
    # Gray failure: service-rate degradation
    # ------------------------------------------------------------------
    @property
    def slowdown(self) -> float:
        return self._slowdown

    def set_slowdown(self, factor: float) -> None:
        """Stretch (or restore) the wall-clock cost of CPU work.

        Takes effect at the next slice boundary; slices already in
        flight finish at the rate they started with, which keeps the
        work accounting exact and deterministic.
        """
        if factor <= 0:
            raise ValueError(f"slowdown factor must be positive, "
                             f"got {factor}")
        self._slowdown = factor

    # ------------------------------------------------------------------
    # Fail-stop crash / recovery (driven by the portal / fault injector)
    # ------------------------------------------------------------------
    @property
    def crashed(self) -> bool:
        return self._crashed

    def _check_up(self) -> None:
        if self._crashed:
            raise RuntimeError(
                "server is crashed; a dead replica receives no work "
                "(the portal must gate routing and broadcasts)")

    def crash(self) -> list[Transaction]:
        """Fail-stop: drop every piece of in-flight work.

        Returns the live transactions that were stranded — queued, blocked,
        and running alike.  The caller (the portal's failover path) decides
        their fate: queries can be retried on surviving replicas, updates
        are lost and must be re-synced on recovery.  All locks are released
        and the executor parks until :meth:`recover`; progress of the
        running transaction is lost (its partial slice dies with the CPU).
        """
        if self._crashed:
            return []
        self._crashed = True
        stranded: list[Transaction] = []
        running = self._running
        if running is not None and running.alive:
            stranded.append(running)
        while True:
            txn = self.scheduler.next_transaction(self.env.now)
            if txn is None:
                break
            if txn.alive:
                stranded.append(txn)
        stranded.extend(txn for txn in self._blocked if txn.alive)
        self._blocked.clear()
        for txn in stranded:
            self.locks.release_all(txn)
        self._last_class = None
        if running is not None:
            self._proc.interrupt(_Crashed())
        return stranded

    def recover(self) -> None:
        """Bring a crashed server back up (empty queues, stale replica).

        The database keeps its pre-crash contents — a rejoining replica is
        *stale*, not blank — and the portal re-syncs it by replaying the
        broadcasts it missed while down.
        """
        if not self._crashed:
            return
        self._crashed = False
        self._last_class = None
        if (self._recover_event is not None
                and not self._recover_event.triggered):
            self._recover_event.succeed()

    # ------------------------------------------------------------------
    # Durability (active only with an attached WAL)
    # ------------------------------------------------------------------
    def take_checkpoint(self) -> Checkpoint:
        """Fence the WAL with a crash-consistent snapshot: the full item
        state plus a digest of the (volatile) scheduler queues."""
        if self.wal is None:
            raise RuntimeError("no write-ahead log attached; construct "
                               "the server with wal=WriteAheadLog(...)")
        digest = {
            "pending_queries": self.scheduler.pending_queries(),
            "pending_updates": self.scheduler.pending_updates(),
            "blocked": len(self._blocked),
        }
        return self.wal.take_checkpoint(self.database, digest,
                                        self.env.now)

    def lose_volatile_state(self) -> list[WalRecord]:
        """Crash the durability layer: wipe the main-memory store and
        drop the WAL's unflushed tail.  Returns the lost records (the
        incident's RPO) for re-sync from the durable source."""
        if self.wal is None:
            return []
        lost = self.wal.crash()
        self.database.clear()
        return lost

    def restore_durable_state(self) -> tuple[
            Checkpoint | None, int, list[WalRecord]]:
        """Rebuild the store from the last checkpoint plus the *verified*
        durable WAL tail; returns ``(checkpoint, records replayed,
        records refused)``.

        Silent corruption is survived, not fatal: the CRC scan truncates
        the replay at the first record that fails verification — that
        record and everything after it (the LSN chain past a torn record
        is untrustworthy) come back in the third slot for the caller to
        re-sync from a healthy peer or the durable source.  Strict
        raise-on-corruption reads remain available via
        :meth:`~repro.db.wal.WriteAheadLog.recover`.
        """
        if self.wal is None:
            return None, 0, []
        checkpoint, tail, refused = self.wal.recover_verified()
        if checkpoint is not None:
            self.database.restore(checkpoint.items)
        for record in tail:
            self.database.replay_applied(record)
        return checkpoint, len(tail), refused

    # ------------------------------------------------------------------
    # End-of-run accounting
    # ------------------------------------------------------------------
    def finalize(self) -> None:
        """Account every transaction still in the system as unfinished."""
        leftovers: list[Transaction] = []
        if self._running is not None:
            leftovers.append(self._running)
        leftovers.extend(self._blocked)
        self._blocked.clear()
        while True:
            txn = self.scheduler.next_transaction(self.env.now)
            if txn is None:
                break
            leftovers.append(txn)
        for txn in leftovers:
            if not txn.alive:
                continue
            txn.status = TxnStatus.UNFINISHED
            if self._probe is not None:
                self._probe.unfinished(self.env.now, txn)
            if txn.is_query:
                self.ledger.on_query_unfinished(typing.cast(Query, txn))
                self._observe("query_unfinished", txn)
            else:
                self.ledger.on_update_unfinished(typing.cast(Update, txn))
                self._observe("update_unfinished", txn)

    def _queue_sampler(self) -> ProcessGenerator:
        every = self.config.queue_sample_every
        while True:
            yield self.env.timeout(every)
            self.queue_lengths.record(self.env.now,
                                      self.scheduler.pending_queries())

    @property
    def lock_stats(self) -> dict[str, int]:
        return {
            "conflicts": self.locks.conflicts,
            "restarts_caused": self.locks.restarts_caused,
            "blocks_caused": self.locks.blocks_caused,
        }
