"""Durability: a write-ahead update log with crash-consistent checkpoints.

The paper's web-database is main-memory and its updates are *blind*:
losing one is silent QoD corruption, because no client ever re-reads the
value it pushed.  This module gives each replica a durable trail:

* every **applied** update is appended to a :class:`WriteAheadLog` as a
  checksummed :class:`WalRecord`;
* records become *durable* in groups (``flush_every`` appends, modelling
  group commit) and always at checkpoints;
* a :class:`Checkpoint` is a crash-consistent snapshot: the full
  :class:`~repro.db.database.Database` item state plus a digest of the
  scheduler queues at the checkpoint instant, fenced by the last durable
  LSN it covers.

On a fail-stop crash the unflushed tail of the log is lost — those
records are the incident's **RPO**, measured in the paper's own QoD unit
(#uu, unapplied/lost updates).  Recovery restores the last checkpoint,
replays the durable WAL tail (verifying each record's checksum — a
corrupted record raises
:class:`~repro.sim.invariants.InvariantViolation` instead of silently
diverging), and re-syncs the remainder from the durable external source.

Everything here is in-simulation state: the "disk" is an object that
survives :meth:`WriteAheadLog.crash` while the database object does not.
"""

from __future__ import annotations

import dataclasses
import typing
import zlib

from repro.sim.invariants import InvariantViolation

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .database import Database
    from .transactions import Update


def _checksum(lsn: int, applied_at: float, item: str, seq: int,
              value: float, exec_ms: float) -> int:
    payload = f"{lsn}|{applied_at!r}|{item}|{seq}|{value!r}|{exec_ms!r}"
    return zlib.crc32(payload.encode("utf-8"))


@dataclasses.dataclass(frozen=True)
class WalRecord:
    """One applied update, as written to the log."""

    lsn: int
    applied_at: float
    item: str
    seq: int
    value: float
    exec_ms: float
    checksum: int

    @classmethod
    def applied(cls, lsn: int, applied_at: float, item: str, seq: int,
                value: float, exec_ms: float) -> "WalRecord":
        return cls(lsn, applied_at, item, seq, value, exec_ms,
                   _checksum(lsn, applied_at, item, seq, value, exec_ms))

    def verify(self) -> bool:
        """True iff the stored checksum matches the record's fields."""
        return self.checksum == _checksum(
            self.lsn, self.applied_at, self.item, self.seq, self.value,
            self.exec_ms)


@dataclasses.dataclass(frozen=True)
class Checkpoint:
    """A crash-consistent snapshot fencing the log at ``last_lsn``."""

    taken_at: float
    last_lsn: int
    #: Full per-item state (the Database snapshot format).
    items: dict[str, tuple]
    #: Scheduler-queue digest at the instant of the checkpoint (queued
    #: work is volatile; the digest documents what recovery must re-sync).
    queue_digest: dict[str, int]

    def __repr__(self) -> str:
        return (f"<Checkpoint t={self.taken_at:.0f} lsn={self.last_lsn} "
                f"items={len(self.items)} queues={self.queue_digest}>")


@dataclasses.dataclass(frozen=True)
class DurabilityConfig:
    """Tunables of the durability layer (per replica)."""

    #: Period of the crash-consistent checkpoints (ms).
    checkpoint_interval_ms: float = 60_000.0
    #: Group-commit factor: appends become durable every this many
    #: records (and always at checkpoints).  1 = synchronous WAL,
    #: RPO 0; larger values trade durability for write amortisation.
    flush_every: int = 8

    def __post_init__(self) -> None:
        if self.checkpoint_interval_ms <= 0:
            raise ValueError(
                f"checkpoint_interval_ms must be positive, "
                f"got {self.checkpoint_interval_ms}")
        if self.flush_every < 1:
            raise ValueError(
                f"flush_every must be >= 1, got {self.flush_every}")


class WriteAheadLog:
    """The durable trail of one replica: log records + checkpoints."""

    def __init__(self, flush_every: int = 1) -> None:
        if flush_every < 1:
            raise ValueError(f"flush_every must be >= 1, got {flush_every}")
        self.flush_every = flush_every
        #: Durable records, in LSN order.
        self._durable: list[WalRecord] = []
        #: Appended but not yet flushed (lost on crash).
        self._buffer: list[WalRecord] = []
        self._checkpoints: list[Checkpoint] = []
        self._next_lsn = 1
        self.flushes = 0
        self.records_lost = 0

    def __repr__(self) -> str:
        return (f"<WriteAheadLog durable={len(self._durable)} "
                f"buffered={len(self._buffer)} "
                f"checkpoints={len(self._checkpoints)}>")

    # ------------------------------------------------------------------
    # The write path
    # ------------------------------------------------------------------
    def append_applied(self, update: "Update", now: float) -> WalRecord:
        """Log one applied update; flushes on the group-commit boundary."""
        record = WalRecord.applied(self._next_lsn, now, update.item,
                                   update.seq, update.value,
                                   update.exec_time)
        self._next_lsn += 1
        self._buffer.append(record)
        if len(self._buffer) >= self.flush_every:
            self.flush()
        return record

    def flush(self) -> None:
        """Make every buffered record durable."""
        if self._buffer:
            self._durable.extend(self._buffer)
            self._buffer.clear()
            self.flushes += 1

    def take_checkpoint(self, database: "Database",
                        queue_digest: dict[str, int],
                        now: float) -> Checkpoint:
        """Flush, snapshot the database, and fence the log."""
        self.flush()
        checkpoint = Checkpoint(taken_at=now, last_lsn=self.durable_lsn,
                                items=database.snapshot(),
                                queue_digest=dict(queue_digest))
        self._checkpoints.append(checkpoint)
        return checkpoint

    # ------------------------------------------------------------------
    # Crash / recovery
    # ------------------------------------------------------------------
    def crash(self) -> list[WalRecord]:
        """Fail-stop: the unflushed tail is lost; returns it (the
        incident's RPO in #uu) so the caller can re-sync those updates
        from the durable external source."""
        lost, self._buffer = self._buffer, []
        self.records_lost += len(lost)
        return lost

    def recover(self) -> tuple[Checkpoint | None, list[WalRecord]]:
        """The durable state to rebuild from: last checkpoint + log tail.

        Every replayed record is checksum-verified; corruption raises
        :class:`InvariantViolation` (with the damaged record) rather
        than silently installing wrong values.
        """
        checkpoint = self._checkpoints[-1] if self._checkpoints else None
        fence = checkpoint.last_lsn if checkpoint is not None else 0
        tail = [r for r in self._durable if r.lsn > fence]
        for record in tail:
            if not record.verify():
                raise InvariantViolation(
                    f"corrupted WAL record at lsn={record.lsn} "
                    f"(item={record.item!r}, seq={record.seq}): checksum "
                    f"mismatch — refusing to replay a damaged log")
        return checkpoint, tail

    def recover_verified(self) -> tuple[
            Checkpoint | None, list[WalRecord], list[WalRecord]]:
        """Corruption-tolerant variant of :meth:`recover`.

        Returns ``(checkpoint, replayable tail, refused suffix)``: the
        CRC scan truncates at the *first* record that fails
        verification, and that record plus everything after it is
        refused wholesale — once the chain is torn, later records (even
        individually well-formed ones) cannot be trusted to describe a
        consistent history.  The caller re-syncs the refused items from
        a healthy peer or the durable external source.
        """
        checkpoint = self._checkpoints[-1] if self._checkpoints else None
        fence = checkpoint.last_lsn if checkpoint is not None else 0
        tail = [r for r in self._durable if r.lsn > fence]
        for position, record in enumerate(tail):
            if not record.verify():
                return checkpoint, tail[:position], tail[position:]
        return checkpoint, tail, []

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def durable_lsn(self) -> int:
        """LSN of the newest durable record (0 when the log is empty)."""
        return self._durable[-1].lsn if self._durable else 0

    @property
    def last_lsn(self) -> int:
        """LSN of the newest appended record, durable or not."""
        return self._next_lsn - 1

    @property
    def durable_records(self) -> tuple[WalRecord, ...]:
        return tuple(self._durable)

    @property
    def checkpoints(self) -> tuple[Checkpoint, ...]:
        return tuple(self._checkpoints)

    @property
    def unflushed(self) -> int:
        return len(self._buffer)

    # Test hook: deliberately damage the durable tail to prove recovery
    # detects it (checksums survive, fields do not match them).
    def corrupt_tail_record(self, delta: float = 1.0) -> None:
        """Flip the newest durable record's value without re-checksumming."""
        if not self._durable:
            raise ValueError("no durable records to corrupt")
        record = self._durable[-1]
        self._durable[-1] = dataclasses.replace(record,
                                                value=record.value + delta)

    def corrupt_tail(self, count: int = 1, delta: float = 1.0) -> int:
        """Silently damage the newest ``count`` durable records (the
        ``corrupt_wal`` fault kind).  Values are perturbed without
        re-checksumming, so :meth:`recover`'s CRC scan catches them.
        Returns how many records were actually damaged (0 when the
        durable log is still empty — corruption of nothing is a no-op,
        not an error, because fault schedules are sampled blindly)."""
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        damaged = min(count, len(self._durable))
        for offset in range(1, damaged + 1):
            record = self._durable[-offset]
            self._durable[-offset] = dataclasses.replace(
                record, value=record.value + delta)
        return damaged
