"""Admission control for queries (extension; cf. the paper's UNIT [14]).

The paper's related work points at the authors' user-centric transaction
management (UNIT), which *admission-controls* incoming transactions; the
QUTS paper itself admits everything.  This module provides that missing
knob as an opt-in server extension: an admission policy sees each arriving
query plus a cheap view of the server's state and may reject it outright
(the user gets an immediate "try later" instead of a silently worthless
answer, and the server sheds the load).

Three policies are provided:

* :class:`AdmitAll` — the paper's behaviour (default);
* :class:`ProfitAwareAdmission` — rejects a query when the backlog of
  queued query work already exceeds the point where the newcomer could
  earn any QoS profit *and* its potential QoD profit is not worth the
  added load (a cheap, conservative estimate: queued service time ahead
  of it vs its ``rtmax``);
* :class:`OverloadShedding` — graceful degradation under overload: a
  backlog watermark flips the server into a *shedding* mode that rejects
  the lowest-value contracts first, and hysteresis (a lower watermark to
  leave the mode) keeps it from flapping at the boundary;
* :class:`BrownoutAdmission` — the non-rejecting sibling: under the same
  watermarks it admits everything but serves QoD-degraded answers at a
  fraction of the nominal service cost, keeping every contract in the
  ledger denominators.

Rejected queries are profit-neutral: their maxima are *not* added to the
ledger denominators (the contract was declined, not broken), and they are
counted under ``queries_rejected``.
"""

from __future__ import annotations

import typing

from .transactions import Query

if typing.TYPE_CHECKING:  # pragma: no cover
    from .server import DatabaseServer


class AdmissionPolicy:
    """Decides whether an arriving query enters the system."""

    name = "base"

    def admit(self, query: Query, server: "DatabaseServer") -> bool:
        raise NotImplementedError


class AdmitAll(AdmissionPolicy):
    """The paper's behaviour: every query is admitted."""

    name = "admit-all"

    def admit(self, query: Query, server: "DatabaseServer") -> bool:
        return True


class ProfitAwareAdmission(AdmissionPolicy):
    """Shed queries that can no longer earn their QoS profit.

    A query is rejected when the *estimated* queueing delay ahead of it
    already exceeds its ``rtmax`` by ``slack_factor`` and its QoD upside
    is less than ``qod_weight`` of its total value.  The delay estimate
    is deliberately cheap: pending queries × their mean service time —
    an upper bound under query-favouring policies, an optimistic one
    under UH (admission control cannot fix UH's starvation; that is a
    scheduling problem).
    """

    name = "profit-aware"

    def __init__(self, mean_query_service_ms: float = 7.0,
                 slack_factor: float = 2.0,
                 qod_weight: float = 0.5) -> None:
        if mean_query_service_ms <= 0:
            raise ValueError("mean_query_service_ms must be positive")
        if slack_factor < 1.0:
            raise ValueError("slack_factor must be >= 1")
        if not 0.0 <= qod_weight <= 1.0:
            raise ValueError("qod_weight must be in [0, 1]")
        self.mean_query_service_ms = mean_query_service_ms
        self.slack_factor = slack_factor
        self.qod_weight = qod_weight

    def admit(self, query: Query, server: "DatabaseServer") -> bool:
        rt_max = query.qc.rt_max
        if rt_max <= 0 or rt_max == float("inf"):
            return True  # no deadline to protect
        backlog_ms = (server.scheduler.pending_queries()
                      * self.mean_query_service_ms)
        if backlog_ms <= self.slack_factor * rt_max:
            return True
        # QoS profit is unreachable; admit only if the QoD upside alone
        # justifies the work.
        total = query.qc.total_max
        if total <= 0:
            return False
        return query.qc.qod_max / total >= self.qod_weight


class OverloadShedding(AdmissionPolicy):
    """Watermark-triggered load shedding with hysteresis.

    The policy watches the query backlog.  When it climbs past
    ``high_watermark`` pending queries the server enters *shedding* mode;
    it leaves again only once the backlog has drained to
    ``low_watermark`` (two watermarks = hysteresis, so a backlog
    oscillating around one threshold cannot flap the mode on and off).

    While shedding, the lowest-value contracts are rejected first: a
    query is shed when its ``total_max`` falls below the
    ``shed_quantile``-quantile of the most recent ``window`` contract
    values seen (a cheap running sketch of the value distribution — the
    arrival stream cannot be sorted, so "lowest first" is approximated
    against what the recent past looked like).  High-value contracts are
    served even at the height of the overload; the shed mass is the
    cheap tail, which is exactly the graceful half of "degrade
    gracefully".

    Rejections made while shedding are counted under ``queries_shed`` on
    top of the generic ``queries_rejected`` (see
    :meth:`repro.metrics.profit.ProfitLedger.on_query_rejected`).
    """

    name = "overload-shedding"

    def __init__(self, high_watermark: int = 150,
                 low_watermark: int = 75,
                 shed_quantile: float = 0.5,
                 window: int = 128) -> None:
        if high_watermark <= 0:
            raise ValueError(
                f"high_watermark must be positive, got {high_watermark}")
        if not 0 <= low_watermark < high_watermark:
            raise ValueError(
                f"need 0 <= low_watermark < high_watermark, got "
                f"{low_watermark} / {high_watermark}")
        if not 0.0 <= shed_quantile <= 1.0:
            raise ValueError(
                f"shed_quantile must be in [0, 1], got {shed_quantile}")
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.high_watermark = high_watermark
        self.low_watermark = low_watermark
        self.shed_quantile = shed_quantile
        self.window = window
        self._recent_values: list[float] = []
        self._recent_pos = 0
        self._shedding = False
        #: Mode flips, for telemetry: (entered, left).
        self.mode_changes = [0, 0]

    @property
    def is_shedding(self) -> bool:
        """True while the server is between the watermarks' hysteresis."""
        return self._shedding

    def _observe(self, value: float) -> None:
        if len(self._recent_values) < self.window:
            self._recent_values.append(value)
        else:  # ring buffer: overwrite the oldest
            self._recent_values[self._recent_pos] = value
            self._recent_pos = (self._recent_pos + 1) % self.window

    def _value_threshold(self) -> float:
        ordered = sorted(self._recent_values)
        if not ordered:
            return 0.0
        index = min(len(ordered) - 1,
                    int(self.shed_quantile * len(ordered)))
        return ordered[index]

    def admit(self, query: Query, server: "DatabaseServer") -> bool:
        backlog = server.scheduler.pending_queries()
        if not self._shedding and backlog >= self.high_watermark:
            self._shedding = True
            self.mode_changes[0] += 1
        elif self._shedding and backlog <= self.low_watermark:
            self._shedding = False
            self.mode_changes[1] += 1
        value = query.qc.total_max
        self._observe(value)
        if not self._shedding:
            return True
        return value >= self._value_threshold()


class BrownoutAdmission(AdmissionPolicy):
    """Serve degraded answers under overload instead of shedding.

    Same watermark + hysteresis machinery as :class:`OverloadShedding`,
    but the overload response is *brownout*, not rejection: every query
    is still admitted, and while the backlog is between the watermarks
    each admitted query is degraded via
    :meth:`~repro.db.transactions.Query.apply_brownout` — its service
    demand shrinks to ``degrade_factor`` of nominal (the freshness work
    is skipped) and its QoD profit is forfeited at commit.

    The crucial accounting difference from shedding: a browned-out
    contract stays in **every** ledger denominator (it was admitted and
    answered), so brownout shows up as reduced QoD profit, never as a
    shrunken baseline.  Under overload this trades the QoD half of the
    cheap contracts for keeping *all* the QoS halves alive — the
    preference-aware answer to "degrade gracefully".

    Degraded admissions are counted under ``queries_browned_out``.
    """

    name = "brownout"

    def __init__(self, high_watermark: int = 150,
                 low_watermark: int = 75,
                 degrade_factor: float = 0.4) -> None:
        if high_watermark <= 0:
            raise ValueError(
                f"high_watermark must be positive, got {high_watermark}")
        if not 0 <= low_watermark < high_watermark:
            raise ValueError(
                f"need 0 <= low_watermark < high_watermark, got "
                f"{low_watermark} / {high_watermark}")
        if not 0.0 < degrade_factor <= 1.0:
            raise ValueError(
                f"degrade_factor must be in (0, 1], got {degrade_factor}")
        self.high_watermark = high_watermark
        self.low_watermark = low_watermark
        self.degrade_factor = degrade_factor
        self._degrading = False
        #: Mode flips, for telemetry: (entered, left).
        self.mode_changes = [0, 0]

    @property
    def is_degrading(self) -> bool:
        """True while the server serves brownout answers."""
        return self._degrading

    def admit(self, query: Query, server: "DatabaseServer") -> bool:
        backlog = server.scheduler.pending_queries()
        if not self._degrading and backlog >= self.high_watermark:
            self._degrading = True
            self.mode_changes[0] += 1
        elif self._degrading and backlog <= self.low_watermark:
            self._degrading = False
            self.mode_changes[1] += 1
        if self._degrading:
            query.apply_brownout(self.degrade_factor)
            server.ledger.counters.increment("queries_browned_out")
        return True
