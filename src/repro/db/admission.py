"""Admission control for queries (extension; cf. the paper's UNIT [14]).

The paper's related work points at the authors' user-centric transaction
management (UNIT), which *admission-controls* incoming transactions; the
QUTS paper itself admits everything.  This module provides that missing
knob as an opt-in server extension: an admission policy sees each arriving
query plus a cheap view of the server's state and may reject it outright
(the user gets an immediate "try later" instead of a silently worthless
answer, and the server sheds the load).

Two policies are provided:

* :class:`AdmitAll` — the paper's behaviour (default);
* :class:`ProfitAwareAdmission` — rejects a query when the backlog of
  queued query work already exceeds the point where the newcomer could
  earn any QoS profit *and* its potential QoD profit is not worth the
  added load (a cheap, conservative estimate: queued service time ahead
  of it vs its ``rtmax``).

Rejected queries are profit-neutral: their maxima are *not* added to the
ledger denominators (the contract was declined, not broken), and they are
counted under ``queries_rejected``.
"""

from __future__ import annotations

import typing

from .transactions import Query

if typing.TYPE_CHECKING:  # pragma: no cover
    from .server import DatabaseServer


class AdmissionPolicy:
    """Decides whether an arriving query enters the system."""

    name = "base"

    def admit(self, query: Query, server: "DatabaseServer") -> bool:
        raise NotImplementedError


class AdmitAll(AdmissionPolicy):
    """The paper's behaviour: every query is admitted."""

    name = "admit-all"

    def admit(self, query: Query, server: "DatabaseServer") -> bool:
        return True


class ProfitAwareAdmission(AdmissionPolicy):
    """Shed queries that can no longer earn their QoS profit.

    A query is rejected when the *estimated* queueing delay ahead of it
    already exceeds its ``rtmax`` by ``slack_factor`` and its QoD upside
    is less than ``qod_weight`` of its total value.  The delay estimate
    is deliberately cheap: pending queries × their mean service time —
    an upper bound under query-favouring policies, an optimistic one
    under UH (admission control cannot fix UH's starvation; that is a
    scheduling problem).
    """

    name = "profit-aware"

    def __init__(self, mean_query_service_ms: float = 7.0,
                 slack_factor: float = 2.0,
                 qod_weight: float = 0.5) -> None:
        if mean_query_service_ms <= 0:
            raise ValueError("mean_query_service_ms must be positive")
        if slack_factor < 1.0:
            raise ValueError("slack_factor must be >= 1")
        if not 0.0 <= qod_weight <= 1.0:
            raise ValueError("qod_weight must be in [0, 1]")
        self.mean_query_service_ms = mean_query_service_ms
        self.slack_factor = slack_factor
        self.qod_weight = qod_weight

    def admit(self, query: Query, server: "DatabaseServer") -> bool:
        rt_max = query.qc.rt_max
        if rt_max <= 0 or rt_max == float("inf"):
            return True  # no deadline to protect
        backlog_ms = (server.scheduler.pending_queries()
                      * self.mean_query_service_ms)
        if backlog_ms <= self.slack_factor * rt_max:
            return True
        # QoS profit is unreachable; admit only if the QoD upside alone
        # justifies the work.
        total = query.qc.total_max
        if total <= 0:
            return False
        return query.qc.qod_max / total >= self.qod_weight
