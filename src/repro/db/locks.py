"""Two-Phase Locking with High Priority (2PL-HP) lock manager.

2PL-HP (Abbott & Garcia-Molina) resolves a conflict by comparing transaction
priorities: when a requester has higher priority than a conflicting holder,
the holder is **restarted** (it releases its locks and loses its progress);
otherwise the requester **blocks** until the locks free up.

In this system (read-only queries, blind single-item updates):

* read/read never conflicts;
* read/write and write/read are the interesting cases — they arise when a
  preempted (suspended) transaction still holds locks while a newly scheduled
  one needs them;
* write/write cannot reach the lock manager at all, because the update
  register table (:meth:`~repro.db.database.Database.register_update`)
  already dropped the older update on arrival of the newer one — exactly the
  paper's write-write rule.

Priorities are *policy-defined*: the scheduler supplies a
``has_priority(requester, holder)`` predicate, so each scheduling policy
(UH, QH, QUTS, ...) induces its own conflict resolution, as in the paper.

Locks are acquired conservatively (a transaction's full read/write set is
known upfront from the trace) and held until commit, abort, or restart.
"""

from __future__ import annotations

import enum
import typing

from .transactions import Transaction

PriorityPredicate = typing.Callable[[Transaction, Transaction], bool]


class LockMode(enum.Enum):
    READ = "read"
    WRITE = "write"


def _compatible(held: LockMode, requested: LockMode) -> bool:
    return held is LockMode.READ and requested is LockMode.READ


class AcquireOutcome(enum.Enum):
    """Result of a lock-acquisition attempt."""

    #: All locks granted; the transaction may run.
    GRANTED = "granted"
    #: A higher-priority holder exists; the requester must wait.
    BLOCKED = "blocked"


class AcquireResult:
    """Outcome of :meth:`LockManager.acquire_all` plus its side effects."""

    __slots__ = ("outcome", "restarted", "blocking_holders")

    def __init__(self, outcome: AcquireOutcome,
                 restarted: tuple[Transaction, ...] = (),
                 blocking_holders: tuple[Transaction, ...] = ()) -> None:
        self.outcome = outcome
        #: Lower-priority holders that were restarted to make room.
        self.restarted = restarted
        #: Higher-priority holders the requester is now waiting on.
        self.blocking_holders = blocking_holders

    @property
    def granted(self) -> bool:
        return self.outcome is AcquireOutcome.GRANTED

    def __repr__(self) -> str:
        return (f"<AcquireResult {self.outcome.value} "
                f"restarted={len(self.restarted)} "
                f"blocked_on={len(self.blocking_holders)}>")


class _LockEntry:
    __slots__ = ("mode", "holders")

    def __init__(self) -> None:
        self.mode: LockMode = LockMode.READ
        self.holders: set[Transaction] = set()


class LockManager:
    """Tracks per-item locks and applies the 2PL-HP resolution rule."""

    def __init__(self, has_priority: PriorityPredicate | None = None) -> None:
        #: item key -> lock entry
        self._table: dict[str, _LockEntry] = {}
        #: txn -> set of keys it holds locks on
        self._held: dict[Transaction, set[str]] = {}
        #: Policy predicate: does `requester` outrank `holder`?  The default
        #: (always True) matches every policy in the paper, where the
        #: currently scheduled transaction is by construction the
        #: highest-priority one.
        self._has_priority: PriorityPredicate = (
            has_priority if has_priority is not None
            else (lambda requester, holder: True))
        self.conflicts = 0
        self.restarts_caused = 0
        self.blocks_caused = 0

    def __repr__(self) -> str:
        return (f"<LockManager locked_items={len(self._table)} "
                f"conflicts={self.conflicts}>")

    def set_priority_predicate(self, predicate: PriorityPredicate) -> None:
        self._has_priority = predicate

    # ------------------------------------------------------------------
    def locks_of(self, txn: Transaction) -> frozenset[str]:
        """The keys ``txn`` currently holds locks on."""
        return frozenset(self._held.get(txn, ()))

    def holders_of(self, key: str) -> frozenset[Transaction]:
        entry = self._table.get(key)
        return frozenset(entry.holders) if entry else frozenset()

    def mode_of(self, key: str) -> LockMode | None:
        entry = self._table.get(key)
        return entry.mode if entry else None

    # ------------------------------------------------------------------
    def acquire_all(self, txn: Transaction,
                    mode: LockMode) -> AcquireResult:
        """Try to lock the transaction's whole item set in ``mode``.

        Applies 2PL-HP: conflicting lower-priority holders are restarted
        (their locks released, their progress reset by the caller via the
        returned list); if *any* conflicting holder outranks the requester,
        nothing is acquired and the requester must block.
        """
        keys = txn.touched_items()

        # First pass: find conflicts and split them by priority.
        to_restart: list[Transaction] = []
        blockers: list[Transaction] = []
        for key in keys:
            entry = self._table.get(key)
            if entry is None or not entry.holders:
                continue
            if _compatible(entry.mode, mode) or entry.holders == {txn}:
                continue
            for holder in entry.holders:
                if holder is txn:
                    continue
                self.conflicts += 1
                if self._has_priority(txn, holder):
                    to_restart.append(holder)
                else:
                    blockers.append(holder)

        if blockers:
            self.blocks_caused += 1
            return AcquireResult(AcquireOutcome.BLOCKED,
                                 blocking_holders=tuple(dict.fromkeys(
                                     blockers)))

        # Restart the losers (release their locks); the caller resets their
        # progress and requeues them.
        restarted = tuple(dict.fromkeys(to_restart))
        for loser in restarted:
            self.release_all(loser)
            self.restarts_caused += 1

        # Second pass: grant.
        for key in keys:
            entry = self._table.get(key)
            if entry is None:
                entry = _LockEntry()
                self._table[key] = entry
            if not entry.holders:
                entry.mode = mode
            entry.holders.add(txn)
            if mode is LockMode.WRITE:
                entry.mode = LockMode.WRITE
        self._held.setdefault(txn, set()).update(keys)
        return AcquireResult(AcquireOutcome.GRANTED, restarted=restarted)

    def release_all(self, txn: Transaction) -> frozenset[str]:
        """Release every lock held by ``txn``; returns the freed keys."""
        keys = self._held.pop(txn, set())
        for key in keys:
            entry = self._table.get(key)
            if entry is None:
                continue
            entry.holders.discard(txn)
            if not entry.holders:
                del self._table[key]
        return frozenset(keys)
