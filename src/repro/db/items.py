"""Data items and their staleness accounting.

Each :class:`DataItem` is an independently-refreshed, hash-accessed record
(§2 "Data Model").  The item tracks, per the paper's staleness metrics
(§2.1):

* ``#uu`` — number of unapplied updates: how many master-copy updates are
  not yet reflected in the replica (``latest_seq - applied_seq``);
* ``td``  — time differential: how long the item has been stale (time since
  the earliest unapplied update arrived);
* ``vd``  — value distance: ``|master_value - value|``.

The update register table in :class:`~repro.db.database.Database` guarantees
that at most one *pending* update per item exists in the system; applying it
always brings the item fully up to date (``#uu`` drops to 0) because blind
updates only care about the most recent value.
"""

from __future__ import annotations


class DataItem:
    """One independently-updated data item (a stock, in the paper's trace)."""

    __slots__ = ("key", "value", "master_value", "latest_seq", "applied_seq",
                 "stale_since", "last_applied_time", "updates_applied",
                 "updates_arrived", "updates_superseded")

    def __init__(self, key: str, value: float = 0.0) -> None:
        self.key = key
        #: The replica's current (possibly stale) value.
        self.value = value
        #: The most recent value pushed by the external source.
        self.master_value = value
        #: Sequence number of the newest update that has *arrived*.
        self.latest_seq = 0
        #: Sequence number of the newest update *applied* to the replica.
        self.applied_seq = 0
        #: Arrival time of the earliest unapplied update (None when fresh).
        self.stale_since: float | None = None
        #: Time the replica was last refreshed (None if never).
        self.last_applied_time: float | None = None
        self.updates_applied = 0
        self.updates_arrived = 0
        self.updates_superseded = 0

    def __repr__(self) -> str:
        return (f"<DataItem {self.key!r} value={self.value} "
                f"#uu={self.unapplied_updates}>")

    # ------------------------------------------------------------------
    # Staleness metrics (§2.1)
    # ------------------------------------------------------------------
    @property
    def unapplied_updates(self) -> int:
        """``#uu``: master-copy updates not reflected in the replica."""
        return self.latest_seq - self.applied_seq

    @property
    def is_fresh(self) -> bool:
        return self.latest_seq == self.applied_seq

    def time_differential(self, now: float) -> float:
        """``td``: how long the replica has been stale (0 when fresh)."""
        if self.stale_since is None:
            return 0.0
        return max(0.0, now - self.stale_since)

    @property
    def value_distance(self) -> float:
        """``vd``: absolute distance between replica and master values."""
        return abs(self.master_value - self.value)

    # ------------------------------------------------------------------
    # Mutation (called by the Database only)
    # ------------------------------------------------------------------
    def record_arrival(self, now: float, value: float) -> int:
        """An update arrived from the external source; returns its seq."""
        self.latest_seq += 1
        self.updates_arrived += 1
        self.master_value = value
        if self.stale_since is None:
            self.stale_since = now
        return self.latest_seq

    def apply(self, seq: int, value: float, now: float) -> None:
        """Apply an update; a stale (superseded) seq is ignored for state.

        Applying the newest pending update makes the item fully fresh, since
        blind updates supersede each other.
        """
        self.updates_applied += 1
        if seq <= self.applied_seq:
            return
        self.applied_seq = seq
        self.value = value
        self.last_applied_time = now
        if self.applied_seq == self.latest_seq:
            self.stale_since = None

    def record_superseded(self) -> None:
        self.updates_superseded += 1
