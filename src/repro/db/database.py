"""The main-memory database: hash-accessed items + the update register table.

The *update register table* (§2.1 "Updates") holds, per data item, the single
pending update that is allowed to exist in the system.  When a new update
arrives for an item that already has a pending update, the older one is
*invalidated* ("simply dropped from the system without violating data
consistency") — this is also how the write-write rule of 2PL-HP resolves:
the older update loses.

Queries read replica values through :meth:`Database.read`; staleness is
measured against the per-item sequence counters maintained here.
"""

from __future__ import annotations

import statistics
import typing

from .items import DataItem
from .transactions import Query, TxnStatus, Update

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .wal import WalRecord

#: How a query's read-set staleness values are aggregated into one number.
StalenessAggregation = typing.Literal["max", "mean", "sum"]

#: The full per-item state captured by snapshots (every DataItem slot).
_ITEM_FIELDS: tuple[str, ...] = DataItem.__slots__


class Database:
    """A main-memory store of independently-refreshed data items."""

    def __init__(self, keys: typing.Iterable[str] = (),
                 staleness_aggregation: StalenessAggregation = "max",
                 invalidation: bool = True) -> None:
        self._items: dict[str, DataItem] = {
            key: DataItem(key) for key in keys}
        if staleness_aggregation not in ("max", "mean", "sum"):
            raise ValueError(
                f"unknown staleness aggregation {staleness_aggregation!r}")
        self.staleness_aggregation: StalenessAggregation = (
            staleness_aggregation)
        #: Ablation switch: with invalidation off, a newer update does NOT
        #: drop the pending older one — every update must be applied.  The
        #: paper's system model requires invalidation ("the arrival of a
        #: new update automatically invalidates any pending update"); the
        #: toggle exists to measure how load-bearing it is.
        self.invalidation = invalidation
        #: The update register table: item key -> the one pending update.
        self._register: dict[str, Update] = {}

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, key: str) -> bool:
        return key in self._items

    def __repr__(self) -> str:
        return (f"<Database items={len(self._items)} "
                f"pending={len(self._register)}>")

    # ------------------------------------------------------------------
    # Item access
    # ------------------------------------------------------------------
    def item(self, key: str) -> DataItem:
        """The :class:`DataItem` for ``key``, creating it if unknown.

        Hash-based access per the paper's data model; items are created on
        first reference so traces never need a separate schema step.
        """
        existing = self._items.get(key)
        if existing is not None:
            return existing
        item = DataItem(key)
        self._items[key] = item
        return item

    def items(self) -> typing.Iterator[DataItem]:
        return iter(self._items.values())

    def read(self, key: str) -> float:
        """The replica's current value for ``key``."""
        return self.item(key).value

    # ------------------------------------------------------------------
    # Update registration / invalidation
    # ------------------------------------------------------------------
    def register_update(self, update: Update, now: float) -> Update | None:
        """Register an arriving update; returns the update it invalidated.

        Assigns the update's per-item sequence number, records the arrival
        on the item (which is what makes the replica stale), and drops any
        older pending update on the same item
        (``TxnStatus.DROPPED_SUPERSEDED``).  The superseded update may be
        queued, suspended, or even running — the caller (the server) is
        responsible for evicting it from the CPU if it was running.
        """
        item = self.item(update.item)
        update.seq = item.record_arrival(now, update.value)

        superseded = self._register.get(update.item)
        self._register[update.item] = update
        if superseded is None or not self.invalidation:
            return None
        if superseded.alive:
            superseded.status = TxnStatus.DROPPED_SUPERSEDED
            superseded.finish_time = now
        item.record_superseded()
        return superseded

    def pending_update(self, key: str) -> Update | None:
        """The registered pending update for ``key`` (if any)."""
        pending = self._register.get(key)
        if pending is None or pending.done:
            return None
        return pending

    def pending_count(self) -> int:
        """Number of items with a live pending update."""
        return sum(1 for u in self._register.values() if u.alive)

    def apply_update(self, update: Update, now: float) -> None:
        """Commit an update: refresh the replica and clear the register."""
        item = self.item(update.item)
        item.apply(update.seq, update.value, now)
        if self._register.get(update.item) is update:
            del self._register[update.item]

    # ------------------------------------------------------------------
    # Durability: snapshots, crash wipe, and WAL replay
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, tuple]:
        """A crash-consistent copy of the full per-item state.

        Every :class:`DataItem` slot is captured (values are immutable
        scalars, so a tuple per item is a deep copy).  The register table
        is *not* part of the snapshot: pending updates are volatile queue
        state, re-synced from the durable source after a crash.
        """
        return {key: tuple(getattr(item, field) for field in _ITEM_FIELDS)
                for key, item in self._items.items()}

    def restore(self, snapshot: dict[str, tuple]) -> None:
        """Replace the store's contents with ``snapshot`` (checkpoint
        restore); anything not in the snapshot is forgotten."""
        self._items = {}
        self._register = {}
        for key, state in snapshot.items():
            item = DataItem(key)
            for field, value in zip(_ITEM_FIELDS, state):
                setattr(item, field, value)
            self._items[key] = item

    def clear(self) -> None:
        """Fail-stop wipe: a main-memory store dies with its server."""
        self._items = {}
        self._register = {}

    def export_items(self, keys: typing.Iterable[str]) -> dict[str, tuple]:
        """A partial snapshot: the full per-item state for ``keys`` only.

        The shard migration protocol copies a key range with this +
        :meth:`import_items`; keys this store has never materialised are
        omitted (the destination creates them lazily, exactly as this
        store would have).
        """
        out: dict[str, tuple] = {}
        for key in keys:
            item = self._items.get(key)
            if item is not None:
                out[key] = tuple(getattr(item, field)
                                 for field in _ITEM_FIELDS)
        return out

    def import_items(self, snapshot: dict[str, tuple]) -> None:
        """Install a partial snapshot, overwriting any existing items.

        The register table is untouched: pending updates for migrated
        keys are the *source's* volatile queue state and are replayed by
        the migration coordinator through the normal update path.
        """
        for key, state in snapshot.items():
            item = DataItem(key)
            for field, value in zip(_ITEM_FIELDS, state):
                setattr(item, field, value)
            self._items[key] = item

    def replay_applied(self, record: "WalRecord") -> None:
        """Re-install one WAL record during recovery.

        The record proves both that the update's arrival happened (it was
        registered before it could be applied) and that it committed, so
        replay advances the arrival counters when the checkpoint predates
        the arrival, then re-applies the value.
        """
        item = self.item(record.item)
        if record.seq > item.latest_seq:
            # Arrived after the checkpoint was cut: recover the arrival
            # bookkeeping the snapshot could not contain.
            item.latest_seq = record.seq
            item.master_value = record.value
            item.updates_arrived += 1
        item.apply(record.seq, record.value, record.applied_at)

    def state_digest(self) -> tuple[tuple[str, float, float, int], ...]:
        """Canonical comparable state: (key, value, master, #uu) rows.

        Two replicas that served the same update stream — live, replayed
        from the WAL, or re-synced after a crash — must produce equal
        digests; this is what the recovery property tests compare.  Only
        items that ever saw an update are included: read-only items are
        materialised lazily by whichever queries happen to be routed
        here, so their presence is routing noise, not replica state.
        """
        return tuple(sorted(
            (item.key, item.value, item.master_value,
             item.unapplied_updates)
            for item in self._items.values() if item.latest_seq > 0))

    # ------------------------------------------------------------------
    # Staleness of a query's read set
    # ------------------------------------------------------------------
    def staleness_age(self, key: str, now: float) -> float:
        """Simulated-time age of ``key``'s earliest unapplied update.

        0.0 while the replica is fresh (or has never seen ``key``).  This
        is the per-key form of the ``td`` metric — the shared signal the
        QC-aware and staleness-aware routers both score routes by (age,
        not just unapplied-update counts).  Non-creating: probing a key
        must not materialise it.
        """
        item = self._items.get(key)
        if item is None:
            return 0.0
        return item.time_differential(now)

    def max_staleness_age(self, now: float) -> float:
        """The oldest unapplied update's age across the whole store."""
        oldest = 0.0
        for item in self._items.values():
            age = item.time_differential(now)
            if age > oldest:
                oldest = age
        return oldest

    def query_staleness(self, query: Query) -> float:
        """Aggregate ``#uu`` over the query's read set (paper default: max).

        ``uumax = 1`` in the paper means "QoD profit is gained only when no
        update is missed", i.e. the aggregate must be 0 for full step-QC
        profit — the max aggregation matches that reading for multi-item
        queries.
        """
        values = [float(self.item(key).unapplied_updates)
                  for key in query.items]
        return self._aggregate(values)

    def query_time_differential(self, query: Query, now: float) -> float:
        """Aggregate ``td`` over the query's read set (extension metric)."""
        values = [self.item(key).time_differential(now)
                  for key in query.items]
        return self._aggregate(values)

    def query_value_distance(self, query: Query) -> float:
        """Aggregate ``vd`` over the query's read set (extension metric)."""
        values = [self.item(key).value_distance for key in query.items]
        return self._aggregate(values)

    def _aggregate(self, values: list[float]) -> float:
        if self.staleness_aggregation == "max":
            return max(values)
        if self.staleness_aggregation == "mean":
            return statistics.fmean(values)
        return sum(values)
