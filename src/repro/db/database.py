"""The main-memory database: hash-accessed items + the update register table.

The *update register table* (§2.1 "Updates") holds, per data item, the single
pending update that is allowed to exist in the system.  When a new update
arrives for an item that already has a pending update, the older one is
*invalidated* ("simply dropped from the system without violating data
consistency") — this is also how the write-write rule of 2PL-HP resolves:
the older update loses.

Queries read replica values through :meth:`Database.read`; staleness is
measured against the per-item sequence counters maintained here.
"""

from __future__ import annotations

import statistics
import typing

from .items import DataItem
from .transactions import Query, TxnStatus, Update

#: How a query's read-set staleness values are aggregated into one number.
StalenessAggregation = typing.Literal["max", "mean", "sum"]


class Database:
    """A main-memory store of independently-refreshed data items."""

    def __init__(self, keys: typing.Iterable[str] = (),
                 staleness_aggregation: StalenessAggregation = "max",
                 invalidation: bool = True) -> None:
        self._items: dict[str, DataItem] = {
            key: DataItem(key) for key in keys}
        if staleness_aggregation not in ("max", "mean", "sum"):
            raise ValueError(
                f"unknown staleness aggregation {staleness_aggregation!r}")
        self.staleness_aggregation: StalenessAggregation = (
            staleness_aggregation)
        #: Ablation switch: with invalidation off, a newer update does NOT
        #: drop the pending older one — every update must be applied.  The
        #: paper's system model requires invalidation ("the arrival of a
        #: new update automatically invalidates any pending update"); the
        #: toggle exists to measure how load-bearing it is.
        self.invalidation = invalidation
        #: The update register table: item key -> the one pending update.
        self._register: dict[str, Update] = {}

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, key: str) -> bool:
        return key in self._items

    def __repr__(self) -> str:
        return (f"<Database items={len(self._items)} "
                f"pending={len(self._register)}>")

    # ------------------------------------------------------------------
    # Item access
    # ------------------------------------------------------------------
    def item(self, key: str) -> DataItem:
        """The :class:`DataItem` for ``key``, creating it if unknown.

        Hash-based access per the paper's data model; items are created on
        first reference so traces never need a separate schema step.
        """
        existing = self._items.get(key)
        if existing is not None:
            return existing
        item = DataItem(key)
        self._items[key] = item
        return item

    def items(self) -> typing.Iterator[DataItem]:
        return iter(self._items.values())

    def read(self, key: str) -> float:
        """The replica's current value for ``key``."""
        return self.item(key).value

    # ------------------------------------------------------------------
    # Update registration / invalidation
    # ------------------------------------------------------------------
    def register_update(self, update: Update, now: float) -> Update | None:
        """Register an arriving update; returns the update it invalidated.

        Assigns the update's per-item sequence number, records the arrival
        on the item (which is what makes the replica stale), and drops any
        older pending update on the same item
        (``TxnStatus.DROPPED_SUPERSEDED``).  The superseded update may be
        queued, suspended, or even running — the caller (the server) is
        responsible for evicting it from the CPU if it was running.
        """
        item = self.item(update.item)
        update.seq = item.record_arrival(now, update.value)

        superseded = self._register.get(update.item)
        self._register[update.item] = update
        if superseded is None or not self.invalidation:
            return None
        if superseded.alive:
            superseded.status = TxnStatus.DROPPED_SUPERSEDED
            superseded.finish_time = now
        item.record_superseded()
        return superseded

    def pending_update(self, key: str) -> Update | None:
        """The registered pending update for ``key`` (if any)."""
        pending = self._register.get(key)
        if pending is None or pending.done:
            return None
        return pending

    def pending_count(self) -> int:
        """Number of items with a live pending update."""
        return sum(1 for u in self._register.values() if u.alive)

    def apply_update(self, update: Update, now: float) -> None:
        """Commit an update: refresh the replica and clear the register."""
        item = self.item(update.item)
        item.apply(update.seq, update.value, now)
        if self._register.get(update.item) is update:
            del self._register[update.item]

    # ------------------------------------------------------------------
    # Staleness of a query's read set
    # ------------------------------------------------------------------
    def query_staleness(self, query: Query) -> float:
        """Aggregate ``#uu`` over the query's read set (paper default: max).

        ``uumax = 1`` in the paper means "QoD profit is gained only when no
        update is missed", i.e. the aggregate must be 0 for full step-QC
        profit — the max aggregation matches that reading for multi-item
        queries.
        """
        values = [float(self.item(key).unapplied_updates)
                  for key in query.items]
        return self._aggregate(values)

    def query_time_differential(self, query: Query, now: float) -> float:
        """Aggregate ``td`` over the query's read set (extension metric)."""
        values = [self.item(key).time_differential(now)
                  for key in query.items]
        return self._aggregate(values)

    def query_value_distance(self, query: Query) -> float:
        """Aggregate ``vd`` over the query's read set (extension metric)."""
        values = [self.item(key).value_distance for key in query.items]
        return self._aggregate(values)

    def _aggregate(self, values: list[float]) -> float:
        if self.staleness_aggregation == "max":
            return max(values)
        if self.staleness_aggregation == "mean":
            return statistics.fmean(values)
        return sum(values)
