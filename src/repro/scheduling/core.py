"""Clock-agnostic scheduler core: one decision engine, two worlds.

The scheduling policies (FIFO, UH/QH, QUTS, ...) are pure decision
logic — "who gets the CPU now, for how long, and who wins a lock
conflict".  Nothing in those decisions requires a *simulated* clock;
they only need (a) a monotonically non-decreasing ``now`` in
milliseconds and (b) a way to schedule a periodic callback (QUTS's
ρ-adaptation every ω ms).

:class:`SchedulerClock` captures exactly that surface.  The DES binds a
policy to simulated time via :class:`DESClock` (bit-identical to the
pre-split behaviour: ``call_periodic`` spawns the same
``timeout``/callback process the schedulers used to spawn themselves),
and the live gateway (:mod:`repro.serve`) binds the *same instance* to
a monotonic host clock.  ``SchedulerCore`` is the half of the old
``Scheduler`` base that both worlds share; the DES-facing ``bind(env,
streams)`` entry point lives on :class:`repro.scheduling.base.Scheduler`
and simply wraps the environment in a :class:`DESClock`.
"""

from __future__ import annotations

import typing

from repro.db.transactions import Query, Transaction, Update
from repro.sim import Environment, Infinity
from repro.sim.process import ProcessGenerator
from repro.sim.rng import StreamRegistry

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.telemetry.hooks import SchedulerProbe


class SchedulerClock(typing.Protocol):
    """The only clock surface scheduling decisions may touch.

    ``now`` is milliseconds on the binding world's clock (simulated
    time in the DES, monotonic time since gateway start in
    :mod:`repro.serve`).  ``call_periodic`` registers ``fn`` to be
    called every ``period_ms`` with the then-current ``now`` — the DES
    turns this into a kernel process, the gateway into an asyncio task.
    """

    @property
    def now(self) -> float:
        """Current time in milliseconds (monotonically non-decreasing)."""
        ...  # pragma: no cover - protocol

    def call_periodic(self, period_ms: float,
                      fn: typing.Callable[[float], None], *,
                      name: str) -> None:
        """Arrange for ``fn(now)`` to run every ``period_ms`` ms."""
        ...  # pragma: no cover - protocol


class DESClock:
    """Bind a :class:`SchedulerCore` to simulated time.

    ``call_periodic`` spawns the exact event pattern the schedulers
    used before the split (``while True: yield env.timeout(period);
    fn(env.now)`` under the same process name), so kernel event order —
    and therefore every downstream RNG draw — is unchanged.
    """

    __slots__ = ("_env",)

    def __init__(self, env: Environment) -> None:
        self._env = env

    @property
    def now(self) -> float:
        return self._env.now

    def call_periodic(self, period_ms: float,
                      fn: typing.Callable[[float], None], *,
                      name: str) -> None:
        env = self._env

        def _loop() -> ProcessGenerator:
            while True:
                yield env.timeout(period_ms)
                fn(env.now)

        env.process(_loop(), name=name)


class SchedulerCore:
    """Clock-agnostic scheduling policy: queues + decisions, no kernel.

    A core owns the waiting transactions and answers four questions:

    * ``next_transaction(now)`` — which transaction should get the CPU
      now?
    * ``preempts(running, arrival)`` — should this fresh arrival kick
      the running transaction off the CPU immediately?
    * ``quantum(running, now)`` — for how long may the chosen
      transaction run before the scheduler wants to make a new decision
      (``inf`` for run-to-completion policies; the remaining atom-time
      slot for QUTS)?
    * ``has_lock_priority(requester, holder)`` — the 2PL-HP priority
      predicate induced by this policy.

    The driver (DES server or live gateway) calls ``submit_query`` /
    ``submit_update`` on arrivals and ``requeue`` when a preempted,
    restarted, or unblocked transaction must wait again.
    ``bind_clock`` hands the core its world's clock + RNG streams
    before work starts; QUTS uses it to register its ρ-adaptation
    callback.  The same core instance can drive the simulator
    (:class:`DESClock`) and the live gateway
    (:class:`repro.serve.clock.MonotonicClock`) — only the binding
    differs.
    """

    #: Short name used in reports and figures ("FIFO", "UH", "QUTS", ...).
    name: str = "base"

    def __init__(self) -> None:
        self.clock: SchedulerClock | None = None
        #: Telemetry probe (None keeps every hook a single comparison).
        self.probe: "SchedulerProbe | None" = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def bind_clock(self, clock: SchedulerClock,
                   streams: StreamRegistry) -> None:
        """Attach the world's clock + RNG streams before work starts."""
        self.clock = clock

    def attach_telemetry(self, probe: "SchedulerProbe | None") -> None:
        """Attach a telemetry probe (the driver does this at startup)."""
        self.probe = probe

    def _trace_depths(self) -> None:
        """Emit queue-depth counter samples (callers guard ``probe``).

        The gate runs first so a sampled-out snapshot skips the depth
        computation (and the ``clock.now`` property) entirely.
        """
        probe = self.probe
        if probe is not None and self.clock is not None \
                and probe.wants_depths():
            probe.record_depths(self.clock.now, self.pending_queries(),
                                self.pending_updates())

    # ------------------------------------------------------------------
    # Queue management
    # ------------------------------------------------------------------
    def submit_query(self, query: Query) -> None:
        raise NotImplementedError

    def submit_update(self, update: Update) -> None:
        raise NotImplementedError

    def requeue(self, txn: Transaction) -> None:
        """Put a preempted/restarted/unblocked transaction back in line."""
        if isinstance(txn, Query):
            self.submit_query(txn)
        elif isinstance(txn, Update):
            self.submit_update(txn)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown transaction type {txn!r}")

    def notify_query_finished(self, query: Query) -> None:
        """Hook: ``query`` committed or was dropped.

        The base policies ignore it; extensions that derive update
        priority from query interest (e.g.
        :mod:`repro.scheduling.inheritance`) use it to retire interest.
        """

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    def next_transaction(self, now: float) -> Transaction | None:
        """Pop the transaction that should run now (None if all queues
        are empty)."""
        raise NotImplementedError

    def preempts(self, running: Transaction, arrival: Transaction) -> bool:
        """Should ``arrival`` preempt ``running`` immediately?"""
        return False

    def quantum(self, running: Transaction, now: float) -> float:
        """Maximum uninterrupted slice for ``running`` (default: no limit)."""
        return Infinity

    def has_lock_priority(self, requester: Transaction,
                          holder: Transaction) -> bool:
        """2PL-HP predicate: does ``requester`` outrank ``holder``?

        In every policy of the paper the transaction holding the CPU is the
        highest-priority one, so the default is True (restart the holder).
        """
        return True

    # ------------------------------------------------------------------
    # Introspection (used by tests and reports)
    # ------------------------------------------------------------------
    def pending_queries(self) -> int:
        raise NotImplementedError

    def pending_updates(self) -> int:
        raise NotImplementedError

    def has_work(self) -> bool:
        return self.pending_queries() > 0 or self.pending_updates() > 0
