"""The DES-facing scheduler interface the database server drives.

The decision contract itself — queues, ``next_transaction``,
``preempts``, ``quantum``, ``has_lock_priority`` — lives on the
clock-agnostic :class:`repro.scheduling.core.SchedulerCore`, which both
the simulator and the live gateway (:mod:`repro.serve`) drive.
:class:`Scheduler` is the DES binding: ``bind`` hands the core its
environment wrapped in a :class:`~repro.scheduling.core.DESClock`
(clock + RNG streams) before the simulation starts; QUTS uses it to
start its adaptation process.
"""

from __future__ import annotations

import typing

from repro.sim import Environment
from repro.sim.rng import StreamRegistry

from .core import DESClock, SchedulerCore


class Scheduler(SchedulerCore):
    """Base class for DES-bound policies; concrete policies override the
    queue/decision methods on :class:`SchedulerCore`."""

    def __init__(self) -> None:
        super().__init__()
        self.env: Environment | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def bind(self, env: Environment, streams: StreamRegistry) -> None:
        """Attach the simulation environment before the run starts."""
        self.env = env
        self.bind_clock(DESClock(env), streams)


SchedulerFactory = typing.Callable[[], Scheduler]
