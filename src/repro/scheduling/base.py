"""The scheduler interface the database server drives.

A scheduler owns the waiting transactions and answers four questions:

* ``next_transaction(now)`` — which transaction should get the CPU now?
* ``preempts(running, arrival)`` — should this fresh arrival kick the
  running transaction off the CPU immediately?
* ``quantum(running, now)`` — for how long may the chosen transaction run
  before the scheduler wants to make a new decision (``inf`` for
  run-to-completion policies; the remaining atom-time slot for QUTS)?
* ``has_lock_priority(requester, holder)`` — the 2PL-HP priority predicate
  induced by this policy.

The server calls ``submit_query`` / ``submit_update`` on arrivals and
``requeue`` when a preempted, restarted, or unblocked transaction must wait
again.  ``bind`` hands the scheduler its environment (clock + RNG streams)
before the simulation starts; QUTS uses it to start its adaptation process.
"""

from __future__ import annotations

import typing

from repro.db.transactions import Query, Transaction, Update
from repro.sim import Environment, Infinity
from repro.sim.rng import StreamRegistry

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.telemetry.hooks import SchedulerProbe


class Scheduler:
    """Base class; concrete policies override the queue/decision methods."""

    #: Short name used in reports and figures ("FIFO", "UH", "QUTS", ...).
    name: str = "base"

    def __init__(self) -> None:
        self.env: Environment | None = None
        #: Telemetry probe (None keeps every hook a single comparison).
        self.probe: "SchedulerProbe | None" = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def bind(self, env: Environment, streams: StreamRegistry) -> None:
        """Attach the simulation environment before the run starts."""
        self.env = env

    def attach_telemetry(self, probe: "SchedulerProbe | None") -> None:
        """Attach a telemetry probe (the server does this at startup)."""
        self.probe = probe

    def _trace_depths(self) -> None:
        """Emit queue-depth counter samples (callers guard ``probe``).

        The gate runs first so a sampled-out snapshot skips the depth
        computation (and the ``env.now`` property) entirely.
        """
        probe = self.probe
        if probe is not None and self.env is not None \
                and probe.wants_depths():
            probe.record_depths(self.env.now, self.pending_queries(),
                                self.pending_updates())

    # ------------------------------------------------------------------
    # Queue management
    # ------------------------------------------------------------------
    def submit_query(self, query: Query) -> None:
        raise NotImplementedError

    def submit_update(self, update: Update) -> None:
        raise NotImplementedError

    def requeue(self, txn: Transaction) -> None:
        """Put a preempted/restarted/unblocked transaction back in line."""
        if isinstance(txn, Query):
            self.submit_query(txn)
        elif isinstance(txn, Update):
            self.submit_update(txn)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown transaction type {txn!r}")

    def notify_query_finished(self, query: Query) -> None:
        """Hook: ``query`` committed or was dropped.

        The base policies ignore it; extensions that derive update
        priority from query interest (e.g.
        :mod:`repro.scheduling.inheritance`) use it to retire interest.
        """

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    def next_transaction(self, now: float) -> Transaction | None:
        """Pop the transaction that should run now (None if all queues
        are empty)."""
        raise NotImplementedError

    def preempts(self, running: Transaction, arrival: Transaction) -> bool:
        """Should ``arrival`` preempt ``running`` immediately?"""
        return False

    def quantum(self, running: Transaction, now: float) -> float:
        """Maximum uninterrupted slice for ``running`` (default: no limit)."""
        return Infinity

    def has_lock_priority(self, requester: Transaction,
                          holder: Transaction) -> bool:
        """2PL-HP predicate: does ``requester`` outrank ``holder``?

        In every policy of the paper the transaction holding the CPU is the
        highest-priority one, so the default is True (restart the holder).
        """
        return True

    # ------------------------------------------------------------------
    # Introspection (used by tests and reports)
    # ------------------------------------------------------------------
    def pending_queries(self) -> int:
        raise NotImplementedError

    def pending_updates(self) -> int:
        raise NotImplementedError

    def has_work(self) -> bool:
        return self.pending_queries() > 0 or self.pending_updates() > 0


SchedulerFactory = typing.Callable[[], Scheduler]
