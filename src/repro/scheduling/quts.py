"""QUTS: Query-Update Time-Sharing, the paper's two-level scheduler (§4).

**High level** — the CPU is time-shared between the query queue and the
update queue in *atom time* slots of length ``τ``.  At each slot boundary
(or whenever the chosen queue is empty) a fresh slot owner is drawn:
queries with probability ``ρ``, updates with probability ``1-ρ``.

``ρ`` is re-optimised every *adaptation period* ``ω`` from the profit mass
submitted during the previous period, using the closed form of Eq. 4:

    ρ_new = min( QOSmax / (2·QODmax) + 0.5 , 1 )

(the maximiser of ``Q ≈ QOSmax·ρ + QODmax·ρ·(1-ρ)``), smoothed with an
aging factor ``α`` (Eq. 6):

    ρ_k = (1-α)·ρ_{k-1} + α·ρ_new

Note ``ρ ≥ 0.5`` always — the model says queries should hold priority at
least half the time, since QoD profit also requires queries to finish.

**Low level** — each queue orders itself independently; the paper's
configuration is VRD for queries and FIFO for updates, both pluggable here.

The scheduler also induces the 2PL-HP priority: the class owning the current
slot wins lock conflicts.
"""

from __future__ import annotations

from repro.db.transactions import Query, Transaction, Update
from repro.sim import TimeSeries
from repro.sim.rng import RandomStream, StreamRegistry

from .base import Scheduler
from .core import SchedulerClock
from .priorities import FCFSPriority, PriorityPolicy, VRDPriority
from .queues import TransactionQueue

#: Default atom time (ms) — Table 3.
DEFAULT_TAU_MS = 10.0
#: Default adaptation period (ms) — Table 3.
DEFAULT_OMEGA_MS = 1000.0
#: Default aging factor — §4.1 says "α should be a small value, but the
#: exact α does not matter much".
DEFAULT_ALPHA = 0.3


def optimal_rho(qos_max: float, qod_max: float) -> float:
    """Eq. 4: the ρ maximising ``QOSmax·ρ + QODmax·ρ·(1-ρ)``.

    ``QODmax = 0`` degenerates to "all CPU to queries" (ρ = 1).
    """
    if qos_max < 0 or qod_max < 0:
        raise ValueError("profit maxima must be non-negative")
    if qod_max <= 0:
        return 1.0
    return min(qos_max / (2.0 * qod_max) + 0.5, 1.0)


class QUTSScheduler(Scheduler):
    """The Query-Update Time-Sharing two-level scheduler."""

    name = "QUTS"

    def __init__(self,
                 tau: float = DEFAULT_TAU_MS,
                 omega: float = DEFAULT_OMEGA_MS,
                 alpha: float = DEFAULT_ALPHA,
                 initial_rho: float = 0.5,
                 fixed_rho: float | None = None,
                 query_policy: PriorityPolicy | None = None,
                 update_policy: PriorityPolicy | None = None) -> None:
        super().__init__()
        if tau <= 0:
            raise ValueError(f"atom time tau must be positive, got {tau}")
        if omega <= 0:
            raise ValueError(f"adaptation period omega must be positive, "
                             f"got {omega}")
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"aging factor alpha must be in (0, 1], "
                             f"got {alpha}")
        if not 0.0 <= initial_rho <= 1.0:
            raise ValueError(f"initial_rho must be in [0, 1], "
                             f"got {initial_rho}")
        self.tau = tau
        self.omega = omega
        self.alpha = alpha
        self.rho = initial_rho if fixed_rho is None else fixed_rho
        #: Ablation switch: freeze ρ (disables adaptation entirely).
        self.fixed_rho = fixed_rho

        self._queries = TransactionQueue(
            query_policy if query_policy is not None else VRDPriority(),
            name="queries")
        self._updates = TransactionQueue(
            update_policy if update_policy is not None else FCFSPriority(),
            name="updates")

        # Current atom-time slot.
        self._state: str = "query"
        self._state_until: float = 0.0

        # Profit mass submitted during the current adaptation period.
        self._period_qos_max = 0.0
        self._period_qod_max = 0.0

        #: ρ after each adaptation (Figure 9d).
        self.rho_series = TimeSeries("rho")
        #: Chronicle of (time, state) slot draws, for tests/inspection.
        self.state_changes = 0

        self._rng: RandomStream | None = None

    def __repr__(self) -> str:
        return (f"<QUTS rho={self.rho:.3f} tau={self.tau} "
                f"omega={self.omega} state={self._state}>")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def bind_clock(self, clock: SchedulerClock,
                   streams: StreamRegistry) -> None:
        super().bind_clock(clock, streams)
        self._rng = streams.stream("quts.xi")
        self._state_until = clock.now
        if self.fixed_rho is None:
            # Recompute ρ at the start of each adaptation period ω (§4.1).
            clock.call_periodic(self.omega, self._adapt,
                                name="quts-adaptation")

    def _adapt(self, now: float) -> None:
        qos_max = self._period_qos_max
        qod_max = self._period_qod_max
        self._period_qos_max = 0.0
        self._period_qod_max = 0.0
        if qos_max <= 0.0 and qod_max <= 0.0:
            # Nothing submitted last period: keep ρ (no information).
            self.rho_series.record(now, self.rho)
            if self.probe is not None:
                self.probe.rho_update(now, self.rho, qos_max, qod_max)
            return
        rho_new = optimal_rho(qos_max, qod_max)
        self.rho = (1.0 - self.alpha) * self.rho + self.alpha * rho_new
        self.rho_series.record(now, self.rho)
        if self.probe is not None:
            self.probe.rho_update(now, self.rho, qos_max, qod_max)

    # ------------------------------------------------------------------
    # Queue management
    # ------------------------------------------------------------------
    def submit_query(self, query: Query) -> None:
        # New arrival: account its contract toward this period's ρ input.
        self._period_qos_max += query.qc.qos_max
        self._period_qod_max += query.qc.qod_max
        self._queries.push(query)
        if self.probe is not None:
            self._trace_depths()

    def submit_update(self, update: Update) -> None:
        self._updates.push(update)
        if self.probe is not None:
            self._trace_depths()

    def requeue(self, txn: Transaction) -> None:
        """Preempted/restarted work re-enters its queue *without* being
        re-counted toward the adaptation accumulators."""
        if isinstance(txn, Query):
            self._queries.push(txn)
        else:
            self._updates.push(txn)
        if self.probe is not None:
            self._trace_depths()

    # ------------------------------------------------------------------
    # High-level decision: who owns the CPU now?
    # ------------------------------------------------------------------
    def next_transaction(self, now: float) -> Transaction | None:
        if now >= self._state_until:
            self._draw_state(now)

        chosen, other = ((self._queries, self._updates)
                         if self._state == "query"
                         else (self._updates, self._queries))
        txn = chosen.pop()
        if txn is not None:
            if self.probe is not None:
                self._trace_depths()
            return txn

        # "A state change may happen ... if the picked queue is empty at any
        # instant of time" — flip to the other class with a fresh slot.
        txn = other.pop()
        if txn is not None:
            self._switch_state("update" if self._state == "query"
                               else "query", now)
            if self.probe is not None:
                self._trace_depths()
        return txn

    def _draw_state(self, now: float) -> None:
        assert self._rng is not None, "bind() must be called before running"
        xi = self._rng.random()
        state = "query" if xi < self.rho else "update"
        if self.probe is not None:
            self.probe.quantum_draw(now, xi, state)
        self._switch_state(state, now)

    def _switch_state(self, state: str, now: float) -> None:
        if state != self._state:
            self.state_changes += 1
            if self.probe is not None:
                self.probe.queue_switch(now, state)
        self._state = state
        self._state_until = now + self.tau

    def quantum(self, running: Transaction, now: float) -> float:
        """Run at most to the end of the current atom-time slot.

        The slot can expire while ``running`` is being switched in (the
        server charges class-switch overhead between ``next_transaction``
        and the first slice).  Granting a fresh ``tau`` without re-drawing
        the slot owner would let the running class overrun its time share,
        so an expired slot re-draws the owner first: if the new slot still
        belongs to ``running``'s class it gets the full slot, otherwise it
        gets a zero quantum and yields the CPU back to the scheduler (the
        cooperative equivalent of the τ-boundary switch).
        """
        remaining_slot = self._state_until - now
        if remaining_slot <= 0:
            self._draw_state(now)
            owner = "query" if running.is_query else "update"
            if self._state != owner:
                return 0.0
            remaining_slot = self._state_until - now
        return remaining_slot

    def preempts(self, running: Transaction, arrival: Transaction) -> bool:
        """QUTS never preempts mid-slot; switches happen at τ boundaries
        (or on queue-empty, which the executor handles naturally)."""
        return False

    def has_lock_priority(self, requester: Transaction,
                          holder: Transaction) -> bool:
        """The class owning the current slot wins 2PL-HP conflicts."""
        requester_owns_slot = (
            (requester.is_query and self._state == "query")
            or (requester.is_update and self._state == "update"))
        if requester_owns_slot:
            return True
        holder_owns_slot = (
            (holder.is_query and self._state == "query")
            or (holder.is_update and self._state == "update"))
        return not holder_owns_slot

    # ------------------------------------------------------------------
    def pending_queries(self) -> int:
        return len(self._queries)

    def pending_updates(self) -> int:
        return len(self._updates)

    @property
    def current_state(self) -> str:
        return self._state
