"""Dual-priority-queue baselines: Update-High and Query-High (§3.2).

Both keep separate query and update queues with their own low-level
priorities, and give one class *fixed*, preemptive priority over the other:

* **UH** — updates always run first (zero staleness, terrible response
  times under bursts);
* **QH** — queries always run first (best response times, staleness piles
  up).

The paper's configuration is VRD for the query queue and FIFO for the update
queue; the naive FIFO-UH / FIFO-QH policies of Figure 1 are the same
machinery with FCFS queries.  The fixed priority also induces the 2PL-HP
predicate: the favoured class wins every lock conflict.
"""

from __future__ import annotations

import typing

from repro.db.transactions import Query, Transaction, Update

from .base import Scheduler
from .priorities import FCFSPriority, PriorityPolicy, VRDPriority
from .queues import TransactionQueue

HighClass = typing.Literal["query", "update"]


class DualQueueScheduler(Scheduler):
    """Preemptive dual queue with a fixed high-priority class."""

    def __init__(self, high: HighClass,
                 query_policy: PriorityPolicy | None = None,
                 update_policy: PriorityPolicy | None = None,
                 name: str | None = None) -> None:
        super().__init__()
        if high not in ("query", "update"):
            raise ValueError(f"high must be 'query' or 'update', got {high!r}")
        self.high: HighClass = high
        self._queries = TransactionQueue(
            query_policy if query_policy is not None else VRDPriority(),
            name="queries")
        self._updates = TransactionQueue(
            update_policy if update_policy is not None else FCFSPriority(),
            name="updates")
        if name:
            self.name = name

    def __repr__(self) -> str:
        return (f"<{type(self).__name__} {self.name} high={self.high} "
                f"q={self._queries.approximate_len()} "
                f"u={self._updates.approximate_len()}>")

    # ------------------------------------------------------------------
    def submit_query(self, query: Query) -> None:
        self._queries.push(query)
        if self.probe is not None:
            self._trace_depths()

    def submit_update(self, update: Update) -> None:
        self._updates.push(update)
        if self.probe is not None:
            self._trace_depths()

    def next_transaction(self, now: float) -> Transaction | None:
        first, second = ((self._updates, self._queries)
                         if self.high == "update"
                         else (self._queries, self._updates))
        txn = first.pop()
        if txn is None:
            txn = second.pop()
        if txn is not None and self.probe is not None:
            self._trace_depths()
        return txn

    def preempts(self, running: Transaction, arrival: Transaction) -> bool:
        """A high-class arrival kicks a low-class transaction off the CPU."""
        if self.high == "update":
            return arrival.is_update and running.is_query
        return arrival.is_query and running.is_update

    def has_lock_priority(self, requester: Transaction,
                          holder: Transaction) -> bool:
        """Fixed class priority; within a class the scheduled txn wins."""
        if requester.is_update and holder.is_query:
            return self.high == "update"
        if requester.is_query and holder.is_update:
            return self.high == "query"
        return True

    # ------------------------------------------------------------------
    def pending_queries(self) -> int:
        return len(self._queries)

    def pending_updates(self) -> int:
        return len(self._updates)


def make_uh() -> DualQueueScheduler:
    """UH: updates high, VRD queries (§3.2)."""
    return DualQueueScheduler("update", VRDPriority(), FCFSPriority(),
                              name="UH")


def make_qh() -> DualQueueScheduler:
    """QH: queries high, VRD queries (§3.2)."""
    return DualQueueScheduler("query", VRDPriority(), FCFSPriority(),
                              name="QH")


def make_fifo_uh() -> DualQueueScheduler:
    """FIFO-UH: the naive Figure 1 variant (FCFS queries, updates high)."""
    return DualQueueScheduler("update", FCFSPriority(), FCFSPriority(),
                              name="FIFO-UH")


def make_fifo_qh() -> DualQueueScheduler:
    """FIFO-QH: the naive Figure 1 variant (FCFS queries, queries high)."""
    return DualQueueScheduler("query", FCFSPriority(), FCFSPriority(),
                              name="FIFO-QH")
