"""Query/update scheduling policies: FIFO, UH, QH, the naive Figure 1
variants, and QUTS."""

import typing

from .base import Scheduler, SchedulerFactory
from .core import DESClock, SchedulerClock, SchedulerCore
from .dual import (DualQueueScheduler, make_fifo_qh, make_fifo_uh, make_qh,
                   make_uh)
from .fifo import FIFOScheduler
from .inheritance import (InheritanceQUTSScheduler, InheritedQoDPriority,
                          InterestTable)
from .priorities import (PRIORITY_POLICIES, EDFPriority, FCFSPriority,
                         PriorityPolicy, ProfitRatePriority, VRDPriority,
                         make_priority)
from .queues import TransactionQueue
from .quts import (DEFAULT_ALPHA, DEFAULT_OMEGA_MS, DEFAULT_TAU_MS,
                   QUTSScheduler, optimal_rho)

#: Factories for the four policies compared throughout the evaluation.
STANDARD_SCHEDULERS: dict[str, SchedulerFactory] = {
    "FIFO": FIFOScheduler,
    "UH": make_uh,
    "QH": make_qh,
    "QUTS": QUTSScheduler,
}


def make_scheduler(name: str, **kwargs: typing.Any) -> Scheduler:
    """Build a scheduler by name ("FIFO", "UH", "QH", "QUTS", "FIFO-UH",
    "FIFO-QH"); QUTS accepts its keyword parameters (tau, omega, alpha...)."""
    if name == "QUTS":
        return QUTSScheduler(**kwargs)
    if name == "QUTS-inherit":
        return InheritanceQUTSScheduler(**kwargs)
    if kwargs:
        raise ValueError(f"{name} takes no parameters, got {kwargs!r}")
    extra: dict[str, SchedulerFactory] = {
        "FIFO-UH": make_fifo_uh,
        "FIFO-QH": make_fifo_qh,
        "QUTS-inherit": InheritanceQUTSScheduler,
    }
    factory = STANDARD_SCHEDULERS.get(name) or extra.get(name)
    if factory is None:
        raise KeyError(f"unknown scheduler {name!r}; choose from "
                       f"{sorted(STANDARD_SCHEDULERS) + sorted(extra)}")
    return factory()


__all__ = [
    "DEFAULT_ALPHA",
    "DEFAULT_OMEGA_MS",
    "DEFAULT_TAU_MS",
    "DESClock",
    "DualQueueScheduler",
    "EDFPriority",
    "FCFSPriority",
    "FIFOScheduler",
    "InheritanceQUTSScheduler",
    "InheritedQoDPriority",
    "InterestTable",
    "PRIORITY_POLICIES",
    "PriorityPolicy",
    "ProfitRatePriority",
    "QUTSScheduler",
    "STANDARD_SCHEDULERS",
    "Scheduler",
    "SchedulerClock",
    "SchedulerCore",
    "SchedulerFactory",
    "TransactionQueue",
    "VRDPriority",
    "make_fifo_qh",
    "make_fifo_uh",
    "make_priority",
    "make_qh",
    "make_scheduler",
    "make_uh",
    "optimal_rho",
]
