"""FIFO: the single combined queue baseline (§3.1).

Queries and updates share one queue ordered by arrival time; the policy is
non-preemptive, so the only scheduling "decision" is popping the head.  FIFO
ignores QC information entirely — the paper's point is that it therefore
performs poorly on QoS profit, while its random interleaving keeps QoD
profit "fair".
"""

from __future__ import annotations

from repro.db.transactions import Query, Transaction, Update

from .base import Scheduler
from .priorities import FCFSPriority
from .queues import TransactionQueue


class FIFOScheduler(Scheduler):
    """Single non-preemptive FIFO queue over queries and updates."""

    name = "FIFO"

    def __init__(self) -> None:
        super().__init__()
        self._queue = TransactionQueue(FCFSPriority(), name="combined")

    def submit_query(self, query: Query) -> None:
        self._queue.push(query)
        if self.probe is not None:
            self._trace_depths()

    def submit_update(self, update: Update) -> None:
        self._queue.push(update)
        if self.probe is not None:
            self._trace_depths()

    def next_transaction(self, now: float) -> Transaction | None:
        txn = self._queue.pop()
        if txn is not None and self.probe is not None:
            self._trace_depths()
        return txn

    # Non-preemptive: `preempts` stays False, `quantum` stays infinite.

    def pending_queries(self) -> int:
        return self._queue.live_queries

    def pending_updates(self) -> int:
        return self._queue.live_updates
