"""Low-level priority policies: how one queue orders its transactions.

The two-level design of QUTS (§4) deliberately leaves the *low level* open:
"QUTS can utilize any priority scheme that considers both time and profit
constraints for queries".  The paper's experiments use **VRD** (Value over
Relative Deadline, Haritsa et al.) for queries and FIFO for updates; this
module also provides EDF and profit-rate orderings to demonstrate the
pluggability claim (exercised by the ablation benchmarks).

A policy maps a transaction to a sort *key*; smaller keys run first.
"""

from __future__ import annotations

from repro.db.transactions import Query, Transaction


class PriorityPolicy:
    """Base class for queue-ordering policies."""

    name: str = "base"

    def key(self, txn: Transaction) -> float:
        """Sort key: lower runs first."""
        raise NotImplementedError


class FCFSPriority(PriorityPolicy):
    """First-come-first-served: order by arrival time."""

    name = "fcfs"

    def key(self, txn: Transaction) -> float:
        return txn.arrival_time


class VRDPriority(PriorityPolicy):
    """Value over Relative Deadline (§3.2): highest ``Vmax / rtmax`` first.

    With the QC framework the value of a query is its total maximal profit
    ``qosmax + qodmax`` and its relative deadline is ``rtmax``.  Updates do
    not carry QCs; they fall back to FCFS (the paper schedules updates FIFO
    everywhere).
    """

    name = "vrd"

    def key(self, txn: Transaction) -> float:
        if isinstance(txn, Query):
            rtmax = txn.qc.rt_max
            if rtmax <= 0 or rtmax == float("inf"):
                # No meaningful deadline.  Deadline-carrying queries all
                # have keys <= 0 (``-Vmax/rtmax``), so map into (0, 1]:
                # behind *every* deadline-carrying query, and ordered by
                # value alone among the deadline-free (higher value =
                # smaller key = first).
                return 1.0 / (1.0 + txn.qc.total_max)
            return -(txn.qc.total_max / rtmax)
        return txn.arrival_time


class EDFPriority(PriorityPolicy):
    """Earliest (absolute QoS) Deadline First — a plug-in alternative."""

    name = "edf"

    def key(self, txn: Transaction) -> float:
        if isinstance(txn, Query):
            return txn.arrival_time + txn.qc.rt_max
        return txn.arrival_time


class ProfitRatePriority(PriorityPolicy):
    """Highest profit per unit of service time first (greedy knapsack)."""

    name = "profit-rate"

    def key(self, txn: Transaction) -> float:
        if isinstance(txn, Query):
            return -(txn.qc.total_max / txn.exec_time)
        return txn.arrival_time


#: Registry for CLI / config lookup.
PRIORITY_POLICIES: dict[str, type[PriorityPolicy]] = {
    "fcfs": FCFSPriority,
    "vrd": VRDPriority,
    "edf": EDFPriority,
    "profit-rate": ProfitRatePriority,
}


def make_priority(name: str) -> PriorityPolicy:
    """Instantiate a policy by registry name (raises KeyError if unknown)."""
    try:
        cls = PRIORITY_POLICIES[name]
    except KeyError:
        raise KeyError(
            f"unknown priority policy {name!r}; "
            f"choose from {sorted(PRIORITY_POLICIES)}") from None
    return cls()
