"""Transaction queues with lazy invalidation.

Scheduling queues must tolerate transactions dying *while queued*: an update
is superseded by a newer arrival (register-table invalidation), a query hits
its lifetime deadline.  :class:`TransactionQueue` is a binary heap with lazy
deletion — dead entries are skipped at pop time — plus membership tracking
so a transaction is never queued twice.
"""

from __future__ import annotations

import heapq
import itertools
import typing

from repro.db.transactions import Transaction

from .priorities import PriorityPolicy


class TransactionQueue:
    """A priority queue over transactions, ordered by a priority policy."""

    def __init__(self, policy: PriorityPolicy, name: str = "") -> None:
        self.policy = policy
        self.name = name
        self._heap: list[tuple[float, int, Transaction]] = []
        self._members: set[int] = set()
        self._ties = itertools.count()

    def __len__(self) -> int:
        """Number of *live* queued transactions (O(n): skips dead entries).

        Use :meth:`approximate_len` on hot paths; exact length is for tests
        and reports.
        """
        return sum(1 for __, __, txn in self._heap
                   if txn.alive and txn.txn_id in self._members)

    def __repr__(self) -> str:
        return (f"<TransactionQueue {self.name!r} policy={self.policy.name} "
                f"entries={len(self._heap)}>")

    def approximate_len(self) -> int:
        """Heap size including dead entries (O(1))."""
        return len(self._heap)

    def push(self, txn: Transaction) -> None:
        """Enqueue ``txn`` unless it is already queued or no longer alive."""
        if not txn.alive or txn.txn_id in self._members:
            return
        key = self.policy.key(txn)
        heapq.heappush(self._heap, (key, next(self._ties), txn))
        self._members.add(txn.txn_id)

    def pop(self) -> Transaction | None:
        """Dequeue the highest-priority live transaction (None if empty)."""
        while self._heap:
            __, __, txn = heapq.heappop(self._heap)
            if txn.txn_id not in self._members:
                continue
            self._members.discard(txn.txn_id)
            if txn.alive:
                return txn
        return None

    def peek(self) -> Transaction | None:
        """The transaction :meth:`pop` would return, without removing it."""
        while self._heap:
            __, __, txn = self._heap[0]
            if txn.txn_id in self._members and txn.alive:
                return txn
            heapq.heappop(self._heap)
            self._members.discard(txn.txn_id)
        return None

    def discard(self, txn: Transaction) -> None:
        """Remove ``txn`` from the queue if present (lazy: entry is skipped
        later)."""
        self._members.discard(txn.txn_id)

    def is_empty(self) -> bool:
        return self.peek() is None

    def drain(self) -> typing.Iterator[Transaction]:
        """Pop everything (used at simulation end to account leftovers)."""
        while True:
            txn = self.pop()
            if txn is None:
                return
            yield txn
