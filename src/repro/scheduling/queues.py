"""Transaction queues with lazy invalidation and exact O(1) live counts.

Scheduling queues must tolerate transactions dying *while queued*: an update
is superseded by a newer arrival (register-table invalidation), a query hits
its lifetime deadline.  :class:`TransactionQueue` is a binary heap with lazy
deletion — dead entries are skipped at pop time — plus membership tracking
so a transaction is never queued twice.

Liveness accounting is unified around one invariant: **membership implies
liveness**.  Each queued transaction carries a back reference to its queue,
and the transaction's status setter reports the moment it leaves the live
set (see :class:`repro.db.transactions.Transaction`), so ``discard``,
``pop``, and in-queue death all retire membership at the same place.  That
makes ``len(queue)`` — and the per-class ``live_queries`` /
``live_updates`` counts the schedulers' ``pending_*`` introspection and the
invariant monitor hit on every sample — an exact O(1) read instead of the
former O(n) heap scan.

Heap entries stranded by discard/death are skipped lazily at pop time; when
they outnumber the live entries the heap is compacted in one O(n) pass, so
heap size stays within a constant factor of the live population.
"""

from __future__ import annotations

import itertools
import typing
from heapq import heapify, heappop, heappush

from repro.db.transactions import Transaction

from .priorities import PriorityPolicy

#: Compaction triggers only for heaps at least this large (small heaps are
#: cheap to scan and compacting them would thrash).
COMPACT_MIN_ENTRIES = 64
#: ... and only when dead entries outnumber live ones by this factor.
COMPACT_DEAD_FACTOR = 2


class TransactionQueue:
    """A priority queue over transactions, ordered by a priority policy."""

    def __init__(self, policy: PriorityPolicy, name: str = "") -> None:
        self.policy = policy
        self.name = name
        self._heap: list[tuple[float, int, Transaction]] = []
        self._members: set[int] = set()
        self._ties = itertools.count()
        #: Exact number of live queued queries / updates (O(1) reads).
        self.live_queries = 0
        self.live_updates = 0

    def __len__(self) -> int:
        """Number of live queued transactions (exact, O(1))."""
        return self.live_queries + self.live_updates

    def __repr__(self) -> str:
        return (f"<TransactionQueue {self.name!r} policy={self.policy.name} "
                f"live={len(self)} entries={len(self._heap)}>")

    def approximate_len(self) -> int:
        """Heap size including dead/stale entries (O(1))."""
        return len(self._heap)

    def push(self, txn: Transaction) -> None:
        """Enqueue ``txn`` unless it is already queued or no longer alive."""
        if not txn.alive or txn.txn_id in self._members:
            return
        key = self.policy.key(txn)
        heappush(self._heap, (key, next(self._ties), txn))
        self._members.add(txn.txn_id)
        txn._queue = self
        if txn.is_query:
            self.live_queries += 1
        else:
            self.live_updates += 1

    def pop(self) -> Transaction | None:
        """Dequeue the highest-priority live transaction (None if empty)."""
        heap = self._heap
        members = self._members
        while heap:
            __, __, txn = heappop(heap)
            if txn.txn_id not in members:
                continue
            self._retire(txn)
            if txn.alive:
                return txn
        return None

    def peek(self) -> Transaction | None:
        """The transaction :meth:`pop` would return, without removing it."""
        heap = self._heap
        members = self._members
        while heap:
            __, __, txn = heap[0]
            if txn.txn_id in members and txn.alive:
                return txn
            heappop(heap)
            if txn.txn_id in members:
                self._retire(txn)
        return None

    def discard(self, txn: Transaction) -> None:
        """Remove ``txn`` from the queue if present (lazy: the heap entry
        is skipped later, or swept by compaction)."""
        if txn.txn_id in self._members:
            self._retire(txn)
            self._maybe_compact()

    def _note_death(self, txn: Transaction) -> None:
        """Status-setter hook: a queued transaction just left the live
        set.  Retire its membership immediately so live counts stay exact
        (its heap entry is reclaimed lazily)."""
        if txn.txn_id in self._members:
            self._retire(txn)
            self._maybe_compact()

    def _retire(self, txn: Transaction) -> None:
        """Drop ``txn`` from membership and the live counters."""
        self._members.discard(txn.txn_id)
        if txn._queue is self:
            txn._queue = None
        if txn.is_query:
            self.live_queries -= 1
        else:
            self.live_updates -= 1

    def _maybe_compact(self) -> None:
        """Rebuild the heap once dead entries dominate (amortised O(1)).

        Entries keep their (key, tie) pairs, so compaction never perturbs
        the pop order — it only sheds the lazy-deletion backlog that
        ``discard`` and in-queue deaths leave behind.
        """
        n = len(self._heap)
        live = len(self._members)
        if (n >= COMPACT_MIN_ENTRIES
                and n - live > COMPACT_DEAD_FACTOR * live):
            members = self._members
            self._heap = [entry for entry in self._heap
                          if entry[2].txn_id in members]
            heapify(self._heap)

    def is_empty(self) -> bool:
        return self.peek() is None

    def drain(self) -> typing.Iterator[Transaction]:
        """Pop everything (used at simulation end to account leftovers)."""
        while True:
            txn = self.pop()
            if txn is None:
                return
            yield txn
