"""Update priority via inherited QoD profit (extension of §3.1).

The paper's "Update Priority" discussion: *"Suppose we let updates inherit
the QoD functions associated with the corresponding queries, then the
update priority should consider both dimensions (staleness constraints and
profit) of the QoD functions."*  The paper then schedules updates FIFO
everywhere ("the priority of updates can hardly affect the queries'
performance with separate priority queues"); this module implements the
inheritance idea so that claim can be tested (see the low-level ablation
benchmark).

Mechanics:

* an :class:`InterestTable` tracks, per data item, the total ``qodmax`` of
  the *live* queries that read it;
* :class:`InheritedQoDPriority` orders the update queue by the interest of
  the updated item (most-wanted item first; FIFO tie-break);
* :class:`InheritanceQUTSScheduler` is QUTS with that update policy wired
  to the query lifecycle (interest registered at submit, retired at
  commit/drop via the server's ``notify_query_finished`` hook).

A queue entry's priority is computed when it is pushed; interest that
changes while an update waits takes effect the next time the update is
(re)queued.  This is the standard lazy-priority trade-off and is
documented behaviour, not a bug.
"""

from __future__ import annotations

import typing

from repro.db.transactions import Query, Transaction, Update

from .priorities import PriorityPolicy
from .quts import QUTSScheduler


class InterestTable:
    """Total outstanding ``qodmax`` per data item, over live queries."""

    def __init__(self) -> None:
        self._interest: dict[str, float] = {}

    def __repr__(self) -> str:
        return f"<InterestTable items={len(self._interest)}>"

    def register(self, query: Query) -> None:
        """A query arrived: its QoD value accrues to every item it reads."""
        for key in query.items:
            self._interest[key] = (self._interest.get(key, 0.0)
                                   + query.qc.qod_max)

    def unregister(self, query: Query) -> None:
        """The query left the system (commit or drop)."""
        for key in query.items:
            remaining = self._interest.get(key, 0.0) - query.qc.qod_max
            if remaining <= 1e-12:
                self._interest.pop(key, None)
            else:
                self._interest[key] = remaining

    def value(self, key: str) -> float:
        """Outstanding QoD profit riding on item ``key``."""
        return self._interest.get(key, 0.0)

    def tracked_items(self) -> int:
        return len(self._interest)


class InheritedQoDPriority(PriorityPolicy):
    """Updates ordered by the QoD profit waiting on their item."""

    name = "inherited-qod"

    def __init__(self, interest: InterestTable) -> None:
        self.interest = interest

    def key(self, txn: Transaction) -> float:
        if isinstance(txn, Update):
            # Most-wanted item first; FIFO among equally wanted ones via
            # the queue's insertion tie-break.
            return -self.interest.value(txn.item)
        return txn.arrival_time


class InheritanceQUTSScheduler(QUTSScheduler):
    """QUTS whose update queue inherits QoD profit from waiting queries."""

    name = "QUTS-inherit"

    def __init__(self, **quts_kwargs: typing.Any) -> None:
        interest = InterestTable()
        super().__init__(update_policy=InheritedQoDPriority(interest),
                         **quts_kwargs)
        self.interest = interest

    def submit_query(self, query: Query) -> None:
        self.interest.register(query)
        super().submit_query(query)

    def notify_query_finished(self, query: Query) -> None:
        self.interest.unregister(query)
