"""Factories that sample Quality Contracts for whole workloads.

The paper's experiments attach a randomly drawn QC to every query:

* §5.1.1 (Figure 6): ``qosmax, qodmax ~ U($10, $50)``,
  ``rtmax ~ U(50 ms, 100 ms)``, ``uumax = 1``;
* §5.1.2 (Figures 7/8, Table 4): nine mixes where ``QODmax%`` sweeps
  0.1 … 0.9 — e.g. at 0.3, ``qodmax ~ U($30, $39)`` and
  ``qosmax ~ U($70, $79)``;
* §5.2 (Figure 9): the qosmax:qodmax ratio flips between 1:5 and 5:1 across
  four 75 s intervals.

:class:`QCFactory` captures one static recipe; :class:`PhasedQCFactory`
switches recipes over simulated time for the adaptability experiment.
"""

from __future__ import annotations

import typing

from repro.sim.rng import RandomStream

from .contracts import (DEFAULT_LIFETIME_MS, CompositionMode, QualityContract)

Shape = typing.Literal["step", "linear"]


class QCFactory:
    """Samples QCs from uniform ranges over the four QC parameters."""

    def __init__(self,
                 qosmax_range: tuple[float, float],
                 qodmax_range: tuple[float, float],
                 rtmax_range: tuple[float, float] = (50.0, 100.0),
                 uumax: float = 1.0,
                 shape: Shape = "step",
                 mode: CompositionMode = CompositionMode.QOS_INDEPENDENT,
                 lifetime: float = DEFAULT_LIFETIME_MS) -> None:
        for name, (low, high) in (("qosmax", qosmax_range),
                                  ("qodmax", qodmax_range),
                                  ("rtmax", rtmax_range)):
            if low < 0 or high < low:
                raise ValueError(f"invalid {name} range ({low}, {high})")
        if shape not in ("step", "linear"):
            raise ValueError(f"unknown QC shape {shape!r}")
        self.qosmax_range = qosmax_range
        self.qodmax_range = qodmax_range
        self.rtmax_range = rtmax_range
        self.uumax = uumax
        self.shape: Shape = shape
        self.mode = mode
        self.lifetime = lifetime

    def __repr__(self) -> str:
        return (f"QCFactory({self.shape}, qosmax~U{self.qosmax_range}, "
                f"qodmax~U{self.qodmax_range}, rtmax~U{self.rtmax_range}, "
                f"uumax={self.uumax})")

    def sample(self, rng: RandomStream, now: float = 0.0) -> QualityContract:
        """Draw one contract.  ``now`` is ignored by static factories."""
        qosmax = rng.uniform(*self.qosmax_range)
        qodmax = rng.uniform(*self.qodmax_range)
        rtmax = rng.uniform(*self.rtmax_range)
        build = (QualityContract.step if self.shape == "step"
                 else QualityContract.linear)
        return build(qosmax, rtmax, qodmax, self.uumax,
                     mode=self.mode, lifetime=self.lifetime)

    # ------------------------------------------------------------------
    # The paper's named setups
    # ------------------------------------------------------------------
    @classmethod
    def balanced(cls, shape: Shape = "step",
                 lifetime: float = DEFAULT_LIFETIME_MS) -> "QCFactory":
        """§5.1.1 setup: QOSmax% = QODmax% = 0.5 (Figure 6)."""
        return cls(qosmax_range=(10.0, 50.0), qodmax_range=(10.0, 50.0),
                   rtmax_range=(50.0, 100.0), uumax=1.0, shape=shape,
                   lifetime=lifetime)

    @classmethod
    def spectrum_point(cls, qodmax_percent: float, shape: Shape = "step",
                       lifetime: float = DEFAULT_LIFETIME_MS) -> "QCFactory":
        """One column of Table 4: ``QODmax% ∈ {0.1, ..., 0.9}``.

        At ``QODmax% = d`` the paper draws ``qodmax ~ U($10d0, $10d9)`` and
        ``qosmax ~ U($10(10-d)0 ... )`` — i.e. decade ranges whose midpoints
        give exactly the requested split.
        """
        decile = round(qodmax_percent * 10)
        if not 1 <= decile <= 9:
            raise ValueError(
                f"qodmax_percent must be in [0.1, 0.9], got {qodmax_percent}")
        qod_low = 10.0 * decile
        qos_low = 10.0 * (10 - decile)
        return cls(qosmax_range=(qos_low, qos_low + 9.0),
                   qodmax_range=(qod_low, qod_low + 9.0),
                   rtmax_range=(50.0, 100.0), uumax=1.0, shape=shape,
                   lifetime=lifetime)

    @classmethod
    def ratio(cls, qos_to_qod: float, base: float = 20.0,
              shape: Shape = "step",
              lifetime: float = DEFAULT_LIFETIME_MS) -> "QCFactory":
        """A qosmax:qodmax = ``qos_to_qod`` : 1 recipe (Figure 9 phases)."""
        if qos_to_qod <= 0:
            raise ValueError("ratio must be positive")
        if qos_to_qod >= 1.0:
            qos_low, qod_low = base * qos_to_qod, base
        else:
            qos_low, qod_low = base, base / qos_to_qod
        return cls(qosmax_range=(qos_low, qos_low * 1.2),
                   qodmax_range=(qod_low, qod_low * 1.2),
                   rtmax_range=(50.0, 100.0), uumax=1.0, shape=shape,
                   lifetime=lifetime)


class PhasedQCFactory:
    """Time-phased QC sampling for the adaptability experiment (§5.2).

    ``phases`` is a list of ``(start_time_ms, factory)``; a sample at time
    ``t`` uses the factory of the last phase whose start is ``<= t``.
    """

    def __init__(self,
                 phases: typing.Sequence[tuple[float, QCFactory]]) -> None:
        if not phases:
            raise ValueError("need at least one phase")
        starts = [start for start, _ in phases]
        if any(b <= a for a, b in zip(starts, starts[1:])):
            raise ValueError("phase start times must be strictly increasing")
        self.phases = list(phases)

    def __repr__(self) -> str:
        return f"PhasedQCFactory({len(self.phases)} phases)"

    def factory_at(self, now: float) -> QCFactory:
        chosen = self.phases[0][1]
        for start, factory in self.phases:
            if start <= now:
                chosen = factory
            else:
                break
        return chosen

    def sample(self, rng: RandomStream, now: float = 0.0) -> QualityContract:
        return self.factory_at(now).sample(rng, now)

    @classmethod
    def flip_flop(cls, period: float, ratios: typing.Sequence[float],
                  base: float = 20.0, shape: Shape = "step",
                  lifetime: float = DEFAULT_LIFETIME_MS
                  ) -> "PhasedQCFactory":
        """Figure 9's setup: one recipe per interval of length ``period``.

        The paper uses four 75 s intervals with the qosmax:qodmax ratio
        flipping between 1:5 and 5:1, i.e. ``ratios=[0.2, 5, 0.2, 5]``.
        """
        phases = [(i * period, QCFactory.ratio(r, base=base, shape=shape,
                                               lifetime=lifetime))
                  for i, r in enumerate(ratios)]
        return cls(phases)
