"""Quality Contracts: per-query pricing of QoS and QoD (§2.2).

A :class:`QualityContract` bundles one profit function over response time
(QoS) and one over staleness (QoD), plus the composition rule:

* **QoS-independent** (the paper's evaluation mode): QoD profit is earned
  whether or not the QoS deadline was met, but the query must finish within
  a *maximum lifetime* or it is dropped and earns nothing;
* **QoS-dependent**: QoD profit is earned only if QoS profit is positive.

Convenience constructors build the four-parameter step and linear QCs of
Figures 2 and 3 directly from ``(qosmax, rtmax, qodmax, uumax)``.
"""

from __future__ import annotations

import enum

from .functions import (LinearProfit, ProfitFunction, StepProfit, ZeroProfit)

#: Default maximum lifetime for a query, in milliseconds.  The paper does
#: not publish its value; it must be large enough that even the
#: update-favouring baseline (UH, mean response time ~11.6 s in Figure 1)
#: completes most queries, otherwise Figure 8a's near-maximal UH QoD profit
#: would be impossible.  150 s satisfies that while still bounding query
#: residence ("to avoid keeping queries in the system forever").
DEFAULT_LIFETIME_MS = 150_000.0


class CompositionMode(enum.Enum):
    """How QoS and QoD profits combine into the contract's total."""

    QOS_INDEPENDENT = "qos-independent"
    QOS_DEPENDENT = "qos-dependent"


class QualityContract:
    """User preferences for one query: profit over QoS and over QoD."""

    __slots__ = ("qos", "qod", "mode", "lifetime")

    def __init__(self, qos: ProfitFunction, qod: ProfitFunction,
                 mode: CompositionMode = CompositionMode.QOS_INDEPENDENT,
                 lifetime: float = DEFAULT_LIFETIME_MS) -> None:
        if lifetime <= 0:
            raise ValueError(f"lifetime must be positive, got {lifetime}")
        self.qos = qos
        self.qod = qod
        self.mode = mode
        #: Maximum residence time (ms) before the query is dropped.
        self.lifetime = lifetime

    def __repr__(self) -> str:
        return (f"QualityContract(qos={self.qos!r}, qod={self.qod!r}, "
                f"mode={self.mode.value})")

    # ------------------------------------------------------------------
    # Maxima (the denominators of every profit-percentage in the paper)
    # ------------------------------------------------------------------
    @property
    def qos_max(self) -> float:
        """``qosmax``: best attainable QoS profit."""
        return self.qos.max_profit

    @property
    def qod_max(self) -> float:
        """``qodmax``: best attainable QoD profit."""
        return self.qod.max_profit

    @property
    def total_max(self) -> float:
        return self.qos_max + self.qod_max

    @property
    def rt_max(self) -> float:
        """``rtmax``: response time beyond which QoS profit is zero."""
        return self.qos.zero_after

    @property
    def uu_max(self) -> float:
        """``uumax``: staleness beyond which QoD profit is zero."""
        return self.qod.zero_after

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, response_time: float,
                 staleness: float) -> tuple[float, float]:
        """``(qos_profit, qod_profit)`` for a query that committed.

        The lifetime rule is enforced by the server (a query past its
        lifetime never commits), so this only applies the composition mode.
        """
        qos_profit = self.qos.profit(response_time)
        qod_profit = self.qod.profit(staleness)
        if (self.mode is CompositionMode.QOS_DEPENDENT
                and qos_profit <= 0.0):
            qod_profit = 0.0
        return qos_profit, qod_profit

    def scaled(self, factor: float) -> "QualityContract":
        """A copy whose dollar amounts are ``factor`` times this one's.

        Thresholds (``rtmax``, ``uumax``), composition mode, and lifetime
        are preserved, so deadline-driven schedulers treat the scaled
        contract exactly like the original — only its weight in
        profit-mass-driven policies (QUTS ρ) shrinks.  The shard planner
        uses this to split one contract across fan-out sub-queries.
        """
        from .functions import ScaledProfit
        return QualityContract(ScaledProfit(self.qos, factor),
                               ScaledProfit(self.qod, factor),
                               mode=self.mode, lifetime=self.lifetime)

    # ------------------------------------------------------------------
    # The paper's two canonical shapes
    # ------------------------------------------------------------------
    @classmethod
    def step(cls, qosmax: float, rtmax: float, qodmax: float, uumax: float,
             mode: CompositionMode = CompositionMode.QOS_INDEPENDENT,
             lifetime: float = DEFAULT_LIFETIME_MS) -> "QualityContract":
        """The four-parameter step QC of Figure 2.

        QoS pays ``qosmax`` while ``rt <= rtmax``; QoD pays ``qodmax`` while
        ``staleness < uumax`` (so ``uumax=1`` requires zero missed updates).
        """
        qos = (StepProfit(qosmax, rtmax, inclusive=True)
               if qosmax > 0 else ZeroProfit())
        qod = (StepProfit(qodmax, uumax, inclusive=False)
               if qodmax > 0 else ZeroProfit())
        return cls(qos, qod, mode=mode, lifetime=lifetime)

    @classmethod
    def linear(cls, qosmax: float, rtmax: float, qodmax: float, uumax: float,
               mode: CompositionMode = CompositionMode.QOS_INDEPENDENT,
               lifetime: float = DEFAULT_LIFETIME_MS) -> "QualityContract":
        """The four-parameter linear QC of Figure 3."""
        qos = (LinearProfit(qosmax, rtmax) if qosmax > 0 else ZeroProfit())
        qod = (LinearProfit(qodmax, uumax) if qodmax > 0 else ZeroProfit())
        return cls(qos, qod, mode=mode, lifetime=lifetime)

    @classmethod
    def free(cls, lifetime: float = DEFAULT_LIFETIME_MS) -> "QualityContract":
        """A contract that pays nothing (used by non-QC experiments like
        Figure 1, where only raw response time and staleness matter)."""
        return cls(ZeroProfit(), ZeroProfit(), lifetime=lifetime)
