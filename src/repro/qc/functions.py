"""Profit functions for Quality Contracts.

A QC prices a quality metric (response time for QoS, staleness for QoD) with
a **non-increasing** function from the metric's value to dollars of profit
(§2.2).  The paper instantiates two shapes, both reproduced here, plus a
general piecewise-linear form used by the extension examples:

* :class:`StepProfit` — full profit up to a threshold, zero after
  (Figure 2);
* :class:`LinearProfit` — profit decays linearly from the maximum at metric
  value 0 to zero at the threshold (Figure 3);
* :class:`PiecewiseLinearProfit` — any non-increasing polyline.

Conventions chosen where the paper's figures leave slack (documented in
DESIGN.md):

* step QoS pays while ``rt <= rtmax`` (deadline inclusive);
* step QoD pays while ``staleness < uumax`` — §5.1.1 states that with
  ``uumax = 1`` "QoD profit is gained only when no update is missed", so the
  threshold is exclusive.  Both behaviours are selectable via ``inclusive``.
"""

from __future__ import annotations

import typing


class ProfitFunction:
    """A non-increasing map from a quality-metric value to profit."""

    def profit(self, metric_value: float) -> float:
        """Profit earned when the metric comes out at ``metric_value``."""
        raise NotImplementedError

    @property
    def max_profit(self) -> float:
        """The largest attainable profit (the profit at metric value 0)."""
        raise NotImplementedError

    @property
    def zero_after(self) -> float:
        """Metric value beyond which no profit is attainable (may be inf)."""
        raise NotImplementedError

    def __call__(self, metric_value: float) -> float:
        return self.profit(metric_value)


class ZeroProfit(ProfitFunction):
    """A contract dimension the user does not care about (pays nothing)."""

    def profit(self, metric_value: float) -> float:
        return 0.0

    @property
    def max_profit(self) -> float:
        return 0.0

    @property
    def zero_after(self) -> float:
        return 0.0

    def __repr__(self) -> str:
        return "ZeroProfit()"


class StepProfit(ProfitFunction):
    """Full profit up to a threshold, nothing after (Figure 2).

    ``inclusive=True`` pays at ``metric_value == threshold`` (used for QoS:
    committing exactly at the deadline still pays); ``inclusive=False`` does
    not (used for QoD with ``uumax``: "no update missed").
    """

    def __init__(self, amount: float, threshold: float,
                 inclusive: bool = True) -> None:
        if amount < 0:
            raise ValueError(f"profit amount must be >= 0, got {amount}")
        if threshold < 0:
            raise ValueError(f"threshold must be >= 0, got {threshold}")
        self.amount = amount
        self.threshold = threshold
        self.inclusive = inclusive

    def __repr__(self) -> str:
        op = "<=" if self.inclusive else "<"
        return f"StepProfit(${self.amount} while metric {op} {self.threshold})"

    def profit(self, metric_value: float) -> float:
        if self.inclusive:
            return self.amount if metric_value <= self.threshold else 0.0
        return self.amount if metric_value < self.threshold else 0.0

    @property
    def max_profit(self) -> float:
        return self.amount

    @property
    def zero_after(self) -> float:
        return self.threshold


class LinearProfit(ProfitFunction):
    """Profit decaying linearly from ``amount`` at 0 to zero at ``threshold``
    (Figure 3)."""

    def __init__(self, amount: float, threshold: float) -> None:
        if amount < 0:
            raise ValueError(f"profit amount must be >= 0, got {amount}")
        if threshold <= 0:
            raise ValueError(f"threshold must be > 0, got {threshold}")
        self.amount = amount
        self.threshold = threshold

    def __repr__(self) -> str:
        return f"LinearProfit(${self.amount} -> 0 at {self.threshold})"

    def profit(self, metric_value: float) -> float:
        if metric_value >= self.threshold:
            return 0.0
        if metric_value <= 0:
            return self.amount
        return self.amount * (1.0 - metric_value / self.threshold)

    @property
    def max_profit(self) -> float:
        return self.amount

    @property
    def zero_after(self) -> float:
        return self.threshold


class ScaledProfit(ProfitFunction):
    """``factor`` times another profit function (same shape, scaled $).

    Used by the shard planner to hand each sub-query a proportional slice
    of the parent contract: the slice keeps the parent's deadlines (the
    thresholds are untouched) so priority-based schedulers order the
    sub-query like the parent, while the dollar amounts stay bounded by
    the parent's.  ``factor = 0`` degenerates to :class:`ZeroProfit`
    semantics — construct that instead where possible.
    """

    def __init__(self, base: ProfitFunction, factor: float) -> None:
        if not 0.0 <= factor <= 1.0:
            raise ValueError(f"factor must be in [0, 1], got {factor}")
        self.base = base
        self.factor = factor

    def __repr__(self) -> str:
        return f"ScaledProfit({self.factor:g} * {self.base!r})"

    def profit(self, metric_value: float) -> float:
        return self.factor * self.base.profit(metric_value)

    @property
    def max_profit(self) -> float:
        return self.factor * self.base.max_profit

    @property
    def zero_after(self) -> float:
        return self.base.zero_after


class PiecewiseLinearProfit(ProfitFunction):
    """An arbitrary non-increasing polyline ``[(metric, profit), ...]``.

    The profit is constant at the first point's value before it, linearly
    interpolated between points, and constant at the last point's value
    after it.  Supplied points must be non-increasing in profit — QCs are
    defined as non-increasing functions (§2.2) and this is validated.
    """

    def __init__(self,
                 points: typing.Sequence[tuple[float, float]]) -> None:
        if len(points) < 2:
            raise ValueError("need at least two points")
        xs = [p[0] for p in points]
        ys = [p[1] for p in points]
        if any(b <= a for a, b in zip(xs, xs[1:])):
            raise ValueError("metric values must be strictly increasing")
        if any(b > a for a, b in zip(ys, ys[1:])):
            raise ValueError("profit must be non-increasing "
                             "(QC functions are non-increasing)")
        if any(y < 0 for y in ys):
            raise ValueError("profit values must be >= 0")
        self.points = [(float(x), float(y)) for x, y in points]

    def __repr__(self) -> str:
        return f"PiecewiseLinearProfit({self.points!r})"

    def profit(self, metric_value: float) -> float:
        points = self.points
        if metric_value <= points[0][0]:
            return points[0][1]
        if metric_value >= points[-1][0]:
            return points[-1][1]
        for (x0, y0), (x1, y1) in zip(points, points[1:]):
            if x0 <= metric_value <= x1:
                if x1 == x0:
                    return y1
                frac = (metric_value - x0) / (x1 - x0)
                return y0 + frac * (y1 - y0)
        raise AssertionError("unreachable")  # pragma: no cover

    @property
    def max_profit(self) -> float:
        return self.points[0][1]

    @property
    def zero_after(self) -> float:
        for x, y in self.points:
            if y == 0.0:
                return x
        return float("inf")
