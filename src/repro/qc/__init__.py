"""Quality Contracts: the paper's unifying QoS/QoD preference framework."""

from .contracts import (DEFAULT_LIFETIME_MS, CompositionMode, QualityContract)
from .functions import (LinearProfit, PiecewiseLinearProfit, ProfitFunction,
                        StepProfit, ZeroProfit)
from .generator import PhasedQCFactory, QCFactory

__all__ = [
    "CompositionMode",
    "DEFAULT_LIFETIME_MS",
    "LinearProfit",
    "PhasedQCFactory",
    "PiecewiseLinearProfit",
    "ProfitFunction",
    "QCFactory",
    "QualityContract",
    "StepProfit",
    "ZeroProfit",
]
