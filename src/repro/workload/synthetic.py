"""Synthetic Stock.com + NYSE workload generator.

The paper evaluates on proprietary traces (Stock.com user queries and NYSE
trades, 9:30-10:00 am on 2000-04-24).  They are not available, so this
module generates a workload reproducing every *published* characteristic
(see DESIGN.md §2 for the substitution argument):

* Table 3 — 82,129 queries / 496,892 updates over 30 minutes on 4,608
  stocks; query service 5-9 ms; update service 1-5 ms;
* Figure 5(a) — per-second query rate mostly stationary with small
  fluctuations *plus occasional flash-crowd spikes* (the paper's intro:
  "high volumes of user requests, especially during periods of peak load or
  flash crowds"; the plotted trace spikes to ~4× its base rate);
* Figure 5(b) — per-second update rate with a clear downward trend (the
  open-of-trading surge decaying over the half hour);
* Figure 5(c) — Zipf-skewed per-stock popularity, with query- and
  update-popularity drawn independently so most stocks receive more updates
  than queries (points below the diagonal);
* trade clustering — real trades on hot stocks arrive in sub-second bursts
  ("a tsunami of stock trades because of breaking news"); bursts are what
  make the update register table effective even under update-eager
  policies, which is required for UH's finite (~11.6 s) mean response time
  in Figure 1 despite a raw offered load above 1.

Arrivals are a piecewise-nonhomogeneous Poisson process: a per-second rate
profile is evaluated, a Poisson count is drawn per second, and arrivals are
scattered uniformly within the second.  With the default parameters the raw
offered CPU load is ≈ 1.0 (queries ≈ 0.32, updates ≈ 0.72), i.e. the
server rides the edge of saturation — and beyond it during the open-of-
trading surge and query flash crowds — unless scheduling lets the update
register table shed superseded work;
matching the paper's premise that "it may be extremely hard to apply all
updates on time ... and also get fast response times".
"""

from __future__ import annotations

import dataclasses
import math
import typing

from repro.sim.rng import RandomStream, StreamRegistry

from .stocks import PriceWalk, StockUniverse
from .traces import QueryRecord, Trace, UpdateRecord

#: Published workload constants (Table 3).
PAPER_DURATION_MS = 30 * 60 * 1000.0
PAPER_N_QUERIES = 82_129
PAPER_N_UPDATES = 496_892
PAPER_N_STOCKS = 4_608
PAPER_QUERY_EXEC_RANGE_MS = (5.0, 9.0)
PAPER_UPDATE_EXEC_RANGE_MS = (1.0, 5.0)


@dataclasses.dataclass
class WorkloadSpec:
    """Parameters of the synthetic workload (defaults = the paper's trace).

    ``duration_ms`` scales the trace down for cheap experiments while
    keeping *rates* (and therefore load and contention) identical; the
    published totals correspond to the full 30 minutes.
    """

    duration_ms: float = PAPER_DURATION_MS
    n_stocks: int = PAPER_N_STOCKS
    #: Mean arrival rates per second over the full paper trace.
    query_rate_per_s: float = PAPER_N_QUERIES / (PAPER_DURATION_MS / 1000.0)
    update_rate_per_s: float = PAPER_N_UPDATES / (PAPER_DURATION_MS / 1000.0)
    #: Fractional amplitude of slow sinusoidal drift in the query rate
    #: (Figure 5a: "small changes over time").
    query_rate_wobble: float = 0.15
    #: Flash crowds: expected episodes per (full-trace-equivalent) 5 min,
    #: episode length range (s), and rate multiplier range.  Figure 5a's
    #: excursions are short, sharp spikes (a few seconds at ~3-4x the base
    #: rate); the spikes' extra query mass is part of the published totals,
    #: so the base rate is scaled down by ``1 / (1 + crowd_mass)`` to keep
    #: the trace at ~82k queries.
    crowds_per_5min: float = 6.0
    crowd_duration_s: tuple[float, float] = (2.0, 6.0)
    crowd_multiplier: tuple[float, float] = (3.0, 4.5)
    #: The update rate declines linearly from (1+trend) to (1-trend) times
    #: its mean across the trace (Figure 5b: "downward trend" — the plotted
    #: NYSE rate shows the open-of-trading surge decaying through the
    #: half hour).
    update_rate_trend: float = 0.15
    #: Trade clustering: mean burst size (geometric; 1.0 = no clustering)
    #: and the window (ms) a burst's trades spread over.
    update_burst_mean: float = 2.2
    update_burst_window_ms: float = 800.0
    #: Zipf skew of per-stock popularity.
    query_zipf_theta: float = 0.9
    update_zipf_theta: float = 0.75
    #: Probability that a stock's update-popularity rank equals its
    #: query-popularity rank ("jittery investors" query the stocks that are
    #: trading hard).  The rest are matched at random, preserving Figure
    #: 5(c)'s wide scatter.
    popularity_correlation: float = 0.5
    #: Service-time ranges, milliseconds (Table 3).
    query_exec_range_ms: tuple[float, float] = PAPER_QUERY_EXEC_RANGE_MS
    update_exec_range_ms: tuple[float, float] = PAPER_UPDATE_EXEC_RANGE_MS
    #: Mean update service time within its range.  Table 3 publishes only
    #: the 1-5 ms *range*; a mean at the midpoint (3 ms) would make the
    #: update stream alone consume 0.83 CPUs on average (1.2+ at the open),
    #: under which even the update-eager UH baseline could never show the
    #: finite ~11.6 s mean response time of Figure 1.  A low-skewed mean of
    #: ~2.6 ms (most trades touch one hash bucket; a few cascade) keeps
    #: overload *episodic* — the open-of-trading surge and query flash
    #: crowds — which is the regime all of the paper's numbers describe.
    update_exec_mean_ms: float = 2.6
    #: Distribution of read-set sizes: P(1 item), P(2 items), P(3 items) —
    #: look-ups / moving averages touch one stock, comparisons several.
    read_set_pmf: tuple[float, ...] = (0.70, 0.20, 0.10)

    def __post_init__(self) -> None:
        if self.duration_ms <= 0:
            raise ValueError("duration must be positive")
        if self.n_stocks <= 0:
            raise ValueError("need at least one stock")
        if not math.isclose(sum(self.read_set_pmf), 1.0, rel_tol=1e-9):
            raise ValueError("read_set_pmf must sum to 1")
        if not 0 <= self.query_rate_wobble < 1:
            raise ValueError("query_rate_wobble must be in [0, 1)")
        if not 0 <= self.update_rate_trend < 1:
            raise ValueError("update_rate_trend must be in [0, 1)")
        if self.update_burst_mean < 1.0:
            raise ValueError("update_burst_mean must be >= 1")
        low, high = self.update_exec_range_ms
        if not low < self.update_exec_mean_ms < high:
            raise ValueError(
                f"update_exec_mean_ms must lie strictly inside "
                f"{self.update_exec_range_ms}")
        if not 0.0 <= self.popularity_correlation <= 1.0:
            raise ValueError("popularity_correlation must be in [0, 1]")

    def scaled(self, duration_ms: float) -> "WorkloadSpec":
        """The same workload characteristics over a shorter horizon."""
        return dataclasses.replace(self, duration_ms=duration_ms)

    # ------------------------------------------------------------------
    # Rate profiles (per-second expected arrivals, before flash crowds)
    # ------------------------------------------------------------------
    def base_query_rate_at(self, t_ms: float) -> float:
        """Expected queries/second at ``t_ms``, without crowd episodes.

        Already normalised by :attr:`crowd_mass_factor`, so base + crowds
        integrates to ``query_rate_per_s × duration``.
        """
        phase = 2.0 * math.pi * t_ms / self.duration_ms
        # Two incommensurate slow waves give "small changes over time".
        wobble = (math.sin(3.0 * phase) + math.sin(7.1 * phase + 1.3)) / 2.0
        rate = self.query_rate_per_s * (1.0 + self.query_rate_wobble * wobble)
        return rate / self.crowd_mass_factor

    def update_rate_at(self, t_ms: float) -> float:
        """Expected update *arrivals*/second at ``t_ms`` (declining
        trend)."""
        frac = t_ms / self.duration_ms
        trend = 1.0 + self.update_rate_trend * (1.0 - 2.0 * frac)
        phase = 2.0 * math.pi * t_ms / self.duration_ms
        wobble = 1.0 + 0.10 * math.sin(11.0 * phase + 0.7)
        return self.update_rate_per_s * trend * wobble

    @property
    def crowd_mass_factor(self) -> float:
        """Expected query mass multiplier contributed by flash crowds.

        Base rates are divided by this so the trace's *total* query count
        stays at the published value regardless of crowd configuration.
        """
        mean_duration = sum(self.crowd_duration_s) / 2.0
        mean_extra = sum(self.crowd_multiplier) / 2.0 - 1.0
        mass = self.crowds_per_5min * mean_duration * mean_extra / 300.0
        return 1.0 + mass

    @property
    def offered_load(self) -> float:
        """Approximate raw CPU demand per unit time (>1 means overload
        before invalidation sheds any update work)."""
        q_mean = sum(self.query_exec_range_ms) / 2.0
        return (self.query_rate_per_s * q_mean
                + self.update_rate_per_s * self.update_exec_mean_ms) / 1000.0

    def sample_update_exec(self, rng: RandomStream) -> float:
        """A service time in ``update_exec_range_ms`` with the configured
        mean (Beta(1, b)-shaped within the range)."""
        low, high = self.update_exec_range_ms
        mean_frac = (self.update_exec_mean_ms - low) / (high - low)
        b = 1.0 / mean_frac - 1.0
        return low + (high - low) * rng.betavariate(1.0, b)


@dataclasses.dataclass(frozen=True)
class CrowdEpisode:
    """One query flash crowd: [start, end) with a rate multiplier."""

    start_ms: float
    end_ms: float
    multiplier: float

    def factor_at(self, t_ms: float) -> float:
        return self.multiplier if self.start_ms <= t_ms < self.end_ms else 1.0


class StockWorkloadGenerator:
    """Generates deterministic :class:`Trace` objects from a spec + seed."""

    def __init__(self, spec: WorkloadSpec | None = None,
                 master_seed: int = 0) -> None:
        self.spec = spec or WorkloadSpec()
        self.master_seed = master_seed
        #: Crowd episodes of the last generated trace (for inspection).
        self.crowds: list[CrowdEpisode] = []

    def __repr__(self) -> str:
        return (f"<StockWorkloadGenerator seed={self.master_seed} "
                f"duration={self.spec.duration_ms / 1000:.0f}s "
                f"load={self.spec.offered_load:.2f}>")

    def generate(self, name: str = "stockcom") -> Trace:
        """Build the full trace (queries + updates, time-sorted)."""
        spec = self.spec
        streams = StreamRegistry(self.master_seed).spawn("workload")
        universe = StockUniverse(
            spec.n_stocks, streams.stream("universe"),
            popularity_correlation=spec.popularity_correlation)

        self.crowds = self._draw_crowds(streams.stream("query.crowds"))
        queries = self._generate_queries(universe, streams)
        updates = self._generate_updates(universe, streams)
        return Trace(queries, updates, spec.duration_ms, name=name)

    # ------------------------------------------------------------------
    def _draw_crowds(self, rng: RandomStream) -> list[CrowdEpisode]:
        spec = self.spec
        episodes: list[CrowdEpisode] = []
        expected = spec.crowds_per_5min * spec.duration_ms / 300_000.0
        count = _poisson(rng, expected)
        for __ in range(count):
            duration = rng.uniform(*spec.crowd_duration_s) * 1000.0
            start = rng.uniform(0.0, max(0.0, spec.duration_ms - duration))
            episodes.append(CrowdEpisode(
                start, start + duration,
                rng.uniform(*spec.crowd_multiplier)))
        episodes.sort(key=lambda e: e.start_ms)
        return episodes

    def query_rate_at(self, t_ms: float) -> float:
        """Query rate including the crowds of the last generated trace."""
        factor = 1.0
        for crowd in self.crowds:
            factor = max(factor, crowd.factor_at(t_ms))
        return self.spec.base_query_rate_at(t_ms) * factor

    def _generate_queries(self, universe: StockUniverse,
                          streams: StreamRegistry) -> list[QueryRecord]:
        spec = self.spec
        rate_rng = streams.stream("query.arrivals")
        pick_rng = streams.stream("query.stocks")
        exec_rng = streams.stream("query.exec")
        records: list[QueryRecord] = []
        for second_start in _seconds(spec.duration_ms):
            rate = self.query_rate_at(second_start)
            window = min(1000.0, spec.duration_ms - second_start)
            count = _poisson(rate_rng, rate * window / 1000.0)
            for __ in range(count):
                arrival = second_start + rate_rng.random() * window
                n_items = _draw_pmf(pick_rng, spec.read_set_pmf) + 1
                items = _distinct_stocks(pick_rng, universe, n_items,
                                         spec.query_zipf_theta)
                exec_ms = exec_rng.uniform(*spec.query_exec_range_ms)
                records.append(QueryRecord(arrival, items, exec_ms))
        return records

    def _generate_updates(self, universe: StockUniverse,
                          streams: StreamRegistry) -> list[UpdateRecord]:
        spec = self.spec
        rate_rng = streams.stream("update.arrivals")
        pick_rng = streams.stream("update.stocks")
        exec_rng = streams.stream("update.exec")
        walk = PriceWalk(universe, streams.stream("update.prices"))
        records: list[UpdateRecord] = []
        # Bursts (trade clusters) arrive as a Poisson process at the trade
        # rate divided by the mean burst size; each burst's trades hit the
        # same stock within a short window.
        burst_rate_scale = 1.0 / spec.update_burst_mean
        geo_p = 1.0 / spec.update_burst_mean
        for second_start in _seconds(spec.duration_ms):
            rate = spec.update_rate_at(second_start) * burst_rate_scale
            window = min(1000.0, spec.duration_ms - second_start)
            n_bursts = _poisson(rate_rng, rate * window / 1000.0)
            for __ in range(n_bursts):
                burst_start = second_start + rate_rng.random() * window
                rank = pick_rng.zipf_rank(universe.n_stocks,
                                          spec.update_zipf_theta) - 1
                symbol = universe.stock_for_update_rank(rank)
                burst_size = _geometric(rate_rng, geo_p)
                for trade in range(burst_size):
                    offset = (0.0 if trade == 0 else
                              rate_rng.random() * spec.update_burst_window_ms)
                    arrival = min(burst_start + offset,
                                  spec.duration_ms)
                    exec_ms = spec.sample_update_exec(exec_rng)
                    records.append(UpdateRecord(
                        arrival, symbol, exec_ms,
                        value=walk.next_price(symbol)))
        return records


def paper_trace(master_seed: int = 0,
                duration_ms: float = PAPER_DURATION_MS) -> Trace:
    """The default reproduction workload (optionally time-scaled)."""
    spec = WorkloadSpec().scaled(duration_ms)
    return StockWorkloadGenerator(spec, master_seed).generate()


# ----------------------------------------------------------------------
# Sampling helpers
# ----------------------------------------------------------------------
def _seconds(duration_ms: float) -> typing.Iterator[float]:
    t = 0.0
    while t < duration_ms:
        yield t
        t += 1000.0


def _poisson(rng: RandomStream, mean: float) -> int:
    """Poisson variate via Knuth (small means) / normal approx (large)."""
    if mean <= 0:
        return 0
    if mean > 700.0:
        return max(0, round(rng.gauss(mean, math.sqrt(mean))))
    limit = math.exp(-mean)
    count = 0
    product = rng.random()
    while product > limit:
        count += 1
        product *= rng.random()
    return count


def _geometric(rng: RandomStream, p: float) -> int:
    """Geometric variate on {1, 2, ...} with success probability ``p``."""
    if p >= 1.0:
        return 1
    u = rng.random()
    return 1 + int(math.log(max(u, 1e-300)) / math.log(1.0 - p))


def _draw_pmf(rng: RandomStream,
              pmf: typing.Sequence[float]) -> int:
    u = rng.random()
    acc = 0.0
    for index, p in enumerate(pmf):
        acc += p
        if u <= acc:
            return index
    return len(pmf) - 1


def _distinct_stocks(rng: RandomStream, universe: StockUniverse,
                     n_items: int,
                     theta: float) -> tuple[str, ...]:
    chosen: list[str] = []
    seen: set[str] = set()
    # Cap the rejection loop; with thousands of stocks collisions are rare.
    attempts = 0
    while len(chosen) < n_items and attempts < 20 * n_items:
        attempts += 1
        rank = rng.zipf_rank(universe.n_stocks, theta) - 1
        symbol = universe.stock_for_query_rank(rank)
        if symbol not in seen:
            seen.add(symbol)
            chosen.append(symbol)
    return tuple(chosen)
