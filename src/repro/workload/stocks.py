"""The stock universe: ticker symbols, popularity ranks, and price walks.

The paper's workload indexes everything by NYSE ticker symbol.  We generate
a deterministic universe of synthetic tickers and assign each stock two
popularity ranks — one for queries, one for updates — drawn as independent
permutations.  Independence matches the key Figure 5(c) observation: "many
of the updates occur on the stocks with very few queries" (with ~6× more
updates than queries overall, most per-stock points fall below the
diagonal).
"""

from __future__ import annotations

import string

from repro.sim.rng import RandomStream

_LETTERS = string.ascii_uppercase


def ticker_symbol(index: int) -> str:
    """A deterministic ticker for ``index`` (0 -> "A", 25 -> "Z",
    26 -> "AA", ...), NYSE-style base-26."""
    if index < 0:
        raise ValueError("index must be non-negative")
    chars: list[str] = []
    index += 1  # bijective base-26
    while index:
        index, rem = divmod(index - 1, 26)
        chars.append(_LETTERS[rem])
    return "".join(reversed(chars))


class StockUniverse:
    """``n`` stocks with query/update popularity ranks and initial prices.

    ``popularity_correlation`` is the probability that a rank keeps the
    same stock in both dimensions — 0 gives fully independent popularity,
    1 makes the hottest-queried stock also the hottest-updated one.  The
    paper's trace shows both effects: wide scatter in Figure 5(c), yet
    "jittery investors" chasing the stocks that are trading hard.
    """

    def __init__(self, n_stocks: int, rng: RandomStream,
                 popularity_correlation: float = 0.0) -> None:
        if n_stocks <= 0:
            raise ValueError(f"n_stocks must be positive, got {n_stocks}")
        if not 0.0 <= popularity_correlation <= 1.0:
            raise ValueError("popularity_correlation must be in [0, 1]")
        self.n_stocks = n_stocks
        self.symbols = [ticker_symbol(i) for i in range(n_stocks)]

        # Which stock occupies each popularity rank, per dimension.
        # rank 0 = most popular.
        query_order = list(range(n_stocks))
        rng.shuffle(query_order)
        self._query_rank_to_stock = query_order

        # Update ranks: keep the query-rank stock with probability
        # `popularity_correlation`; permute the remainder among themselves.
        kept = [rng.random() < popularity_correlation
                for __ in range(n_stocks)]
        free_ranks = [r for r in range(n_stocks) if not kept[r]]
        free_stocks = [query_order[r] for r in free_ranks]
        rng.shuffle(free_stocks)
        update_order = list(query_order)
        for rank, stock in zip(free_ranks, free_stocks):
            update_order[rank] = stock
        self._update_rank_to_stock = update_order

        #: Initial prices, dollars; a plausible spread for a price walk.
        self.initial_prices = {
            symbol: rng.uniform(5.0, 250.0) for symbol in self.symbols}

    def __repr__(self) -> str:
        return f"<StockUniverse n={self.n_stocks}>"

    def stock_for_query_rank(self, rank: int) -> str:
        """Ticker of the ``rank``-th most query-popular stock (0-based)."""
        return self.symbols[self._query_rank_to_stock[rank]]

    def stock_for_update_rank(self, rank: int) -> str:
        """Ticker of the ``rank``-th most update-popular stock (0-based)."""
        return self.symbols[self._update_rank_to_stock[rank]]


class PriceWalk:
    """A lazy per-stock multiplicative random walk for update values."""

    def __init__(self, universe: StockUniverse, rng: RandomStream,
                 step_stdev: float = 0.001) -> None:
        self._prices = dict(universe.initial_prices)
        self._rng = rng
        self._step_stdev = step_stdev

    def next_price(self, symbol: str) -> float:
        """The next traded price for ``symbol`` (mutates the walk)."""
        current = self._prices.get(symbol, 100.0)
        multiplier = 1.0 + self._rng.gauss(0.0, self._step_stdev)
        new_price = max(0.01, current * multiplier)
        self._prices[symbol] = new_price
        return new_price
