"""Workload substrate: synthetic Stock.com/NYSE traces and their statistics."""

from .stats import (PerStockCounts, RateSeries, WorkloadSummary,
                    per_stock_counts, query_rate_series, summarize,
                    update_rate_series)
from .stocks import PriceWalk, StockUniverse, ticker_symbol
from .synthetic import (PAPER_DURATION_MS, PAPER_N_QUERIES, PAPER_N_STOCKS,
                        PAPER_N_UPDATES, StockWorkloadGenerator, WorkloadSpec,
                        paper_trace)
from .traces import QueryRecord, Trace, UpdateRecord

__all__ = [
    "PAPER_DURATION_MS",
    "PAPER_N_QUERIES",
    "PAPER_N_STOCKS",
    "PAPER_N_UPDATES",
    "PerStockCounts",
    "PriceWalk",
    "QueryRecord",
    "RateSeries",
    "StockUniverse",
    "StockWorkloadGenerator",
    "Trace",
    "UpdateRecord",
    "WorkloadSpec",
    "WorkloadSummary",
    "paper_trace",
    "per_stock_counts",
    "query_rate_series",
    "summarize",
    "ticker_symbol",
    "update_rate_series",
]
