"""Trace containers and I/O.

A :class:`Trace` is the replayable input of a simulation: time-ordered query
records (arrival, read set, service time) and update records (arrival, item,
service time, new value).  Quality contracts are *not* part of the trace —
the paper varies QCs over the same trace, so contracts are attached at
submission time by the experiment configuration.

Traces serialise to a simple two-file CSV format so generated workloads can
be inspected, versioned, and re-used across runs.
"""

from __future__ import annotations

import csv
import dataclasses
import pathlib
import typing


@dataclasses.dataclass(frozen=True)
class QueryRecord:
    """One read-only query in a trace."""

    arrival_ms: float
    items: tuple[str, ...]
    exec_ms: float

    def __post_init__(self) -> None:
        if self.exec_ms <= 0:
            raise ValueError(f"exec_ms must be positive, got {self.exec_ms}")
        if not self.items:
            raise ValueError("a query must access at least one item")


@dataclasses.dataclass(frozen=True)
class UpdateRecord:
    """One blind update in a trace."""

    arrival_ms: float
    item: str
    exec_ms: float
    value: float = 0.0

    def __post_init__(self) -> None:
        if self.exec_ms <= 0:
            raise ValueError(f"exec_ms must be positive, got {self.exec_ms}")


class Trace:
    """A complete, time-ordered workload (queries + updates)."""

    def __init__(self, queries: typing.Sequence[QueryRecord],
                 updates: typing.Sequence[UpdateRecord],
                 duration_ms: float,
                 name: str = "trace") -> None:
        if duration_ms <= 0:
            raise ValueError(f"duration must be positive, got {duration_ms}")
        self.queries = sorted(queries, key=lambda r: r.arrival_ms)
        self.updates = sorted(updates, key=lambda r: r.arrival_ms)
        self.duration_ms = float(duration_ms)
        self.name = name
        for record in self.queries:
            if not 0 <= record.arrival_ms <= duration_ms:
                raise ValueError(
                    f"query arrival {record.arrival_ms} outside "
                    f"[0, {duration_ms}]")
        for record in self.updates:
            if not 0 <= record.arrival_ms <= duration_ms:
                raise ValueError(
                    f"update arrival {record.arrival_ms} outside "
                    f"[0, {duration_ms}]")

    def __repr__(self) -> str:
        return (f"<Trace {self.name!r} queries={len(self.queries)} "
                f"updates={len(self.updates)} "
                f"duration={self.duration_ms / 1000:.0f}s>")

    @property
    def stocks(self) -> frozenset[str]:
        """Every item referenced anywhere in the trace."""
        keys: set[str] = set()
        for query in self.queries:
            keys.update(query.items)
        for update in self.updates:
            keys.add(update.item)
        return frozenset(keys)

    def slice(self, end_ms: float, name: str | None = None) -> "Trace":
        """The prefix of the trace up to ``end_ms`` (for scaled-down runs)."""
        if not 0 < end_ms <= self.duration_ms:
            raise ValueError(f"end_ms must be in (0, {self.duration_ms}]")
        return Trace(
            [q for q in self.queries if q.arrival_ms <= end_ms],
            [u for u in self.updates if u.arrival_ms <= end_ms],
            end_ms, name=name or f"{self.name}[:{end_ms:.0f}ms]")

    # ------------------------------------------------------------------
    # CSV persistence
    # ------------------------------------------------------------------
    def save(self, directory: str | pathlib.Path) -> None:
        """Write ``queries.csv`` and ``updates.csv`` under ``directory``."""
        path = pathlib.Path(directory)
        path.mkdir(parents=True, exist_ok=True)
        with open(path / "queries.csv", "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["arrival_ms", "items", "exec_ms"])
            for q in self.queries:
                writer.writerow([f"{q.arrival_ms:.17g}", "|".join(q.items),
                                 f"{q.exec_ms:.17g}"])
        with open(path / "updates.csv", "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["arrival_ms", "item", "exec_ms", "value"])
            for u in self.updates:
                writer.writerow([f"{u.arrival_ms:.17g}", u.item,
                                 f"{u.exec_ms:.17g}", f"{u.value:.17g}"])
        with open(path / "meta.csv", "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["name", "duration_ms"])
            writer.writerow([self.name, f"{self.duration_ms:.17g}"])

    @classmethod
    def load(cls, directory: str | pathlib.Path) -> "Trace":
        """Read a trace previously written by :meth:`save`."""
        path = pathlib.Path(directory)
        queries: list[QueryRecord] = []
        with open(path / "queries.csv", newline="") as handle:
            for row in csv.DictReader(handle):
                queries.append(QueryRecord(
                    arrival_ms=float(row["arrival_ms"]),
                    items=tuple(row["items"].split("|")),
                    exec_ms=float(row["exec_ms"])))
        updates: list[UpdateRecord] = []
        with open(path / "updates.csv", newline="") as handle:
            for row in csv.DictReader(handle):
                updates.append(UpdateRecord(
                    arrival_ms=float(row["arrival_ms"]),
                    item=row["item"],
                    exec_ms=float(row["exec_ms"]),
                    value=float(row["value"])))
        with open(path / "meta.csv", newline="") as handle:
            meta = next(iter(csv.DictReader(handle)))
        return cls(queries, updates, duration_ms=float(meta["duration_ms"]),
                   name=meta["name"])
