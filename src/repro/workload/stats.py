"""Trace statistics: the numbers behind Figure 5 and Table 3.

These helpers extract, from any :class:`~repro.workload.traces.Trace`:

* per-second query/update rates (Figure 5a/b);
* per-stock query and update counts (the Figure 5c scatter);
* the Table 3 summary (totals, service-time ranges, stock count).
"""

from __future__ import annotations

import dataclasses
import math
import typing

from .traces import Trace


@dataclasses.dataclass(frozen=True)
class RateSeries:
    """Arrivals per second, indexed by second."""

    seconds: tuple[float, ...]
    counts: tuple[int, ...]

    @property
    def mean(self) -> float:
        return sum(self.counts) / len(self.counts) if self.counts else 0.0

    @property
    def maximum(self) -> int:
        return max(self.counts) if self.counts else 0

    def first_half_mean(self) -> float:
        half = len(self.counts) // 2
        return (sum(self.counts[:half]) / half) if half else 0.0

    def second_half_mean(self) -> float:
        half = len(self.counts) // 2
        rest = self.counts[half:]
        return (sum(rest) / len(rest)) if rest else 0.0


def query_rate_series(trace: Trace) -> RateSeries:
    """Figure 5(a): number of queries per second."""
    return _rate_series((q.arrival_ms for q in trace.queries),
                        trace.duration_ms)


def update_rate_series(trace: Trace) -> RateSeries:
    """Figure 5(b): number of updates per second."""
    return _rate_series((u.arrival_ms for u in trace.updates),
                        trace.duration_ms)


def _rate_series(arrivals_ms: typing.Iterable[float],
                 duration_ms: float) -> RateSeries:
    n_seconds = max(1, math.ceil(duration_ms / 1000.0))
    counts = [0] * n_seconds
    for arrival in arrivals_ms:
        index = min(n_seconds - 1, int(arrival / 1000.0))
        counts[index] += 1
    return RateSeries(tuple(float(s) for s in range(n_seconds)),
                      tuple(counts))


@dataclasses.dataclass(frozen=True)
class PerStockCounts:
    """Figure 5(c): per-stock (query_count, update_count) pairs."""

    queries: dict[str, int]
    updates: dict[str, int]

    def scatter(self) -> list[tuple[str, int, int]]:
        """``(symbol, query_count, update_count)`` for every touched
        stock."""
        symbols = set(self.queries) | set(self.updates)
        return [(s, self.queries.get(s, 0), self.updates.get(s, 0))
                for s in sorted(symbols)]

    def fraction_below_diagonal(self) -> float:
        """Fraction of stocks with strictly more updates than queries —
        the paper's "most points are below the diagonal" observation."""
        points = self.scatter()
        if not points:
            return 0.0
        below = sum(1 for __, q, u in points if u > q)
        return below / len(points)


def per_stock_counts(trace: Trace) -> PerStockCounts:
    queries: dict[str, int] = {}
    updates: dict[str, int] = {}
    for query in trace.queries:
        for item in query.items:
            queries[item] = queries.get(item, 0) + 1
    for update in trace.updates:
        updates[update.item] = updates.get(update.item, 0) + 1
    return PerStockCounts(queries, updates)


@dataclasses.dataclass(frozen=True)
class WorkloadSummary:
    """Table 3: workload information."""

    n_queries: int
    n_updates: int
    n_stocks: int
    duration_s: float
    query_exec_min_ms: float
    query_exec_max_ms: float
    update_exec_min_ms: float
    update_exec_max_ms: float

    def rows(self) -> list[tuple[str, str]]:
        """Label/value pairs formatted like Table 3."""
        return [
            ("query execution time",
             f"{self.query_exec_min_ms:.0f} ~ {self.query_exec_max_ms:.0f}ms"),
            ("update execution time",
             f"{self.update_exec_min_ms:.0f} ~ "
             f"{self.update_exec_max_ms:.0f}ms"),
            ("# queries", str(self.n_queries)),
            ("# updates", str(self.n_updates)),
            ("# stocks", str(self.n_stocks)),
            ("duration", f"{self.duration_s:.0f}s"),
        ]


def summarize(trace: Trace) -> WorkloadSummary:
    """Compute the Table 3 summary for ``trace``."""
    q_exec = [q.exec_ms for q in trace.queries]
    u_exec = [u.exec_ms for u in trace.updates]
    return WorkloadSummary(
        n_queries=len(trace.queries),
        n_updates=len(trace.updates),
        n_stocks=len(trace.stocks),
        duration_s=trace.duration_ms / 1000.0,
        query_exec_min_ms=min(q_exec) if q_exec else 0.0,
        query_exec_max_ms=max(q_exec) if q_exec else 0.0,
        update_exec_min_ms=min(u_exec) if u_exec else 0.0,
        update_exec_max_ms=max(u_exec) if u_exec else 0.0,
    )
