"""Split a trace's update stream by shard ownership.

In a sharded deployment each portal only pays for the updates to the
keys it owns — that is the whole point of partitioning (replication
makes every portal absorb all 4,608 stock streams; sharding divides
them).  ``split_update_streams`` performs that division **at trace
level**, against the run's *initial* ring: the driver feeds each
per-shard stream from its own source process, and any key that later
migrates is re-routed live by :meth:`repro.shard.ShardedPortal.
route_update` (ring lookup happens again at delivery time, so a
generation-time split stays correct across rebalances — the split only
decides which source process carries the record, not which shard
finally applies it).

Queries are *not* split here: their read sets are planned per-query by
the :class:`~repro.shard.ShardPlanner` since a multi-stock query may
span shards.
"""

from __future__ import annotations

import typing

from repro.workload.traces import Trace, UpdateRecord

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.shard.ring import HashRing


def split_update_streams(trace: Trace,
                         ring: "HashRing") -> list[list[UpdateRecord]]:
    """Partition ``trace.updates`` by initial ring owner.

    Returns one time-ordered list per shard (``trace.updates`` is
    already sorted by arrival, and a stable partition preserves that).
    Every record lands in exactly one stream, so the union is the
    original update load — the conservation the sharded determinism
    test asserts.
    """
    streams: list[list[UpdateRecord]] = [
        [] for _ in range(ring.n_shards)]
    for record in trace.updates:
        streams[ring.owner(record.item)].append(record)
    return streams
