"""Deterministic fan-out of independent simulation runs over processes.

Every experiment in this library is a sweep of *independent* simulation
runs: policies × Table-4 points, seeds, fault plans, checkpoint
intervals.  Each run builds its whole random universe from its own
arguments (:func:`repro.experiments.runner.run_simulation` creates a
fresh :class:`~repro.sim.rng.StreamRegistry` from ``master_seed``), so
runs share no mutable state and can execute in any order — or in any
*process* — without perturbing each other.  :func:`run_tasks` exploits
that: it fans a list of :class:`Task` objects out over a
``multiprocessing`` pool and collects results **in submission order**,
which makes a parallel sweep bit-identical to the sequential one.

Determinism contract
--------------------

* Task functions must be module-level (picklable) and must derive all
  randomness from their arguments.  Construct schedulers/routers *inside*
  the task, not in the parent (they are stateful once bound).
* Per-task seeds, where a sweep needs them, come from
  :func:`task_seed` — the same SHA-256 derivation chain as
  :meth:`StreamRegistry.spawn`, so seeds do not depend on worker count,
  scheduling order, or platform.
* ``workers <= 1`` runs the tasks inline in the calling process — the
  reference execution the pool is checked against.

Wedged workers
--------------

A run that hangs (e.g. a bug making the event loop spin forever) would
stall the whole sweep.  ``timeout_s`` bounds the wait for each task's
result; a timed-out task is resubmitted up to ``retries`` times (the old
worker keeps spinning but the pool has spare processes) before
:class:`TaskTimeoutError` aborts the sweep.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import typing

from repro.sim.rng import StreamRegistry

__all__ = ["Task", "TaskTimeoutError", "resolve_workers", "run_tasks",
           "task_seed"]

#: Environment variable consulted when no explicit worker count is given.
WORKERS_ENV = "REPRO_WORKERS"


@dataclasses.dataclass(frozen=True)
class Task:
    """One unit of work: ``fn(*args, **kwargs)`` in some process.

    ``fn`` must be a module-level callable and ``args``/``kwargs`` must be
    picklable.  ``key`` names the task in timeouts/diagnostics and is the
    conventional input to :func:`task_seed`.
    """

    fn: typing.Callable[..., typing.Any]
    args: tuple = ()
    kwargs: dict[str, typing.Any] = dataclasses.field(default_factory=dict)
    key: str = ""

    def run(self) -> typing.Any:
        return self.fn(*self.args, **self.kwargs)


class TaskTimeoutError(RuntimeError):
    """A task exhausted its retries without producing a result."""

    def __init__(self, task: Task, timeout_s: float, attempts: int) -> None:
        super().__init__(
            f"task {task.key or task.fn.__name__!r} produced no result "
            f"within {timeout_s:g}s after {attempts} attempt(s)")
        self.task = task


def resolve_workers(explicit: int | None = None) -> int:
    """Worker count: explicit argument > ``$REPRO_WORKERS`` > 1."""
    if explicit is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        explicit = int(raw) if raw else 1
    workers = int(explicit)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers


def task_seed(master_seed: int, key: str) -> int:
    """A per-task master seed derived from ``(master_seed, key)``.

    Identical to ``StreamRegistry(master_seed).spawn(key).master_seed``:
    stable across platforms and independent of how many tasks run, in
    what order, or on how many workers.
    """
    return StreamRegistry(master_seed).spawn(key).master_seed


def _start_method() -> str:
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


def run_tasks(tasks: typing.Iterable[Task],
              workers: int | None = None, *,
              timeout_s: float | None = None,
              retries: int = 1) -> list[typing.Any]:
    """Execute ``tasks`` and return their results in submission order.

    ``workers`` is resolved via :func:`resolve_workers`; with one worker
    (the default) the tasks run inline, sequentially, in this process.
    With more, they are fanned out over a ``multiprocessing`` pool; the
    result list is identical either way because every task is
    self-contained (see the module docstring's determinism contract).

    ``timeout_s`` bounds the wait for each task's result *from the point
    its turn comes up in collection* (queueing behind unfinished earlier
    tasks does not eat a task's own budget, because collection is in
    submission order).  On timeout the task is resubmitted up to
    ``retries`` times, then :class:`TaskTimeoutError` is raised and the
    pool is terminated.  Exceptions raised by a task propagate as-is, as
    they would sequentially, and are never retried.
    """
    tasks = list(tasks)
    workers = resolve_workers(workers)
    if workers <= 1 or len(tasks) <= 1:
        return [task.run() for task in tasks]

    ctx = multiprocessing.get_context(_start_method())
    results: list[typing.Any] = [None] * len(tasks)
    with ctx.Pool(processes=min(workers, len(tasks))) as pool:
        handles = [pool.apply_async(task.fn, task.args, task.kwargs)
                   for task in tasks]
        for index, task in enumerate(tasks):
            handle = handles[index]
            attempts = 1
            while True:
                try:
                    results[index] = handle.get(timeout_s)
                    break
                except multiprocessing.TimeoutError:
                    if attempts > retries:
                        pool.terminate()
                        raise TaskTimeoutError(task, timeout_s or 0.0,
                                               attempts) from None
                    attempts += 1
                    handle = pool.apply_async(task.fn, task.args,
                                              task.kwargs)
    return results
