"""Deterministic fan-out of independent simulation runs over processes.

Every experiment in this library is a sweep of *independent* simulation
runs: policies × Table-4 points, seeds, fault plans, checkpoint
intervals.  Each run builds its whole random universe from its own
arguments (:func:`repro.experiments.runner.run_simulation` creates a
fresh :class:`~repro.sim.rng.StreamRegistry` from ``master_seed``), so
runs share no mutable state and can execute in any order — or in any
*process* — without perturbing each other.  :func:`run_tasks` exploits
that: it fans a list of :class:`Task` objects out over a
``multiprocessing`` pool and collects results **in submission order**,
which makes a parallel sweep bit-identical to the sequential one.

Determinism contract
--------------------

* Task functions must be module-level (picklable) and must derive all
  randomness from their arguments.  Construct schedulers/routers *inside*
  the task, not in the parent (they are stateful once bound).
* Per-task seeds, where a sweep needs them, come from
  :func:`task_seed` — the same SHA-256 derivation chain as
  :meth:`StreamRegistry.spawn`, so seeds do not depend on worker count,
  scheduling order, or platform.
* ``workers <= 1`` runs the tasks inline in the calling process — the
  reference execution the pool is checked against.

Fan-out economics
-----------------

A 27-cell sweep used to pay for its parallelism three times over: a
fresh pool was forked per :func:`run_tasks` call, every task was a
separate round-trip, and shared arguments (the 0.4 MB trace appears in
every task of a sweep) were re-pickled once *per task*.  On small
sweeps that overhead exceeded the win — ``parallel_speedup.json``
recorded 0.78x.  Three fixes, all invisible to callers:

* **Persistent pool** — one pool is created lazily, kept warm, and
  reused by every subsequent :func:`run_tasks` call with the same
  process count (fork + import cost is paid once per run of the
  program, not once per sweep batch).  :func:`warm_pool` forks it
  eagerly — call it *before* building big parent state so the workers
  inherit a small heap; :func:`shutdown_pool` (also registered via
  ``atexit``) retires it.
* **Chunked dispatch** — tasks are sent as a few contiguous chunks
  (two per worker) instead of one message each.  Within a chunk the
  tasks share one pickle, so an object referenced by all of them — the
  trace — crosses the process boundary once per chunk, not once per
  task, thanks to pickle memoisation.
* **Right-sized fan-out** — the pool never runs more processes than
  ``os.cpu_count()``: oversubscribing cores cannot make CPU-bound
  simulations faster, it only multiplies pickling.  Workers also run
  ``gc.freeze()`` after the fork, so the inherited heap is never
  rescanned by their collector.

``timeout_s`` sweeps (see below) keep the old one-task-per-message
dispatch on a dedicated pool: supervision needs per-task handles and
spare workers, and a wedged worker must not poison the shared pool.

Wedged workers
--------------

A run that hangs (e.g. a bug making the event loop spin forever) would
stall the whole sweep.  ``timeout_s`` bounds the wait for each task's
result; a timed-out task is resubmitted up to ``retries`` times (the old
worker keeps spinning but the pool has spare processes) before
:class:`TaskTimeoutError` aborts the sweep.
"""

from __future__ import annotations

import atexit
import dataclasses
import gc
import multiprocessing
import os
import typing

from repro.sim.rng import StreamRegistry

__all__ = ["Task", "TaskTimeoutError", "resolve_workers", "run_tasks",
           "shutdown_pool", "task_seed", "warm_pool"]

#: Environment variable consulted when no explicit worker count is given.
WORKERS_ENV = "REPRO_WORKERS"


@dataclasses.dataclass(frozen=True)
class Task:
    """One unit of work: ``fn(*args, **kwargs)`` in some process.

    ``fn`` must be a module-level callable and ``args``/``kwargs`` must be
    picklable.  ``key`` names the task in timeouts/diagnostics and is the
    conventional input to :func:`task_seed`.
    """

    fn: typing.Callable[..., typing.Any]
    args: tuple = ()
    kwargs: dict[str, typing.Any] = dataclasses.field(default_factory=dict)
    key: str = ""

    def run(self) -> typing.Any:
        return self.fn(*self.args, **self.kwargs)


class TaskTimeoutError(RuntimeError):
    """A task exhausted its retries without producing a result."""

    def __init__(self, task: Task, timeout_s: float, attempts: int) -> None:
        super().__init__(
            f"task {task.key or task.fn.__name__!r} produced no result "
            f"within {timeout_s:g}s after {attempts} attempt(s)")
        self.task = task


def resolve_workers(explicit: int | None = None) -> int:
    """Worker count: explicit argument > ``$REPRO_WORKERS`` > 1."""
    if explicit is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        explicit = int(raw) if raw else 1
    workers = int(explicit)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers


def task_seed(master_seed: int, key: str) -> int:
    """A per-task master seed derived from ``(master_seed, key)``.

    Identical to ``StreamRegistry(master_seed).spawn(key).master_seed``:
    stable across platforms and independent of how many tasks run, in
    what order, or on how many workers.
    """
    return StreamRegistry(master_seed).spawn(key).master_seed


def _start_method() -> str:
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


# ----------------------------------------------------------------------
# The persistent pool
# ----------------------------------------------------------------------
_pool: typing.Any = None
_pool_processes = 0


def _worker_init() -> None:
    """Run once in every pool worker, right after the fork.

    ``gc.freeze`` moves everything the worker inherited from the parent
    into the permanent generation: the collector never rescans it, and
    (under fork) copy-on-write pages are not dirtied by refcount-only
    GC traversals.  Task inputs/outputs arrive later via pickle and are
    collected normally.
    """
    gc.collect()
    gc.freeze()


def _warm_noop(_index: int) -> None:
    return None


def _pool_for(processes: int) -> typing.Any:
    """The shared pool with exactly ``processes`` workers, creating (and
    warming) it if the cached one is missing or differently sized."""
    global _pool, _pool_processes
    if _pool is not None and _pool_processes == processes:
        return _pool
    shutdown_pool()
    ctx = multiprocessing.get_context(_start_method())
    pool = ctx.Pool(processes=processes, initializer=_worker_init)
    # One tiny round-trip per worker slot: forces the forks, the result
    # pipes, and the handler threads live before anything is timed.
    pool.map(_warm_noop, range(processes * 4), chunksize=1)
    _pool = pool
    _pool_processes = processes
    return pool


def warm_pool(workers: int | None = None) -> int:
    """Fork and warm the persistent pool ahead of the first sweep.

    Call this *early* — before traces and databases are built — so the
    workers fork off a small heap.  Returns the number of pool
    processes (0 when ``workers`` resolves to sequential execution and
    no pool is needed).
    """
    workers = resolve_workers(workers)
    if workers <= 1:
        return 0
    processes = max(1, min(workers, os.cpu_count() or 1))
    _pool_for(processes)
    return processes


def shutdown_pool() -> None:
    """Retire the persistent pool (no-op when none is live)."""
    global _pool, _pool_processes
    if _pool is not None:
        _pool.terminate()
        _pool.join()
        _pool = None
        _pool_processes = 0


atexit.register(shutdown_pool)


def _run_task_chunk(tasks: list[Task]) -> list[tuple[bool, typing.Any]]:
    """Worker-side executor for one contiguous chunk of tasks.

    Returns ``(True, result)`` per completed task.  A raising task is
    ferried back as ``(False, exception)`` and ends the chunk — under
    sequential semantics nothing after the first failure would have run
    anyway — while keeping the worker (and the shared pool) healthy.
    """
    out: list[tuple[bool, typing.Any]] = []
    for task in tasks:
        try:
            out.append((True, task.fn(*task.args, **task.kwargs)))
        except BaseException as exc:  # noqa: BLE001 - re-raised in parent
            out.append((False, exc))
            break
    return out


def _run_chunked(tasks: list[Task], workers: int) -> list[typing.Any]:
    """Throughput path: persistent pool, contiguous chunked dispatch."""
    processes = max(1, min(workers, len(tasks), os.cpu_count() or 1))
    pool = _pool_for(processes)
    # Two chunks per worker balances uneven task durations without
    # giving up the shared-argument pickle savings; a single worker
    # gets one chunk (one trace pickle, one round-trip).
    n_chunks = min(len(tasks), processes * 2 if processes > 1 else 1)
    base, extra = divmod(len(tasks), n_chunks)
    chunks: list[list[Task]] = []
    start = 0
    for i in range(n_chunks):
        size = base + (1 if i < extra else 0)
        chunks.append(tasks[start:start + size])
        start += size
    handles = [pool.apply_async(_run_task_chunk, (chunk,))
               for chunk in chunks]
    try:
        chunk_results = [handle.get() for handle in handles]
    except BaseException:
        # Not a task failure (those come back ferried) — the pool
        # itself broke.  Retire it so the next call starts clean.
        shutdown_pool()
        raise
    results: list[typing.Any] = []
    for chunk_result in chunk_results:
        for ok, value in chunk_result:
            if not ok:
                raise value
            results.append(value)
    return results


def _run_supervised(tasks: list[Task], workers: int, timeout_s: float,
                    retries: int) -> list[typing.Any]:
    """Wedge-tolerant path: dedicated pool, one message per task.

    Supervision needs a per-task handle to bound the wait, spare
    workers to resubmit past a spinning one (so the pool is *not*
    clamped to the core count), and disposal on exit — a wedged worker
    must never be returned to the shared pool.
    """
    ctx = multiprocessing.get_context(_start_method())
    results: list[typing.Any] = [None] * len(tasks)
    with ctx.Pool(processes=min(workers, len(tasks)),
                  initializer=_worker_init) as pool:
        handles = [pool.apply_async(task.fn, task.args, task.kwargs)
                   for task in tasks]
        for index, task in enumerate(tasks):
            handle = handles[index]
            attempts = 1
            while True:
                try:
                    results[index] = handle.get(timeout_s)
                    break
                except multiprocessing.TimeoutError:
                    if attempts > retries:
                        pool.terminate()
                        raise TaskTimeoutError(task, timeout_s or 0.0,
                                               attempts) from None
                    attempts += 1
                    handle = pool.apply_async(task.fn, task.args,
                                              task.kwargs)
    return results


def run_tasks(tasks: typing.Iterable[Task],
              workers: int | None = None, *,
              timeout_s: float | None = None,
              retries: int = 1) -> list[typing.Any]:
    """Execute ``tasks`` and return their results in submission order.

    ``workers`` is resolved via :func:`resolve_workers`; with one worker
    (the default) the tasks run inline, sequentially, in this process.
    With more, they are fanned out over the persistent worker pool in
    contiguous chunks (see *Fan-out economics* in the module docstring);
    the result list is identical either way because every task is
    self-contained (see the determinism contract).  The pool never runs
    more processes than ``os.cpu_count()`` — extra requested workers
    cost nothing.

    ``timeout_s`` bounds the wait for each task's result *from the point
    its turn comes up in collection* (queueing behind unfinished earlier
    tasks does not eat a task's own budget, because collection is in
    submission order).  On timeout the task is resubmitted up to
    ``retries`` times, then :class:`TaskTimeoutError` is raised and the
    pool is terminated.  Supervised sweeps run on a dedicated
    per-call pool sized to the full ``workers`` request.  Exceptions
    raised by a task propagate as-is, as they would sequentially, and
    are never retried.
    """
    tasks = list(tasks)
    workers = resolve_workers(workers)
    if workers <= 1 or len(tasks) <= 1:
        return [task.run() for task in tasks]
    if timeout_s is not None:
        return _run_supervised(tasks, workers, timeout_s, retries)
    return _run_chunked(tasks, workers)
