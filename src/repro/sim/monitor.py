"""Measurement utilities: tallies, time series, and time-weighted averages.

These are deliberately simple, dependency-free accumulators.  They are used
by the database server and the experiment harness to collect the statistics
that back every figure in the paper (response times, staleness, profit per
adaptation period, ρ trajectories, queue lengths, ...).
"""

from __future__ import annotations

import math
import typing


class Tally:
    """Streaming summary of an unweighted sample (Welford's algorithm)."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def __repr__(self) -> str:
        return (f"<Tally {self.name!r} n={self.count} mean={self.mean:.4g} "
                f"min={self.minimum:.4g} max={self.maximum:.4g}>")

    def observe(self, value: float) -> None:
        """Add one observation."""
        self.count += 1
        self.total += value
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        """Sample mean; 0.0 when empty (convenient for reports)."""
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        """Unbiased sample variance; 0.0 with fewer than two observations."""
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    def merge(self, other: "Tally") -> "Tally":
        """Fold ``other`` into this tally (Chan et al. parallel Welford).

        The result is identical (up to float association) to observing
        both sample streams into one tally — what the parallel sweep
        engine needs to combine per-worker statistics.  Returns ``self``
        for chaining.
        """
        if other.count == 0:
            return self
        if self.count == 0:
            self.count = other.count
            self.total = other.total
            self._mean = other._mean
            self._m2 = other._m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            return self
        combined = self.count + other.count
        delta = other._mean - self._mean
        self._m2 += (other._m2
                     + delta * delta * self.count * other.count / combined)
        self._mean += delta * other.count / combined
        self.count = combined
        self.total += other.total
        if other.minimum < self.minimum:
            self.minimum = other.minimum
        if other.maximum > self.maximum:
            self.maximum = other.maximum
        return self


class TimeSeries:
    """An explicit (time, value) series — e.g. Figure 9d's ρ
    trajectory.

    With ``max_points`` set the series is *bounded*: once full it
    decimates itself to every other retained point and doubles its
    sampling stride, so arbitrarily long runs keep a fixed-interval
    downsampled view in O(max_points) memory instead of growing without
    bound.  ``offered`` counts every sample handed to :meth:`record`,
    retained or not.
    """

    def __init__(self, name: str = "", *,
                 max_points: int | None = None) -> None:
        if max_points is not None and max_points < 2:
            raise ValueError(f"max_points must be >= 2, got {max_points}")
        self.name = name
        self.times: list[float] = []
        self.values: list[float] = []
        #: Bound on retained points (None: unbounded, the default).
        self.max_points = max_points
        #: Samples offered via :meth:`record` (>= retained length).
        self.offered = 0
        #: Current decimation stride: every ``stride``-th offer is kept.
        self.stride = 1
        #: Last appended time — the monotonicity guard compares against
        #: this float instead of indexing the list on every record.
        self._last = float("-inf")

    def __len__(self) -> int:
        return len(self.times)

    def __repr__(self) -> str:
        return f"<TimeSeries {self.name!r} n={len(self)}>"

    def record(self, time: float, value: float) -> None:
        if time < self._last:
            raise ValueError(
                f"time {time} precedes last recorded time {self._last}")
        self._last = time
        offer = self.offered
        self.offered = offer + 1
        if self.max_points is not None:
            if offer % self.stride:
                return
            if len(self.times) >= self.max_points:
                # Decimate: keep even positions (offers at multiples of
                # the doubled stride) and halve the retained length.
                del self.times[1::2]
                del self.values[1::2]
                self.stride *= 2
                if offer % self.stride:
                    return  # the current offer is off the new grid
        self.times.append(time)
        self.values.append(value)

    def items(self) -> typing.Iterator[tuple[float, float]]:
        return zip(self.times, self.values)

    def time_weighted_mean(self, until: float | None = None) -> float:
        """Mean of the piecewise-constant signal the samples describe.

        Each value holds from its sample time to the next sample (or to
        ``until`` for the last one).  Zero-duration intervals —
        back-to-back samples at the same simulated timestamp, which the
        server produces whenever several lifecycle events share one
        event-loop instant — contribute no weight, and a series whose
        whole span is zero falls back to the plain mean of its values
        instead of dividing by zero.
        """
        if not self.times:
            return 0.0
        stop = self.times[-1] if until is None else until
        if stop < self.times[-1]:
            raise ValueError(
                f"until={stop} precedes last sample {self.times[-1]}")
        area = 0.0
        for i in range(len(self.times) - 1):
            area += self.values[i] * (self.times[i + 1] - self.times[i])
        area += self.values[-1] * (stop - self.times[-1])
        span = stop - self.times[0]
        if span <= 0:
            return sum(self.values) / len(self.values)
        return area / span

    def moving_window_average(self, window: float) -> "TimeSeries":
        """Centred moving-window average over simulated time.

        This is the "filter with the moving-window size of 5 seconds" the
        paper applies before plotting Figure 9.
        """
        if window <= 0:
            raise ValueError("window must be positive")
        smoothed = TimeSeries(f"{self.name}|mw{window}")
        half = window / 2.0
        n = len(self.times)
        lo = 0
        hi = 0
        acc = 0.0
        for i, t in enumerate(self.times):
            while hi < n and self.times[hi] <= t + half:
                acc += self.values[hi]
                hi += 1
            while lo < n and self.times[lo] < t - half:
                acc -= self.values[lo]
                lo += 1
            count = hi - lo
            smoothed.record(t, acc / count if count else 0.0)
        return smoothed

    def bucket_sums(self, bucket: float, *, start: float = 0.0,
                    end: float | None = None) -> "TimeSeries":
        """Sum values into fixed-width buckets (e.g. profit per second)."""
        if bucket <= 0:
            raise ValueError("bucket must be positive")
        stop = end if end is not None else (self.times[-1] if self.times
                                            else start)
        n_buckets = max(1, math.ceil((stop - start) / bucket))
        sums = [0.0] * n_buckets
        for t, v in self.items():
            idx = int((t - start) / bucket)
            if 0 <= idx < n_buckets:
                sums[idx] += v
        out = TimeSeries(f"{self.name}|bucket{bucket}")
        for i, s in enumerate(sums):
            out.record(start + (i + 0.5) * bucket, s)
        return out


class TimeWeighted:
    """Time-weighted average of a piecewise-constant signal (queue lengths)."""

    def __init__(self, env_now: typing.Callable[[], float],
                 initial: float = 0.0, name: str = "") -> None:
        self.name = name
        self._now = env_now
        self._last_time = env_now()
        self._last_value = initial
        self._area = 0.0
        self._start = self._last_time

    def update(self, value: float) -> None:
        """Record that the signal changed to ``value`` now."""
        now = self._now()
        self._area += self._last_value * (now - self._last_time)
        self._last_time = now
        self._last_value = value

    @property
    def current(self) -> float:
        return self._last_value

    @property
    def average(self) -> float:
        """Time-weighted mean from creation until now."""
        now = self._now()
        area = self._area + self._last_value * (now - self._last_time)
        span = now - self._start
        return area / span if span > 0 else self._last_value


class Counter:
    """A named monotone counter with a convenience mapping container."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.value = 0

    def increment(self, by: int = 1) -> None:
        self.value += by

    def __repr__(self) -> str:
        return f"<Counter {self.name!r}={self.value}>"


class CounterSet:
    """Dict-of-counters with attribute-free, explicit access."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}

    def increment(self, name: str, by: int = 1) -> None:
        counter = self._counters.get(name)
        if counter is None:
            counter = Counter(name)
            self._counters[name] = counter
        counter.increment(by)

    def value(self, name: str) -> int:
        counter = self._counters.get(name)
        return counter.value if counter else 0

    def as_dict(self) -> dict[str, int]:
        return {name: c.value for name, c in sorted(self._counters.items())}

    def __repr__(self) -> str:
        return f"<CounterSet {self.as_dict()!r}>"
