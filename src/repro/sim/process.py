"""Generator-based processes for the discrete-event simulation kernel.

A *process* wraps a Python generator yielding
:class:`~repro.sim.events.Event`
instances.  Each yield suspends the process until the yielded event triggers;
the event's value is sent back into the generator (or its failure exception
is thrown into it).  Processes are themselves events that trigger when the
generator terminates, so processes can wait for each other.
"""

from __future__ import annotations

import types
import typing

from .errors import Interrupt, ProcessError
from .events import PENDING, Event

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .environment import Environment

ProcessGenerator = typing.Generator[Event, typing.Any, typing.Any]


class Initialize(Event):
    """Immediate event that starts a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self.callbacks = [process._resume]
        self._ok = True
        self._value = None
        env.schedule(self, priority=Event_URGENT)


class Interruption(Event):
    """Immediate event that throws :class:`Interrupt` into a process."""

    __slots__ = ("process",)

    def __init__(self, process: "Process", cause: object) -> None:
        super().__init__(process.env)
        if process._value is not PENDING:
            raise ProcessError(f"{process!r} has terminated and cannot be "
                               "interrupted")
        if process is self.env.active_process:
            raise ProcessError("a process is not allowed to interrupt itself")
        self.callbacks = [self._interrupt]
        self._ok = False
        self._value = Interrupt(cause)
        self._defused = True
        self.process = process
        self.env.schedule(self, priority=Event_URGENT)

    def _interrupt(self, event: Event) -> None:
        if self.process._value is not PENDING:
            # Process terminated before the interruption fired; drop it.
            return
        # Unsubscribe the process from whatever it was waiting for, then
        # resume it with the Interrupt failure.
        target = self.process._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self.process._resume)
            except ValueError:
                pass
        self.process._resume(self)


#: Scheduling priority for "urgent" bookkeeping events (process start and
#: interrupts) — they run before normal events at the same timestamp.
Event_URGENT = 0
Event_NORMAL = 1


class Process(Event):
    """An event that wraps a running generator.

    The process triggers when the generator returns (success, with the return
    value) or raises (failure, with the exception).
    """

    __slots__ = ("_generator", "name", "_target")

    def __init__(self, env: "Environment", generator: ProcessGenerator,
                 name: str | None = None) -> None:
        if not isinstance(generator, types.GeneratorType):
            raise ProcessError(f"{generator!r} is not a generator; did you "
                               "call the process function?")
        super().__init__(env)
        self._generator = generator
        self.name = name or generator.__name__
        #: The event the process is currently waiting for.
        self._target: Event | None = Initialize(env, self)

    def __repr__(self) -> str:
        return f"<Process({self.name}) at t={self.env.now}>"

    @property
    def target(self) -> Event | None:
        """The event this process is currently waiting for (or ``None``)."""
        return self._target

    @property
    def is_alive(self) -> bool:
        """True while the wrapped generator has not terminated."""
        return self._value is PENDING

    def interrupt(self, cause: object = None) -> None:
        """Throw an :class:`Interrupt` with ``cause`` into the process.

        The interrupt is delivered as a failure of whatever event the process
        is currently waiting on; the process may catch it and continue.
        """
        Interruption(self, cause)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        self.env._active_proc = self
        while True:
            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    # The caused failure is handed into the process; mark it
                    # defused so the environment does not crash if the
                    # process chooses to handle it.
                    event._defused = True
                    exc = typing.cast(BaseException, event._value)
                    next_event = self._generator.throw(exc)
            except StopIteration as stop:
                # Generator finished successfully.
                self._ok = True
                self._value = stop.value
                self.env.schedule(self)
                break
            except BaseException as exc:
                # Generator crashed: fail the process event.
                self._ok = False
                self._value = exc
                self.env.schedule(self)
                break

            if next_event is None or not isinstance(next_event, Event):
                proc_exc = ProcessError(
                    f"process {self.name!r} yielded {next_event!r}, "
                    "which is not an Event")
                # Throw back into the generator so it shows in its traceback.
                event = Event(self.env)
                event._ok = False
                event._value = proc_exc
                event._defused = True
                continue

            if next_event.callbacks is not None:
                # Event not yet processed: subscribe and suspend.
                next_event.callbacks.append(self._resume)
                self._target = next_event
                break

            # Event already processed: loop immediately with its outcome.
            event = next_event

        self.env._active_proc = None
