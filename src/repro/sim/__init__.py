"""A from-scratch discrete-event simulation kernel (simpy-like).

The kernel provides:

* :class:`Environment` — the clock and event loop;
* :class:`Event`, :class:`Timeout`, condition helpers — synchronisation;
* :class:`Process` / :class:`Interrupt` — generator-based coroutines;
* :class:`StreamRegistry` — named deterministic random streams;
* monitors — tallies, time series, time-weighted averages.

Time is a float interpreted as **milliseconds** throughout this library.
"""

from .environment import Environment, Infinity
from .errors import (EventLifecycleError, Interrupt, ProcessError,
                     SchedulingError, SimulationError)
from .events import Condition, ConditionValue, Event, Timeout, all_of, any_of
from .invariants import InvariantMonitor, InvariantViolation
from .monitor import Counter, CounterSet, Tally, TimeSeries, TimeWeighted
from .process import Process
from .rng import RandomStream, StreamRegistry

__all__ = [
    "Condition",
    "ConditionValue",
    "Counter",
    "CounterSet",
    "Environment",
    "Event",
    "EventLifecycleError",
    "Infinity",
    "Interrupt",
    "InvariantMonitor",
    "InvariantViolation",
    "Process",
    "ProcessError",
    "RandomStream",
    "SchedulingError",
    "SimulationError",
    "StreamRegistry",
    "Tally",
    "TimeSeries",
    "TimeWeighted",
    "Timeout",
    "all_of",
    "any_of",
]
