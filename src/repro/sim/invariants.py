"""Runtime invariant monitor: machine-checked conservation laws.

Chaos runs are only trustworthy if silent corruption is impossible, so
the simulation can carry a :class:`InvariantMonitor` that observes every
transaction lifecycle event and *continuously* asserts the laws the
accounting depends on:

* **conservation** — every query or update that enters the system
  terminates in exactly one ledger state (committed / dropped / shed /
  lost / unfinished); nothing is double-counted and nothing vanishes;
* **clock monotonicity** — observed event times never run backwards;
* **non-negative queues** — reported queue lengths are never negative;
* **profit conservation** — the ledger's gained totals equal the sum of
  the per-contract payouts credited at commit time.

A violated law raises :class:`InvariantViolation` immediately, carrying
the most recent events as a diagnostic trace, instead of letting the
run diverge silently.  The monitor is an *observer*: it schedules no
events, draws no randomness, and therefore never perturbs a run — a
monitored simulation is bit-identical to an unmonitored one.  It is
toggleable (``enabled=False`` turns every check into a no-op) so
benchmarks can run it off.

The write-ahead log (:mod:`repro.db.wal`) raises the same
:class:`InvariantViolation` when a corrupted record fails its checksum
during recovery replay: a damaged durability trail is a broken
invariant, not a quiet divergence.
"""

from __future__ import annotations

import collections
import math
import typing

from .errors import SimulationError


class InvariantViolation(SimulationError):
    """A conservation law was broken; carries the offending event trace."""

    def __init__(self, message: str,
                 trace: typing.Iterable[tuple] = ()) -> None:
        self.trace = list(trace)
        if self.trace:
            lines = "\n".join(
                f"  t={now:.3f} {kind} {data!r}"
                for now, kind, data in self.trace)
            message = f"{message}\nmost recent events:\n{lines}"
        super().__init__(message)


#: Event kinds that open a transaction's ledger entry.
_OPENING = frozenset({"query_submitted", "update_submitted"})

#: Event kinds that close a query's ledger entry (exactly one must fire).
QUERY_TERMINALS = frozenset({
    "query_committed", "query_dropped", "query_rejected",
    "query_lost", "query_unfinished",
})

#: Event kinds that close an update's ledger entry (exactly one must fire).
UPDATE_TERMINALS = frozenset({
    "update_applied", "update_superseded", "update_lost",
    "update_unfinished",
})

_TERMINALS = QUERY_TERMINALS | UPDATE_TERMINALS

#: Data fields checked for non-negativity on every event.
_QUEUE_FIELDS = ("pending_queries", "pending_updates")


class InvariantMonitor:
    """Subscribes to simulation events and asserts conservation laws.

    ``now_fn`` supplies the observed clock (usually ``lambda: env.now``).
    ``history`` bounds the diagnostic ring buffer attached to violations.
    With ``enabled=False`` every method returns immediately, so the
    monitor can stay wired in while costing nothing.
    """

    def __init__(self, now_fn: typing.Callable[[], float] | None = None,
                 *, enabled: bool = True, history: int = 64) -> None:
        if history <= 0:
            raise ValueError(f"history must be positive, got {history}")
        self.enabled = enabled
        self._now_fn = now_fn or (lambda: 0.0)
        self._trace: collections.deque[tuple] = collections.deque(
            maxlen=history)
        self._last_now = -math.inf
        #: txn_id -> "open" | terminal event kind.
        self._ledger: dict[int, str] = {}
        self._open = 0
        self.events_seen = 0
        #: Sum of per-query payouts credited at commit (profit law).
        self.profit_credited = 0.0

    def __repr__(self) -> str:
        state = "on" if self.enabled else "off"
        return (f"<InvariantMonitor {state} events={self.events_seen} "
                f"open={self._open}>")

    # ------------------------------------------------------------------
    # The event sink
    # ------------------------------------------------------------------
    def record(self, kind: str, txn_id: int | None = None,
               **data: typing.Any) -> None:
        """Observe one simulation event and check every applicable law."""
        if not self.enabled:
            return
        now = self._now_fn()
        self.events_seen += 1
        self._trace.append((now, kind, {"txn": txn_id, **data}))

        if now < self._last_now:
            self._fail(f"clock ran backwards: event {kind!r} observed at "
                       f"t={now} after t={self._last_now}")
        self._last_now = now

        for field in _QUEUE_FIELDS:
            length = data.get(field)
            if length is not None and length < 0:
                self._fail(f"negative queue length: {field}={length} "
                           f"at {kind!r}")

        if txn_id is not None:
            self._track(kind, txn_id)
        if kind == "query_committed":
            self.profit_credited += data.get("profit", 0.0)
        elif kind == "gap_healed":
            # Re-sync completeness: healing a lossy update window must
            # re-deliver exactly what the window withheld.  This is the
            # law the chaos harness's planted-bug meta-test breaks.
            dropped = data.get("dropped", 0)
            resynced = data.get("resynced", 0)
            if resynced != dropped:
                self._fail(
                    f"incomplete gap re-sync on replica "
                    f"{data.get('replica')}: window dropped {dropped} "
                    f"update(s) but the heal re-delivered {resynced}")
        elif kind == "shard_cutover":
            # Migration completeness: every update frozen while a key
            # range moved between shards must be replayed on the
            # destination at cutover — none lost, none duplicated.
            buffered = data.get("buffered", 0)
            replayed = data.get("replayed", 0)
            if replayed != buffered:
                self._fail(
                    f"unbalanced shard migration "
                    f"{data.get('source')} -> {data.get('dest')}: "
                    f"{buffered} update(s) buffered during the move but "
                    f"{replayed} replayed at cutover")

    def _track(self, kind: str, txn_id: int) -> None:
        state = self._ledger.get(txn_id)
        if kind in _OPENING:
            if state is not None:
                self._fail(f"transaction #{txn_id} submitted twice "
                           f"(was {state!r})")
            self._ledger[txn_id] = "open"
            self._open += 1
        elif kind in _TERMINALS:
            if state is None:
                self._fail(f"transaction #{txn_id} reached terminal "
                           f"{kind!r} without ever being submitted")
            if state != "open":
                self._fail(f"transaction #{txn_id} reached a second "
                           f"terminal state {kind!r} (already {state!r})")
            self._ledger[txn_id] = kind
            self._open -= 1

    # ------------------------------------------------------------------
    # End-of-run laws
    # ------------------------------------------------------------------
    @property
    def open_transactions(self) -> int:
        """Transactions submitted but not yet in a terminal state."""
        return self._open

    def verify_complete(self, total_gained: float) -> None:
        """After finalize: nothing may still be open, and the ledgers'
        gained profit must equal the sum of per-contract payouts."""
        if not self.enabled:
            return
        if self._open:
            stuck = [tid for tid, state in self._ledger.items()
                     if state == "open"]
            self._fail(f"{self._open} transaction(s) never reached a "
                       f"terminal ledger state: {sorted(stuck)[:10]}")
        if not math.isclose(total_gained, self.profit_credited,
                            rel_tol=1e-9, abs_tol=1e-6):
            self._fail(f"profit ledger out of balance: ledgers gained "
                       f"{total_gained!r} but per-contract payouts sum "
                       f"to {self.profit_credited!r}")

    def _fail(self, message: str) -> typing.NoReturn:
        raise InvariantViolation(message, trace=self._trace)
