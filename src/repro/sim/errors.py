"""Exception types for the discrete-event simulation kernel.

The kernel keeps its error vocabulary small and explicit: scheduling in the
past, running a finished environment, or misusing an event all raise
:class:`SimulationError` subclasses so that callers can distinguish kernel
misuse from failures inside simulated processes (which propagate the original
exception).
"""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all kernel-level errors."""


class SchedulingError(SimulationError):
    """An event was scheduled incorrectly (e.g. in the simulated past)."""


class EventLifecycleError(SimulationError):
    """An event was triggered, succeeded, or failed more than once."""


class ProcessError(SimulationError):
    """A process was interacted with in an invalid state."""


class StopSimulation(Exception):
    """Internal control-flow signal that stops :meth:`Environment.run`.

    Raised by the environment itself when the ``until`` event triggers; user
    code never needs to raise or catch it.
    """

    def __init__(self, value: object = None) -> None:
        super().__init__(value)
        self.value = value


class Interrupt(Exception):
    """Raised inside a process that has been interrupted by another process.

    The interrupting party supplies an arbitrary ``cause`` that the
    interrupted process can inspect to decide how to react (resume, restart,
    abort, ...).
    """

    def __init__(self, cause: object = None) -> None:
        super().__init__(cause)

    @property
    def cause(self) -> object:
        """The object passed to :meth:`Process.interrupt`."""
        return self.args[0]
