"""simsan layer 1: the dynamic same-timestamp race detector.

Every bit-identity guarantee in this repository rests on the kernel's
exact ``(time, priority, eid)`` dispatch order.  Code whose *result*
depends on the ``eid`` tie-break among equal ``(time, priority)``
events is deterministic by luck: any refactor that changes event
creation order (or a different kernel honouring the same contract)
silently changes the answer.  This module makes that latent order
dependence observable, two ways:

* **Access-tracking race detection** — :class:`Sanitizer` installs
  itself on an :class:`~repro.sim.environment.Environment` and records
  per-event read/write sets over *tracked cells* of shared state:
  per-key database items (via :class:`TrackedDatabase`), the
  scheduler's transaction queues and its ρ state (via
  :func:`wrap_method`).  Two events at the same ``(time, priority)``
  that both touched a cell, at least one writing, and that *coexisted
  in the queue* (so only the eid tie-break ordered them) form a
  commutativity race and are reported as a :class:`RaceFinding` with
  both events' suspension points.

* **Tie-break perturbation** — a :class:`Sanitizer` constructed with a
  ``salt`` replaces the eid counter with a bijectively permuted one
  (:class:`_PermutedCounter`), re-ordering exactly the tie-broken
  dispatches while preserving causality (an event can still only be
  dispatched after it is created).  The harness in
  :mod:`repro.experiments.sanitize` diffs result fingerprints across
  salts and, on divergence, replays with ``record_trace=True`` to name
  the first diverging event pair.

Happens-before approximation
----------------------------

Within an equal ``(time, priority)`` run, event ``E`` raced with an
earlier-dispatched event ``A`` iff ``E.eid <= watermark(A)``, where
``watermark(A)`` is the last eid allocated before ``A``'s callbacks
ran: both entries then coexisted in the queue and only the eid
tie-break chose who went first.  ``E.eid > watermark(A)`` means ``E``
was created during or after ``A``'s dispatch — causally ordered, not a
race.  This is why zero-delay process continuations and same-timestamp
causal chains (the normal shape of a discrete-event program) never
fire the detector.

Increments (``log_incr``) commute with each other — two events both
bumping a counter at the same timestamp are order-independent — but
conflict with reads and writes.
"""

from __future__ import annotations

import dataclasses
import functools
import typing

from repro.db.database import Database, StalenessAggregation
from repro.db.transactions import Query, Update

from .environment import Environment, Infinity
from .errors import SimulationError
from .events import Event, event_kind
from .process import Process

__all__ = ["EventInfo", "RaceFinding", "Sanitizer", "SanitizerError",
           "TrackedDatabase", "wrap_method"]


class SanitizerError(SimulationError):
    """Sanitizer misuse (installed late, race mode with a salt, ...)."""


# ----------------------------------------------------------------------
# eid counters
# ----------------------------------------------------------------------
class _VisibleCounter:
    """``itertools.count`` with a readable position.

    The race detector needs the *last eid allocated so far* (the
    watermark) at each dispatch; ``itertools.count`` cannot be peeked,
    so the sanitizer swaps this in as ``Environment._eid`` before any
    event is created.
    """

    __slots__ = ("value",)

    def __init__(self, start: int = 0) -> None:
        self.value = start

    def __iter__(self) -> "typing.Iterator[int]":
        return self

    def __next__(self) -> int:
        value = self.value
        self.value = value + 1
        return value


class _PermutedCounter:
    """A bijectively permuted eid counter for tie-break perturbation.

    The n-th allocation returns ``((n * MULT) ^ salt) mod 2**32`` —
    ``MULT`` is odd, so the map is a bijection on ``[0, 2**32)`` and
    every run draws distinct eids.  Equal ``(time, priority)`` entries
    now dispatch in permuted, salt-dependent order, while causality is
    untouched: an event still enters the queue only when created.  Any
    divergence between a salted run and the baseline is therefore an
    order dependence, never an artifact of the permutation itself.
    """

    __slots__ = ("value", "_salt")

    MASK: typing.ClassVar[int] = (1 << 32) - 1
    MULT: typing.ClassVar[int] = 0x9E3779B1  # odd: bijective mod 2**32

    def __init__(self, salt: int) -> None:
        self.value = 0
        self._salt = salt & self.MASK

    def __iter__(self) -> "typing.Iterator[int]":
        return self

    def __next__(self) -> int:
        value = self.value
        self.value = value + 1
        return ((value * self.MULT) ^ self._salt) & self.MASK


# ----------------------------------------------------------------------
# Findings
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class EventInfo:
    """One side of a race: what dispatched, and where it was suspended."""

    label: str  #: event kind plus the resumed process name(s)
    path: str   #: source file of the first resumed process
    line: int   #: its current suspension line (or def line if unstarted)
    eid: int

    def location(self) -> str:
        return f"{self.path}:{self.line}"


@dataclasses.dataclass(frozen=True)
class RaceFinding:
    """Two same-``(time, priority)`` events ordered only by eid tie-break
    with conflicting accesses to shared state."""

    kind: str  #: "write/write", "read/write", or "increment/read"
    time: float
    priority: int
    cells: tuple[str, ...]
    first: EventInfo   #: dispatched first (smaller eid)
    second: EventInfo

    def format(self) -> str:
        return (f"sim-order-race[{self.kind}] at t={self.time:g}ms on "
                f"{', '.join(self.cells)}: '{self.first.label}' "
                f"({self.first.location()}) vs '{self.second.label}' "
                f"({self.second.location()}) are ordered only by the "
                f"eid tie-break")

    def to_dict(self) -> dict[str, typing.Any]:
        return dataclasses.asdict(self)


class _EventRecord:
    """Per-dispatch access log entry (race mode only)."""

    __slots__ = ("time", "priority", "eid", "watermark", "label",
                 "path", "line", "reads", "writes", "incrs")

    def __init__(self, time: float, priority: int, eid: int,
                 watermark: int, label: str, path: str,
                 line: int) -> None:
        self.time = time
        self.priority = priority
        self.eid = eid
        self.watermark = watermark
        self.label = label
        self.path = path
        self.line = line
        self.reads: set[str] = set()
        self.writes: set[str] = set()
        self.incrs: set[str] = set()

    def info(self) -> EventInfo:
        return EventInfo(self.label, self.path, self.line, self.eid)


def _describe(event: Event) -> tuple[str, str, int]:
    """``(label, path, line)`` for a dispatching event.

    The label names the process(es) this event resumes; the location is
    the first such process's current suspension point — the exact line
    whose continuation order is at stake.  Captured *before* dispatch,
    while the generators are still suspended there.
    """
    names: list[str] = []
    path, line = "<kernel>", 0
    procs: list[Process] = []
    if isinstance(event, Process):
        procs.append(event)
    for callback in (event.callbacks or ()):
        owner = getattr(callback, "__self__", None)
        if isinstance(owner, Process):
            procs.append(owner)
    for proc in procs:
        names.append(proc.name)
        if line == 0:
            generator = proc._generator
            frame = generator.gi_frame
            code = generator.gi_code
            path = code.co_filename
            line = frame.f_lineno if frame is not None \
                else code.co_firstlineno
    label = event_kind(event)
    if names:
        label += "->" + "+".join(names)
    return label, path, line


# ----------------------------------------------------------------------
# The sanitizer engine
# ----------------------------------------------------------------------
class Sanitizer:
    """Determinism sanitizer for one simulation run.

    ``Sanitizer()`` is race mode: access tracking plus same-timestamp
    conflict detection.  ``Sanitizer(salt=n, track_state=False)`` is
    perturbation mode: only the eid permutation, full-speed batched run
    loop.  ``record_trace=True`` additionally logs every dispatch as
    ``(time, priority, label)`` for divergence localisation.

    Must be :meth:`install`-ed on a fresh environment before any event
    exists — the eid counter swap has to own every eid of the run.
    """

    def __init__(self, *, track_state: bool = True,
                 record_trace: bool = False, salt: int | None = None,
                 max_findings: int = 200) -> None:
        if salt is not None and track_state:
            raise SanitizerError(
                "race detection (track_state) needs unpermuted eids; "
                "run perturbation with track_state=False")
        self.track_state = track_state
        self.record_trace = record_trace
        self.salt = salt
        self.max_findings = max_findings
        self.findings: list[RaceFinding] = []
        #: Dispatch trace (``record_trace=True`` only).
        self.trace: list[tuple[float, int, str]] = []
        self.events_seen = 0
        self._counter: _VisibleCounter | _PermutedCounter = (
            _VisibleCounter() if salt is None
            else _PermutedCounter(salt))
        self._group_key: tuple[float, int] = (-1.0, -1)
        self._group: list[_EventRecord] = []
        self._current: _EventRecord | None = None

    # -- wiring ---------------------------------------------------------
    def install(self, env: Environment) -> None:
        """Take over ``env``'s eid counter (and dispatch hook if needed).

        Must run before the environment schedules anything, so every
        eid of the run comes from the sanitizer's counter.
        """
        if env.peek() != Infinity or env.sanitizer is not None:
            raise SanitizerError(
                "sanitizer must be installed on a fresh environment, "
                "before any event is scheduled")
        env._eid = self._counter
        if self.track_state or self.record_trace:
            env.sanitizer = self

    def tracked_database(
            self, *,
            staleness_aggregation: StalenessAggregation = "max",
            invalidation: bool = True) -> "TrackedDatabase":
        return TrackedDatabase(
            self, staleness_aggregation=staleness_aggregation,
            invalidation=invalidation)

    def track_scheduler(self, scheduler: object) -> None:
        """Wrap the scheduler's queue/ρ mutators with access logging.

        Must run before the scheduler is bound to the environment:
        ``bind_clock`` captures the (then-wrapped) ``_adapt`` bound
        method into its periodic process.
        """
        for name in ("submit_query", "submit_update", "requeue"):
            if hasattr(scheduler, name):
                wrap_method(self, scheduler, name,
                            writes=("scheduler.queue",))
        if hasattr(scheduler, "next_transaction"):
            reads = ("scheduler.rho",) if hasattr(scheduler, "rho") \
                else ()
            wrap_method(self, scheduler, "next_transaction",
                        reads=reads, writes=("scheduler.queue",))
        if hasattr(scheduler, "_adapt"):
            wrap_method(self, scheduler, "_adapt",
                        writes=("scheduler.rho",))

    # -- kernel hook (SanitizerProbe) -----------------------------------
    def begin_event(self, time: float, priority: int, eid: int,
                    event: Event) -> None:
        self.events_seen += 1
        if not self.track_state:
            if self.record_trace:
                label, _, _ = _describe(event)
                self.trace.append((time, priority, label))
            return
        self._close_current()
        key = (time, priority)
        if key != self._group_key:
            self._group_key = key
            self._group = []
        label, path, line = _describe(event)
        if self.record_trace:
            self.trace.append((time, priority, label))
        # Watermark: the last eid allocated before this event's
        # callbacks run.  Entries with eid <= watermark coexisted with
        # this one in the queue — their relative order was pure eid
        # tie-break.
        self._current = _EventRecord(time, priority, eid,
                                     self._counter.value - 1,
                                     label, path, line)

    def finish(self) -> None:
        """Close the last open event record; call after ``env.run()``."""
        self._close_current()

    # -- access logging -------------------------------------------------
    def log_read(self, cell: str) -> None:
        record = self._current
        if record is not None:
            record.reads.add(cell)

    def log_write(self, cell: str) -> None:
        record = self._current
        if record is not None:
            record.writes.add(cell)

    def log_incr(self, cell: str) -> None:
        """A commutative counter bump: conflicts with reads/writes of
        the same cell, but not with other increments."""
        record = self._current
        if record is not None:
            record.incrs.add(cell)

    # -- detection ------------------------------------------------------
    def _close_current(self) -> None:
        record = self._current
        if record is None:
            return
        self._current = None
        if not (record.reads or record.writes or record.incrs):
            return
        for prev in self._group:
            if record.eid <= prev.watermark:
                self._check_pair(prev, record)
        self._group.append(record)

    def _check_pair(self, first: _EventRecord,
                    second: _EventRecord) -> None:
        if len(self.findings) >= self.max_findings:
            return
        ww = first.writes & second.writes
        rw = ((first.writes & (second.reads | second.incrs))
              | (second.writes & (first.reads | first.incrs)))
        ir = (first.incrs & second.reads) | (second.incrs & first.reads)
        for kind, cells in (("write/write", ww), ("read/write", rw),
                            ("increment/read", ir)):
            if cells:
                self.findings.append(RaceFinding(
                    kind=kind, time=first.time, priority=first.priority,
                    cells=tuple(sorted(cells)),
                    first=first.info(), second=second.info()))


# ----------------------------------------------------------------------
# Access-tracking proxies
# ----------------------------------------------------------------------
def wrap_method(sanitizer: Sanitizer, obj: object, name: str, *,
                reads: typing.Sequence[str] = (),
                writes: typing.Sequence[str] = (),
                incrs: typing.Sequence[str] = ()) -> None:
    """Shadow ``obj.name`` with an instance attribute that logs the
    declared cell accesses, then delegates to the original bound method.

    Works on any un-``__slots__`` object (the schedulers); the original
    method stays reachable through the class.
    """
    original = typing.cast("typing.Callable[..., typing.Any]",
                           getattr(obj, name))

    @functools.wraps(original)
    def tracked(*args: typing.Any, **kwargs: typing.Any) -> typing.Any:
        for cell in reads:
            sanitizer.log_read(cell)
        for cell in incrs:
            sanitizer.log_incr(cell)
        for cell in writes:
            sanitizer.log_write(cell)
        return original(*args, **kwargs)

    setattr(obj, name, tracked)


class TrackedDatabase(Database):
    """A :class:`~repro.db.database.Database` that logs per-key cell
    accesses on its serving surface.

    Tracking is *semantic*, at the public-method level — the cell for
    item ``K`` is ``db.items[K]`` regardless of which internal path
    touched it.  Registering an update is a write (the register slot is
    last-writer-wins under invalidation), applying is a write, reads
    and staleness aggregations are reads, and the pending-count
    bookkeeping is a commutative increment.  Durability/recovery
    methods (``snapshot``/``restore``/``clear``/``replay_applied``)
    are deliberately untracked: they run outside the serving loop.
    """

    def __init__(self, sanitizer: Sanitizer, *,
                 keys: typing.Iterable[str] = (),
                 staleness_aggregation: StalenessAggregation = "max",
                 invalidation: bool = True) -> None:
        super().__init__(keys, staleness_aggregation=staleness_aggregation,
                         invalidation=invalidation)
        self._san = sanitizer

    def read(self, key: str) -> float:
        self._san.log_read(f"db.items[{key}]")
        return super().read(key)

    def register_update(self, update: Update,
                        now: float) -> Update | None:
        self._san.log_write(f"db.items[{update.item}]")
        self._san.log_incr("db.pending")
        return super().register_update(update, now)

    def pending_update(self, key: str) -> Update | None:
        self._san.log_read(f"db.items[{key}]")
        return super().pending_update(key)

    def pending_count(self) -> int:
        self._san.log_read("db.pending")
        return super().pending_count()

    def apply_update(self, update: Update, now: float) -> None:
        self._san.log_write(f"db.items[{update.item}]")
        self._san.log_incr("db.pending")
        super().apply_update(update, now)

    def query_staleness(self, query: Query) -> float:
        for key in query.items:
            self._san.log_read(f"db.items[{key}]")
        return super().query_staleness(query)

    def query_time_differential(self, query: Query, now: float) -> float:
        for key in query.items:
            self._san.log_read(f"db.items[{key}]")
        return super().query_time_differential(query, now)

    def query_value_distance(self, query: Query) -> float:
        for key in query.items:
            self._san.log_read(f"db.items[{key}]")
        return super().query_value_distance(query)
