"""The simulation environment: clock, event queue, and run loop.

:class:`Environment` owns simulated time and a priority queue of pending
events.  Time is a float; in this library it is interpreted as milliseconds
throughout (the paper's workload is specified in milliseconds).
"""

from __future__ import annotations

import typing
from heapq import heappop, heappush
from itertools import count

from .errors import EventLifecycleError, SchedulingError, StopSimulation
from .events import Event, Timeout, all_of, any_of
from .process import Event_NORMAL, Process, ProcessGenerator

Infinity = float("inf")


class EventObserver(typing.Protocol):
    """What :attr:`Environment.telemetry` must provide.

    Structural so the kernel stays import-free of
    :mod:`repro.telemetry` (which imports the kernel); the concrete
    implementation is ``repro.telemetry.hooks.KernelProbe``.
    """

    def on_event(self, event: Event) -> None:
        ...  # pragma: no cover - protocol


class Environment:
    """A single-clock discrete-event simulation environment.

    Example::

        env = Environment()

        def ticker(env):
            while True:
                yield env.timeout(10.0)

        env.process(ticker(env))
        env.run(until=100.0)
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._eid = count()
        self._active_proc: Process | None = None
        #: Optional kernel telemetry observer.  ``None`` (the default)
        #: keeps :meth:`run` on the uninstrumented inlined loop — the
        #: disabled path costs one comparison per ``run()`` call, not
        #: per event.
        self.telemetry: EventObserver | None = None

    def __repr__(self) -> str:
        return f"<Environment t={self._now} queued={len(self._queue)}>"

    @property
    def now(self) -> float:
        """Current simulated time (milliseconds)."""
        return self._now

    @property
    def active_process(self) -> Process | None:
        """The process whose generator is currently executing, if any."""
        return self._active_proc

    # ------------------------------------------------------------------
    # Event construction helpers
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """A fresh, untriggered event owned by this environment."""
        return Event(self)

    def timeout(self, delay: float, value: object = None) -> Timeout:
        """An event triggering ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator,
                name: str | None = None) -> Process:
        """Start a new process from ``generator``; returns its Process
        event."""
        return Process(self, generator, name=name)

    def all_of(self, events: typing.Iterable[Event]) -> Event:
        """Condition event triggering when all ``events`` have succeeded."""
        return all_of(self, events)

    def any_of(self, events: typing.Iterable[Event]) -> Event:
        """Condition event triggering when any of ``events`` has succeeded."""
        return any_of(self, events)

    # ------------------------------------------------------------------
    # Scheduling and stepping
    # ------------------------------------------------------------------
    def schedule(self, event: Event, delay: float = 0.0,
                 priority: int = Event_NORMAL) -> None:
        """Place a triggered event on the queue ``delay`` units from now."""
        if delay < 0:
            raise SchedulingError(f"cannot schedule {event!r} in the past "
                                  f"(delay={delay})")
        heappush(self._queue,
                 (self._now + delay, priority, next(self._eid), event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else Infinity

    def step(self) -> None:
        """Process the next event, advancing the clock to its time."""
        try:
            self._now, _, _, event = heappop(self._queue)
        except IndexError:
            raise EventLifecycleError("no more events") from None

        callbacks = event.callbacks
        event.callbacks = None  # mark processed
        assert callbacks is not None
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            # An unhandled failure: abort the simulation loudly.
            exc = typing.cast(BaseException, event._value)
            raise exc

    def run(self, until: float | Event | None = None) -> object:
        """Run until ``until`` (a time, an event, or queue exhaustion).

        Returns the value of the ``until`` event if one was given and it
        triggered, else ``None``.
        """
        stop_event: Event | None = None
        if until is not None:
            if isinstance(until, Event):
                stop_event = until
            else:
                at = float(until)
                if at < self._now:
                    raise SchedulingError(
                        f"until={at} lies in the past (now={self._now})")
                stop_event = Event(self)
                # Use low priority so all events at `at` run first.
                stop_event._ok = True
                stop_event._value = None
                self.schedule(stop_event, delay=at - self._now,
                              priority=Event_NORMAL + 1)
            if stop_event.callbacks is None:
                # Already processed before run() was called.
                return stop_event.value
            stop_event.callbacks.append(_stop_simulation)

        # The event loop below is `step()` inlined: one method call, one
        # try/except, and one attribute lookup per event add up over the
        # millions of events a full-scale run processes.  The telemetry
        # variant is a separate loop so the disabled path pays nothing
        # per event — the observer check happens once, here.
        queue = self._queue
        observer = self.telemetry
        try:
            if observer is not None:
                on_event = observer.on_event  # bind once, not per event
                while queue:
                    self._now, _, _, event = heappop(queue)
                    on_event(event)
                    callbacks = event.callbacks
                    event.callbacks = None  # mark processed
                    for callback in callbacks:  # type: ignore[union-attr]
                        callback(event)
                    if not event._ok and not event._defused:
                        raise typing.cast(BaseException, event._value)
            else:
                while queue:
                    self._now, _, _, event = heappop(queue)
                    callbacks = event.callbacks
                    event.callbacks = None  # mark processed
                    for callback in callbacks:  # type: ignore[union-attr]
                        callback(event)
                    if not event._ok and not event._defused:
                        # An unhandled failure: abort the simulation
                        # loudly.
                        raise typing.cast(BaseException, event._value)
        except StopSimulation as stop:
            return stop.value

        return None


def _stop_simulation(event: Event) -> None:
    raise StopSimulation(event._value)
