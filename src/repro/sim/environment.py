"""The simulation environment: clock, calendar event queue, and run loop.

:class:`Environment` owns simulated time and the pending-event queue.
Time is a float; in this library it is interpreted as milliseconds
throughout (the paper's workload is specified in milliseconds).

Event-queue discipline
----------------------

Events are dispatched in exact ``(time, priority, eid)`` order, where
``eid`` is a strictly increasing insertion counter — same time and
priority means strict FIFO.  This total order is the contract every
bit-identity guarantee in the repository rests on; two implementations
of it live here, and **only** here (enforced by the ``single-event-queue``
simlint rule):

* :class:`Environment` — the production *calendar queue*: a dict of
  per-millisecond buckets (``int(time)`` → unsorted entry list) plus a
  lazy min-heap of bucket keys.  Insertion is O(1) amortised (the key
  heap is only touched when a bucket is first created), and the run
  loop drains one bucket at a time: sort once, then dispatch the whole
  batch without re-reading the queue — events scheduled *into* the open
  bucket by callbacks are routed to a side list and merged in, so the
  dispatch order is exactly the heap order.  Unlike a binary heap, the
  per-event cost does not grow with the number of pending events, which
  is what makes 10x-overload serving runs (hundreds of thousands of
  in-flight deadline timeouts) affordable.
* :class:`HeapEnvironment` — the former ``heapq`` implementation, kept
  as the executable specification.  The hypothesis equivalence tests
  and the interleaved A/B kernel benchmarks run both and require
  identical pop sequences and ledgers.

Entries with a non-finite time (``timeout(float("inf"))``) never fit a
calendar bucket; they live in a far-future overflow list that is only
consulted once every finite event has been dispatched — exactly where
the heap would have put them.
"""

from __future__ import annotations

import typing
from heapq import heappop, heappush
from itertools import count

from .errors import EventLifecycleError, SchedulingError, StopSimulation
from .events import Event, Timeout, all_of, any_of
from .process import Event_NORMAL, Process, ProcessGenerator

Infinity = float("inf")

#: "No bucket is open" sentinel for ``Environment._cal_open_key``.  NaN
#: compares unequal to every int, and ``int == nan`` resolves in one
#: C-level rich comparison — unlike ``int == None``, which goes through
#: two reflected ``NotImplemented`` round-trips on the schedule hot
#: path.
_NO_BUCKET = float("nan")

#: One pending entry: the total order is the tuple's natural order.
Entry = typing.Tuple[float, int, int, Event]


class EventObserver(typing.Protocol):
    """What :attr:`Environment.telemetry` must provide.

    Structural so the kernel stays import-free of
    :mod:`repro.telemetry` (which imports the kernel); the concrete
    implementation is ``repro.telemetry.hooks.KernelProbe``.
    """

    def on_event(self, event: Event) -> None:
        ...  # pragma: no cover - protocol


class SanitizerProbe(typing.Protocol):
    """What :attr:`Environment.sanitizer` must provide.

    Structural for the same reason as :class:`EventObserver`; the
    concrete implementation is ``repro.sim.sanitizer.Sanitizer``.
    Unlike telemetry's ``on_event``, the sanitizer sees the full queue
    entry — the determinism analysis needs the exact ``(time, priority,
    eid)`` dispatch coordinates, and it must observe them *before* the
    event's callbacks run so it can snapshot the eid watermark.
    """

    def begin_event(self, time: float, priority: int, eid: int,
                    event: Event) -> None:
        ...  # pragma: no cover - protocol


class Environment:
    """A single-clock discrete-event simulation environment.

    Example::

        env = Environment()

        def ticker(env):
            while True:
                yield env.timeout(10.0)

        env.process(ticker(env))
        env.run(until=100.0)
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        #: Strictly increasing insertion counter.  Typed as a plain
        #: iterator because the sanitizer swaps in a readable (or
        #: permuted) counter — see :mod:`repro.sim.sanitizer`.
        self._eid: typing.Iterator[int] = count()
        self._active_proc: Process | None = None
        # Calendar queue state (see the module docstring).  The bucket
        # key of an entry at time t is int(t): truncation is monotone in
        # t, so bucket order plus an in-bucket sort reproduces the exact
        # (time, priority, eid) heap order.
        self._cal_buckets: dict[int, list[Entry]] = {}
        self._cal_keys: list[int] = []  # min-heap; may hold stale keys
        self._cal_far: list[Entry] = []  # non-finite times (inf)
        self._cal_open: list[Entry] = []  # arrivals into the open bucket
        self._cal_open_key: float = _NO_BUCKET  # bucket being drained
        self._cal_size = 0
        #: Optional kernel telemetry observer.  ``None`` (the default)
        #: keeps :meth:`run` on the uninstrumented inlined loop — the
        #: disabled path costs one comparison per ``run()`` call, not
        #: per event.
        self.telemetry: EventObserver | None = None
        #: Optional determinism sanitizer (``repro.sim.sanitizer``).
        #: ``None`` (the default) keeps :meth:`run` on the batched
        #: loops below; installed, :meth:`run` switches to the
        #: one-entry-at-a-time :meth:`_run_sanitized` path, which
        #: dispatches in the identical ``(time, priority, eid)`` order
        #: via :meth:`_pop_entry` but exposes every entry to the probe.
        self.sanitizer: SanitizerProbe | None = None

    def __repr__(self) -> str:
        return f"<Environment t={self._now} queued={self._cal_size}>"

    @property
    def now(self) -> float:
        """Current simulated time (milliseconds)."""
        return self._now

    @property
    def active_process(self) -> Process | None:
        """The process whose generator is currently executing, if any."""
        return self._active_proc

    # ------------------------------------------------------------------
    # Event construction helpers
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """A fresh, untriggered event owned by this environment."""
        return Event(self)

    def timeout(self, delay: float, value: object = None) -> Timeout:
        """An event triggering ``delay`` time units from now.

        Timeouts dominate event creation (every service slice, deadline,
        and adaptation period is one), so this constructs and enqueues
        the event inline rather than through ``Timeout.__init__`` →
        :meth:`schedule` — same fields, same one ``eid`` consumed, two
        call frames fewer per event.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        event = Timeout.__new__(Timeout)
        event.env = self
        event.callbacks = []
        event._value = value
        event._ok = True
        event._defused = False
        event.delay = delay
        t = self._now + delay
        try:
            key = int(t)
        except (OverflowError, ValueError):
            self._insert_nonfinite(t, Event_NORMAL, event)
            return event
        entry = (t, Event_NORMAL, next(self._eid), event)
        if key == self._cal_open_key:
            self._cal_open.append(entry)
        else:
            bucket = self._cal_buckets.get(key)
            if bucket is None:
                self._cal_buckets[key] = [entry]
                heappush(self._cal_keys, key)
            else:
                bucket.append(entry)
        self._cal_size += 1
        return event

    def process(self, generator: ProcessGenerator,
                name: str | None = None) -> Process:
        """Start a new process from ``generator``; returns its Process
        event."""
        return Process(self, generator, name=name)

    def all_of(self, events: typing.Iterable[Event]) -> Event:
        """Condition event triggering when all ``events`` have succeeded."""
        return all_of(self, events)

    def any_of(self, events: typing.Iterable[Event]) -> Event:
        """Condition event triggering when any of ``events`` has succeeded."""
        return any_of(self, events)

    # ------------------------------------------------------------------
    # Scheduling and stepping
    # ------------------------------------------------------------------
    def schedule(self, event: Event, delay: float = 0.0,
                 priority: int = Event_NORMAL) -> None:
        """Place a triggered event on the queue ``delay`` units from now."""
        if delay < 0:
            raise SchedulingError(f"cannot schedule {event!r} in the past "
                                  f"(delay={delay})")
        t = self._now + delay
        try:
            key = int(t)
        except (OverflowError, ValueError):
            self._insert_nonfinite(t, priority, event)
            return
        entry = (t, priority, next(self._eid), event)
        if key == self._cal_open_key:
            self._cal_open.append(entry)
        else:
            bucket = self._cal_buckets.get(key)
            if bucket is None:
                self._cal_buckets[key] = [entry]
                heappush(self._cal_keys, key)
            else:
                bucket.append(entry)
        self._cal_size += 1

    def _insert_nonfinite(self, t: float, priority: int,
                          event: Event) -> None:
        """Overflow path for entries whose time fits no calendar bucket."""
        if t == Infinity:
            self._cal_far.append((t, priority, next(self._eid), event))
            self._cal_size += 1
            return
        raise SchedulingError(
            f"cannot schedule {event!r} at non-finite time {t}")

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        keys = self._cal_keys
        buckets = self._cal_buckets
        while keys:
            bucket = buckets.get(keys[0])
            if bucket is not None:
                return min(bucket)[0]
            heappop(keys)  # stale key: bucket already drained
        return Infinity

    def _pop_entry(self) -> Entry:
        """Remove and return the single next entry in queue order."""
        keys = self._cal_keys
        buckets = self._cal_buckets
        while keys:
            key = keys[0]
            bucket = buckets.get(key)
            if bucket is None:
                heappop(keys)  # stale key
                continue
            bucket.sort()
            entry = bucket.pop(0)
            if not bucket:
                del buckets[key]
            self._cal_size -= 1
            return entry
        far = self._cal_far
        if far:
            far.sort()
            self._cal_size -= 1
            return far.pop(0)
        raise EventLifecycleError("no more events")

    def step(self) -> None:
        """Process the next event, advancing the clock to its time."""
        self._now, _, _, event = self._pop_entry()

        callbacks = event.callbacks
        event.callbacks = None  # mark processed
        assert callbacks is not None
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            # An unhandled failure: abort the simulation loudly.
            exc = typing.cast(BaseException, event._value)
            raise exc

    def _run_sanitized(self) -> object:
        """The :meth:`run` loop under an installed determinism sanitizer.

        Dispatches entries one at a time through :meth:`_pop_entry` —
        the executable-specification order, identical to the batched
        loops — handing each ``(time, priority, eid, event)`` tuple to
        the probe *before* its callbacks run.  Opt-in and slower than
        the batched path (see ``benchmarks/test_sanitizer_overhead``);
        results are bit-identical with the sanitizer on or off.
        """
        probe = self.sanitizer
        assert probe is not None
        begin_event = probe.begin_event
        try:
            while True:
                try:
                    t, priority, eid, event = self._pop_entry()
                except EventLifecycleError:
                    return None
                self._now = t
                begin_event(t, priority, eid, event)
                callbacks = event.callbacks
                event.callbacks = None  # mark processed
                for callback in callbacks:  # type: ignore[union-attr]
                    callback(event)
                if not event._ok and not event._defused:
                    raise typing.cast(BaseException, event._value)
        except StopSimulation as stop:
            return stop.value

    def run(self, until: float | Event | None = None) -> object:
        """Run until ``until`` (a time, an event, or queue exhaustion).

        Returns the value of the ``until`` event if one was given and it
        triggered, else ``None``.
        """
        stop_event: Event | None = None
        if until is not None:
            if isinstance(until, Event):
                stop_event = until
            else:
                at = float(until)
                if at < self._now:
                    raise SchedulingError(
                        f"until={at} lies in the past (now={self._now})")
                stop_event = Event(self)
                # Use low priority so all events at `at` run first.
                stop_event._ok = True
                stop_event._value = None
                self.schedule(stop_event, delay=at - self._now,
                              priority=Event_NORMAL + 1)
            if stop_event.callbacks is None:
                # Already processed before run() was called.  Mirror the
                # live path's unhandled-failure semantics: a failed,
                # undefused event aborts the run with its exception
                # rather than leaking the exception object as a value.
                if not stop_event._ok and not stop_event._defused:
                    raise typing.cast(BaseException, stop_event._value)
                return stop_event.value
            stop_event.callbacks.append(_stop_simulation)

        if self.sanitizer is not None:
            return self._run_sanitized()

        # The loop below drains the calendar one bucket at a time: sort
        # the batch once, then dispatch every event in it before asking
        # the queue for more.  A single-entry bucket (the common case in
        # sparse regions of the timeline) takes a fast path with no
        # open-bucket routing at all: the bucket is already off the
        # calendar, so callbacks scheduling into the same millisecond
        # simply create a fresh bucket that the next iteration pops —
        # their eids are larger and their times >= now, so the global
        # order is preserved.  For multi-entry buckets, events scheduled
        # into the open bucket by callbacks land in `incoming` and are
        # merged in — new entries always carry a later eid and a time >=
        # the event being dispatched, so (remaining + incoming)
        # re-sorted continues the exact global (time, priority, eid)
        # order.  The telemetry variant is a separate loop so the
        # disabled path pays nothing per event — the observer check
        # happens once, here.
        buckets = self._cal_buckets
        keys = self._cal_keys
        incoming = self._cal_open
        batch: list[Entry] = []
        index = 0
        observer = self.telemetry
        try:
            if observer is not None:
                on_event = observer.on_event  # bind once, not per event
                while True:
                    while keys:
                        key = heappop(keys)
                        loaded = buckets.pop(key, None)
                        if loaded is not None:
                            break
                    else:
                        if not self._cal_far:
                            return None
                        loaded = [self._pop_entry()]
                        self._cal_size += 1  # counted out again below
                    n = len(loaded)
                    self._cal_size -= n
                    if n == 1:
                        # `batch`/`index` are deliberately left stale:
                        # once a batch completes, batch[index:] is empty,
                        # so the finally-restore is a no-op — and this
                        # event is consumed before anything can raise.
                        self._now, _, _, event = loaded[0]
                        on_event(event)
                        callbacks = event.callbacks
                        event.callbacks = None  # mark processed
                        for callback in callbacks:  # type: ignore[union-attr]
                            callback(event)
                        if not event._ok and not event._defused:
                            raise typing.cast(BaseException, event._value)
                        continue
                    batch = loaded
                    batch.sort()
                    self._cal_open_key = key  # route same-ms arrivals
                    index = 0
                    while index < n:
                        self._now, _, _, event = batch[index]
                        index += 1
                        on_event(event)
                        callbacks = event.callbacks
                        event.callbacks = None  # mark processed
                        for callback in callbacks:  # type: ignore[union-attr]
                            callback(event)
                        if not event._ok and not event._defused:
                            raise typing.cast(BaseException, event._value)
                        if incoming:
                            rest = batch[index:]
                            rest += incoming
                            self._cal_size -= len(incoming)
                            incoming.clear()
                            rest.sort()
                            batch = rest
                            index = 0
                            n = len(batch)
                    self._cal_open_key = _NO_BUCKET
            else:
                while True:
                    while keys:
                        key = heappop(keys)
                        loaded = buckets.pop(key, None)
                        if loaded is not None:
                            break
                    else:
                        if not self._cal_far:
                            return None
                        loaded = [self._pop_entry()]
                        self._cal_size += 1  # counted out again below
                    n = len(loaded)
                    self._cal_size -= n
                    if n == 1:
                        # `batch`/`index` are deliberately left stale:
                        # once a batch completes, batch[index:] is empty,
                        # so the finally-restore is a no-op — and this
                        # event is consumed before anything can raise.
                        self._now, _, _, event = loaded[0]
                        callbacks = event.callbacks
                        event.callbacks = None  # mark processed
                        for callback in callbacks:  # type: ignore[union-attr]
                            callback(event)
                        if not event._ok and not event._defused:
                            # An unhandled failure: abort the simulation
                            # loudly.
                            raise typing.cast(BaseException, event._value)
                        continue
                    batch = loaded
                    batch.sort()
                    self._cal_open_key = key  # route same-ms arrivals
                    index = 0
                    while index < n:
                        self._now, _, _, event = batch[index]
                        index += 1
                        callbacks = event.callbacks
                        event.callbacks = None  # mark processed
                        for callback in callbacks:  # type: ignore[union-attr]
                            callback(event)
                        if not event._ok and not event._defused:
                            raise typing.cast(BaseException, event._value)
                        if incoming:
                            rest = batch[index:]
                            rest += incoming
                            self._cal_size -= len(incoming)
                            incoming.clear()
                            rest.sort()
                            batch = rest
                            index = 0
                            n = len(batch)
                    self._cal_open_key = _NO_BUCKET
        except StopSimulation as stop:
            return stop.value
        finally:
            # Put any un-dispatched entries back so the queue stays
            # consistent after StopSimulation or an unhandled failure.
            rest = batch[index:]
            self._cal_size += len(rest)
            if incoming:
                rest += incoming  # already counted in _cal_size
                incoming.clear()
            if rest:
                okey = typing.cast(int, self._cal_open_key)
                assert okey == okey, "entries to restore, no open bucket"
                bucket = self._cal_buckets.get(okey)
                if bucket is None:
                    self._cal_buckets[okey] = rest
                    heappush(self._cal_keys, okey)
                else:  # pragma: no cover - defensive
                    bucket += rest
            self._cal_open_key = _NO_BUCKET


class HeapEnvironment(Environment):
    """The pre-calendar ``heapq`` event queue, kept as the reference.

    This is the former production implementation, verbatim: one binary
    heap of ``(time, priority, eid, event)`` tuples, one pop per event.
    The equivalence property tests and the interleaved A/B kernel
    benchmarks run workloads against both this and the calendar queue
    and require bit-identical pop sequences, ledgers, and figures.
    It is *not* a supported extension point — production code must use
    :class:`Environment`.
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        super().__init__(initial_time)
        self._queue: list[Entry] = []

    def __repr__(self) -> str:
        return f"<HeapEnvironment t={self._now} queued={len(self._queue)}>"

    def schedule(self, event: Event, delay: float = 0.0,
                 priority: int = Event_NORMAL) -> None:
        """Place a triggered event on the queue ``delay`` units from now."""
        if delay < 0:
            raise SchedulingError(f"cannot schedule {event!r} in the past "
                                  f"(delay={delay})")
        heappush(self._queue,
                 (self._now + delay, priority, next(self._eid), event))

    def timeout(self, delay: float, value: object = None) -> Timeout:
        """An event triggering ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else Infinity

    def _pop_entry(self) -> Entry:
        """Remove and return the single next entry in queue order."""
        try:
            return heappop(self._queue)
        except IndexError:
            raise EventLifecycleError("no more events") from None

    def step(self) -> None:
        """Process the next event, advancing the clock to its time."""
        try:
            self._now, _, _, event = heappop(self._queue)
        except IndexError:
            raise EventLifecycleError("no more events") from None

        callbacks = event.callbacks
        event.callbacks = None  # mark processed
        assert callbacks is not None
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            exc = typing.cast(BaseException, event._value)
            raise exc

    def run(self, until: float | Event | None = None) -> object:
        """Run until ``until`` (a time, an event, or queue exhaustion)."""
        stop_event: Event | None = None
        if until is not None:
            if isinstance(until, Event):
                stop_event = until
            else:
                at = float(until)
                if at < self._now:
                    raise SchedulingError(
                        f"until={at} lies in the past (now={self._now})")
                stop_event = Event(self)
                stop_event._ok = True
                stop_event._value = None
                self.schedule(stop_event, delay=at - self._now,
                              priority=Event_NORMAL + 1)
            if stop_event.callbacks is None:
                if not stop_event._ok and not stop_event._defused:
                    raise typing.cast(BaseException, stop_event._value)
                return stop_event.value
            stop_event.callbacks.append(_stop_simulation)

        if self.sanitizer is not None:
            return self._run_sanitized()

        queue = self._queue
        observer = self.telemetry
        try:
            if observer is not None:
                on_event = observer.on_event
                while queue:
                    self._now, _, _, event = heappop(queue)
                    on_event(event)
                    callbacks = event.callbacks
                    event.callbacks = None  # mark processed
                    for callback in callbacks:  # type: ignore[union-attr]
                        callback(event)
                    if not event._ok and not event._defused:
                        raise typing.cast(BaseException, event._value)
            else:
                while queue:
                    self._now, _, _, event = heappop(queue)
                    callbacks = event.callbacks
                    event.callbacks = None  # mark processed
                    for callback in callbacks:  # type: ignore[union-attr]
                        callback(event)
                    if not event._ok and not event._defused:
                        raise typing.cast(BaseException, event._value)
        except StopSimulation as stop:
            return stop.value

        return None


def _stop_simulation(event: Event) -> None:
    raise StopSimulation(event._value)
