"""Event primitives for the discrete-event simulation kernel.

Events follow the classic simpy-style lifecycle:

* *untriggered* — freshly created, not yet scheduled;
* *triggered*  — given a value (or an exception) and placed on the event
  queue, but callbacks have not run yet;
* *processed*  — popped from the queue, all callbacks executed.

An :class:`Event` may succeed with a value or fail with an exception.
Failures propagate into every process waiting on the event, so errors inside
simulated components never pass silently.
"""

from __future__ import annotations

import typing

from .errors import EventLifecycleError

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .environment import Environment

Callback = typing.Callable[["Event"], None]

#: Sentinel for "this event has not been given a value yet".
PENDING = object()


class Event:
    """A happening at a point in simulated time, awaited by processes.

    Events are the only synchronisation primitive in the kernel; timeouts,
    process termination, and condition events are all subclasses.

    Events are created in the millions per run, so the whole hierarchy is
    ``__slots__``-based: no per-instance dict, cheaper construction, and
    faster attribute access on the event-loop hot path.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: list[Callback] | None = []
        self._value: object = PENDING
        self._ok: bool | None = None
        #: Set when a failure was handed to at least one waiter (or
        #: explicitly ignored); unhandled failures abort the simulation.
        self._defused = False

    def __repr__(self) -> str:
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at t={self.env.now}>"

    @property
    def triggered(self) -> bool:
        """True once the event has a value and is on the event queue."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have been executed."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise EventLifecycleError(f"{self!r} has not been triggered")
        return self._ok

    @property
    def value(self) -> object:
        """The event's value (or failure exception).  Only valid once set."""
        if self._value is PENDING:
            raise EventLifecycleError(f"{self!r} has no value yet")
        return self._value

    def succeed(self, value: object = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise EventLifecycleError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with a failure carrying ``exception``."""
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self._value is not PENDING:
            raise EventLifecycleError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another (for chaining)."""
        if event._value is PENDING:
            # An untriggered source has no outcome to copy; silently
            # treating its ``_ok is None`` as a failure would "fail"
            # this event with the PENDING sentinel as its exception.
            raise EventLifecycleError(
                f"cannot trigger {self!r} from {event!r}, which has not "
                f"been triggered itself")
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(typing.cast(BaseException, event._value))

    def defuse(self) -> None:
        """Mark a failed event as handled so it does not crash the run."""
        self._defused = True


class Timeout(Event):
    """An event that triggers ``delay`` time units after creation.

    Timeouts are triggered immediately at construction; the delay is encoded
    in their position on the event queue.  The constructor assigns the event
    fields directly (rather than via ``Event.__init__``) because timeouts
    dominate event creation on the simulator's hot path.
    """

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float,
                 value: object = None) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self.env = env
        self.callbacks = []
        self._defused = False
        self.delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay)


class ConditionValue:
    """Mapping-like view of the values of the events a condition waited on."""

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: list[Event] = []

    def __getitem__(self, key: Event) -> object:
        if key not in self.events:
            raise KeyError(repr(key))
        return key.value

    def __contains__(self, key: Event) -> bool:
        return key in self.events

    def __iter__(self) -> typing.Iterator[Event]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ConditionValue):
            return self.todict() == other.todict()
        if isinstance(other, dict):
            return self.todict() == other
        return NotImplemented

    def __repr__(self) -> str:
        return f"<ConditionValue {self.todict()!r}>"

    def todict(self) -> dict[Event, object]:
        return {event: event.value for event in self.events}


class Condition(Event):
    """An event that triggers when ``evaluate`` is satisfied by its children.

    Used through the :func:`all_of` / :func:`any_of` helpers (or the ``&`` /
    ``|`` operators on events, which are intentionally *not* provided here to
    keep the API explicit).
    """

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(self, env: "Environment",
                 evaluate: typing.Callable[[list[Event], int], bool],
                 events: typing.Iterable[Event]) -> None:
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0

        for event in self._events:
            if event.env is not env:
                raise ValueError("events belong to different environments")

        # Register with children; already-triggered children are counted
        # immediately by checking processed/triggered state.
        for event in self._events:
            if event.callbacks is None:
                # Already processed: evaluate its outcome right now.
                self._check(event)
            else:
                event.callbacks.append(self._check)

        # If no child events at all, the condition is vacuously true.
        if not self._events and self._value is PENDING:
            self.succeed(ConditionValue())

    def _collect_values(self) -> ConditionValue:
        value = ConditionValue()
        for event in self._events:
            # Only *processed* events have actually happened; timeouts are
            # "triggered" from construction but fire later.
            if event.processed and event.ok:
                value.events.append(event)
        return value

    def _check(self, event: Event) -> None:
        if self._value is not PENDING:
            return
        self._count += 1
        if not event.ok:
            event.defuse()
            self.fail(typing.cast(BaseException, event.value))
        elif self._evaluate(self._events, self._count):
            self.succeed(self._collect_values())


def event_kind(event: Event) -> str:
    """Short lowercase kind tag for telemetry ("timeout", "process", ...).

    Derived from the class name so the kernel's event observer needs no
    import of every Event subclass (``Process`` lives in
    :mod:`repro.sim.process`, which imports this module).
    """
    return type(event).__name__.lower()


def all_of(env: "Environment", events: typing.Iterable[Event]) -> Condition:
    """Condition that triggers once *all* of ``events`` have succeeded."""
    return Condition(env, lambda evs, count: count >= len(evs), events)


def any_of(env: "Environment", events: typing.Iterable[Event]) -> Condition:
    """Condition that triggers once *any* of ``events`` has succeeded."""
    return Condition(env, lambda evs, count: count >= 1 or not evs, events)
