"""Named, seeded random-number streams.

Every stochastic component in the library (trace generation, quality-contract
sampling, the QUTS ``ξ`` draw, ...) pulls from its *own* named stream derived
from a single master seed.  This keeps experiments exactly reproducible and
— crucially for comparisons — means that changing, say, the scheduler's
random draws does not perturb the workload's random draws.
"""

from __future__ import annotations

import hashlib
import math
import random
import typing


def _derive_seed(master_seed: int, name: str) -> int:
    """Derive a stable 64-bit seed for ``name`` from ``master_seed``."""
    digest = hashlib.sha256(f"{master_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStream(random.Random):
    """A ``random.Random`` with a name, for debuggability."""

    def __init__(self, seed: int, name: str) -> None:
        super().__init__(seed)
        self.name = name
        self.initial_seed = seed

    def __repr__(self) -> str:
        return f"<RandomStream {self.name!r} seed={self.initial_seed}>"

    # ------------------------------------------------------------------
    # Distribution helpers used throughout the workload generator
    # ------------------------------------------------------------------
    def exponential(self, mean: float) -> float:
        """Exponential variate with the given *mean* (not rate)."""
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        return self.expovariate(1.0 / mean)

    def zipf_rank(self, n: int, theta: float) -> int:
        """Draw a 1-based rank from a Zipf(θ) distribution over ``n`` items.

        Uses the rejection-inversion-free cumulative method with a cached
        normaliser; adequate for the item-count scales used here.
        """
        if n <= 0:
            raise ValueError("n must be positive")
        # Inverse-CDF on the (cached) harmonic weights.
        cdf = _zipf_cdf(n, theta)
        u = self.random()
        return _bisect_cdf(cdf, u) + 1

    def bounded_pareto(self, alpha: float, low: float, high: float) -> float:
        """Bounded Pareto variate in ``[low, high]`` with shape ``alpha``."""
        if not 0 < low < high:
            raise ValueError("need 0 < low < high")
        u = self.random()
        la, ha = low ** alpha, high ** alpha
        return (-(u * ha - u * la - ha) / (ha * la)) ** (-1.0 / alpha)


@typing.no_type_check
def _zipf_cdf(n: int, theta: float) -> list[float]:
    """Cumulative Zipf weights, memoised per (n, theta)."""
    key = (n, round(theta, 9))
    cached = _ZIPF_CACHE.get(key)
    if cached is not None:
        return cached
    weights = [1.0 / (rank ** theta) for rank in range(1, n + 1)]
    total = math.fsum(weights)
    acc = 0.0
    cdf = []
    for w in weights:
        acc += w / total
        cdf.append(acc)
    cdf[-1] = 1.0
    _ZIPF_CACHE[key] = cdf
    return cdf


def _bisect_cdf(cdf: list[float], u: float) -> int:
    lo, hi = 0, len(cdf) - 1
    while lo < hi:
        mid = (lo + hi) // 2
        if cdf[mid] < u:
            lo = mid + 1
        else:
            hi = mid
    return lo


_ZIPF_CACHE: dict[tuple[int, float], list[float]] = {}


class StreamRegistry:
    """Factory handing out named :class:`RandomStream` objects.

    Streams are created lazily and cached, so two requests for the same name
    return the same stream object.
    """

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = master_seed
        self._streams: dict[str, RandomStream] = {}

    def __repr__(self) -> str:
        return (f"<StreamRegistry master_seed={self.master_seed} "
                f"streams={sorted(self._streams)}>")

    def stream(self, name: str) -> RandomStream:
        """The stream for ``name``, creating it on first use."""
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        stream = RandomStream(_derive_seed(self.master_seed, name), name)
        self._streams[name] = stream
        return stream

    def spawn(self, name: str) -> "StreamRegistry":
        """A child registry whose master seed is derived from ``name``.

        Useful for giving each repetition of an experiment an independent
        but reproducible seed universe.
        """
        return StreamRegistry(_derive_seed(self.master_seed, f"child:{name}"))
