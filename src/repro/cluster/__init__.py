"""Replicated-portal extension: update broadcast + QC-aware query routing.

The paper's related work ([17], WebDB 2006) applies Quality Contracts to
replica selection; this subpackage provides that deployment shape on top
of the single-server substrate, including the degraded-operation
machinery (replica crash/recovery, failure-aware routing, query
failover) that :mod:`repro.faults` exercises.
"""

from .health import (CLOSED, HALF_OPEN, OPEN, CircuitBreaker,
                     FailureDetector, HealthConfig)
from .portal import RecoveryIncident, ReplicaHandle, ReplicatedPortal
from .routers import (HedgedRouter, LeastLoadedRouter, NoHealthyReplica,
                      QCAwareRouter, RoundRobinRouter, Router)
from .runner import ClusterResult, run_cluster_simulation

__all__ = [
    "CLOSED",
    "CircuitBreaker",
    "ClusterResult",
    "FailureDetector",
    "HALF_OPEN",
    "HealthConfig",
    "HedgedRouter",
    "LeastLoadedRouter",
    "NoHealthyReplica",
    "OPEN",
    "QCAwareRouter",
    "RecoveryIncident",
    "ReplicaHandle",
    "ReplicatedPortal",
    "RoundRobinRouter",
    "Router",
    "run_cluster_simulation",
]
