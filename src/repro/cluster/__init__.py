"""Replicated-portal extension: update broadcast + QC-aware query routing.

The paper's related work ([17], WebDB 2006) applies Quality Contracts to
replica selection; this subpackage provides that deployment shape on top
of the single-server substrate, including the degraded-operation
machinery (replica crash/recovery, failure-aware routing, query
failover) that :mod:`repro.faults` exercises.
"""

from .portal import RecoveryIncident, ReplicaHandle, ReplicatedPortal
from .routers import (HedgedRouter, LeastLoadedRouter, NoHealthyReplica,
                      QCAwareRouter, RoundRobinRouter, Router)
from .runner import ClusterResult, run_cluster_simulation

__all__ = [
    "ClusterResult",
    "HedgedRouter",
    "LeastLoadedRouter",
    "NoHealthyReplica",
    "QCAwareRouter",
    "RecoveryIncident",
    "ReplicaHandle",
    "ReplicatedPortal",
    "RoundRobinRouter",
    "Router",
    "run_cluster_simulation",
]
