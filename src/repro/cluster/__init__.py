"""Replicated-portal extension: update broadcast + QC-aware query routing.

The paper's related work ([17], WebDB 2006) applies Quality Contracts to
replica selection; this subpackage provides that deployment shape on top
of the single-server substrate.
"""

from .portal import ReplicaHandle, ReplicatedPortal
from .routers import (LeastLoadedRouter, QCAwareRouter, RoundRobinRouter,
                      Router)
from .runner import ClusterResult, run_cluster_simulation

__all__ = [
    "ClusterResult",
    "LeastLoadedRouter",
    "QCAwareRouter",
    "ReplicaHandle",
    "ReplicatedPortal",
    "RoundRobinRouter",
    "Router",
    "run_cluster_simulation",
]
