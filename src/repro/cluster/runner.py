"""Replay a trace against a replicated portal, optionally under faults."""

from __future__ import annotations

import typing

from repro.db.admission import AdmissionPolicy
from repro.db.server import ServerConfig
from repro.db.transactions import Query
from repro.db.wal import DurabilityConfig
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.qc.contracts import QualityContract
from repro.scheduling.base import Scheduler
from repro.sim import Environment
from repro.sim.invariants import InvariantMonitor
from repro.sim.process import ProcessGenerator
from repro.sim.rng import StreamRegistry
from repro.telemetry.hooks import KernelProbe, TelemetryKnob
from repro.workload.traces import Trace

from .health import HealthConfig
from .portal import ReplicatedPortal
from .routers import Router

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.runner import QCSource


class ClusterResult:
    """Cluster-level outcome plus the per-replica detail."""

    def __init__(self, portal: ReplicatedPortal, duration: float,
                 invariants_checked: bool = False) -> None:
        self.duration = duration
        self.n_replicas = len(portal.replicas)
        self.router_name = portal.router.name
        self.total_percent = portal.total_percent
        self.qos_percent = portal.qos_percent
        self.qod_percent = portal.qod_percent
        self.mean_response_time = portal.mean_response_time()
        self.counters = portal.counters()
        self.routed_counts = list(portal.routed_counts)
        self.replica_ledgers = [r.ledger for r in portal.replicas]
        #: Robustness telemetry (all zero on fault-free runs).
        self.fault_counters = portal.fault_counters.as_dict()
        self.downtime_ms = portal.total_downtime_ms
        self.crash_counts = [r.crash_count for r in portal.replicas]
        #: Wall-clock ms with at least one replica down (interval union —
        #: concurrent outages are not double-counted).
        self.downtime_union_ms = portal.downtime_union_ms()
        #: Durability telemetry: one record per crash episode, with the
        #: episode's RPO (#uu lost from the unflushed WAL tail) and RTO
        #: (ms from recovery to a drained re-sync backlog).
        self.incidents: list[dict] = [
            i.as_dict() for i in portal.incidents]
        #: True when an invariant monitor watched (and passed) this run.
        self.invariants_checked = invariants_checked
        #: The resolved telemetry session shared by every replica and
        #: the portal (None when telemetry was off) — its tracer holds
        #: ``replica0..N/...`` and ``portal/...`` tracks.
        self.telemetry = portal.telemetry
        #: Final per-replica database digests (key, value, master, #uu)
        #: — what recovery parity is measured against.
        self.state_digests = [r.server.database.state_digest()
                              for r in portal.replicas]

    @property
    def availability(self) -> float:
        """Fraction of wall-clock time the portal could serve queries.

        Computed from the *union* of the outage intervals: two replicas
        down over the same window cost the window once, not twice
        (summing per-replica downtime over-counts exactly when outages
        overlap — a portal-wide crash would otherwise look ``n`` times
        worse than it is).  Per-replica utilisation remains available as
        :attr:`replica_availability`.
        """
        if self.duration <= 0:
            return 1.0
        return 1.0 - min(1.0, self.downtime_union_ms / self.duration)

    @property
    def replica_availability(self) -> float:
        """Fraction of replica-time (capacity) that was up — the old
        sum-based accounting, still the right lens for capacity loss."""
        span = self.duration * self.n_replicas
        if span <= 0:
            return 1.0
        return 1.0 - min(1.0, self.downtime_ms / span)

    @property
    def rpo_uu(self) -> int:
        """Worst per-incident RPO across the run (#uu lost), 0 if none."""
        return max((i["rpo_uu"] for i in self.incidents), default=0)

    @property
    def rto_ms_max(self) -> float | None:
        """Worst per-incident RTO (ms); None when an incident never
        caught up before the run ended (or there were no incidents)."""
        rtos = [i["rto_ms"] for i in self.incidents]
        if not rtos or any(r is None for r in rtos):
            return None
        return max(rtos)

    def __repr__(self) -> str:
        return (f"<ClusterResult n={self.n_replicas} "
                f"router={self.router_name} "
                f"Q%={self.total_percent:.3f} "
                f"avail={self.availability:.3f}>")


def _check_monotonic(kind: str, arrival_ms: float, previous: float,
                     index: int) -> None:
    if arrival_ms < previous:
        raise ValueError(
            f"malformed trace: {kind} #{index} arrives at "
            f"{arrival_ms:.3f} ms, before the previous {kind} at "
            f"{previous:.3f} ms — arrival times must be non-decreasing")


def run_cluster_simulation(n_replicas: int,
                           scheduler_factory: typing.Callable[[], Scheduler],
                           trace: Trace,
                           qc_source: "QCSource",
                           *,
                           router: Router | None = None,
                           master_seed: int = 0,
                           drain_ms: float = 30_000.0,
                           server_config: ServerConfig | None = None,
                           fault_plan: FaultPlan | None = None,
                           failover_retries: int = 6,
                           failover_backoff_ms: float = 50.0,
                           durability: DurabilityConfig | None = None,
                           invariants: bool = False,
                           telemetry: "TelemetryKnob" = None,
                           health: HealthConfig | None = None,
                           admission_factory: typing.Callable[
                               [], AdmissionPolicy] | None = None,
                           ) -> ClusterResult:
    """Replay ``trace`` against ``n_replicas`` servers behind ``router``.

    The update stream is broadcast to every replica; queries are routed.
    Contracts are drawn exactly as in the single-server runner, so
    cluster results are directly comparable with
    :func:`repro.experiments.run_simulation` on the same trace.

    ``fault_plan`` schedules failures (replica crashes, portal-wide
    outages, update-source stalls, query spikes) via a
    :class:`~repro.faults.FaultInjector`.
    A ``FaultPlan.none()`` plan is bit-identical to no plan at all: the
    injector draws nothing and perturbs no stream, so fault-free runs
    reproduce the fault-less results exactly.

    ``durability`` attaches a write-ahead log + periodic checkpoints to
    every replica (crashes then wipe main memory; recovery restores the
    last checkpoint and replays the durable WAL tail).  ``invariants``
    attaches an :class:`~repro.sim.invariants.InvariantMonitor` that
    audits every transaction lifecycle event during the run and verifies
    the conservation laws at the end — it observes only, so an audited
    run is bit-identical to an unaudited one.

    ``health`` arms the gray-failure defense layer: a failure detector
    plus one circuit breaker per replica, consulted by every router next
    to the up/down bit.  ``admission_factory`` builds one admission
    policy per replica (e.g. ``BrownoutAdmission`` to serve degraded
    answers under overload instead of shedding).

    Traces are validated on the fly: non-monotonic arrival times raise
    :class:`ValueError` instead of being silently replayed with zero
    delay (which would corrupt every rate-derived statistic).
    """
    env = Environment()
    streams = StreamRegistry(master_seed)
    monitor = InvariantMonitor(lambda: env.now) if invariants else None
    portal = ReplicatedPortal(env, n_replicas, scheduler_factory, streams,
                              router=router, server_config=server_config,
                              failover_retries=failover_retries,
                              failover_backoff_ms=failover_backoff_ms,
                              durability=durability, monitor=monitor,
                              telemetry=telemetry, health=health,
                              admission_factory=admission_factory)
    injector = (FaultInjector(env, fault_plan, portal)
                if fault_plan is not None else None)
    qc_rng = streams.stream("qc.sampler")

    def query_source(env: Environment) -> ProcessGenerator:
        previous = 0.0
        for i, record in enumerate(trace.queries):
            _check_monotonic("query", record.arrival_ms, previous, i)
            previous = record.arrival_ms
            delay = record.arrival_ms - env.now
            if delay > 0:
                yield env.timeout(delay)
            contract: QualityContract = qc_source.sample(qc_rng, env.now)
            portal.submit_query(Query(env.now, record.exec_ms,
                                      record.items, contract))
            if injector is not None:
                # Load spike: the flash crowd repeats the trace's demand.
                for _ in range(injector.extra_query_copies()):
                    portal.submit_query(Query(env.now, record.exec_ms,
                                              record.items, contract))

    def update_source(env: Environment) -> ProcessGenerator:
        previous = 0.0
        for i, record in enumerate(trace.updates):
            _check_monotonic("update", record.arrival_ms, previous, i)
            previous = record.arrival_ms
            delay = record.arrival_ms - env.now
            if delay > 0:
                yield env.timeout(delay)
            if injector is not None:
                # A stalled source parks here; on resume the backlog
                # (this and any overdue updates) bursts out at once.
                yield from injector.update_gate()
            portal.broadcast_update(env.now, record.exec_ms, record.item,
                                    record.value)

    env.process(query_source(env), name="cluster-query-source")
    env.process(update_source(env), name="cluster-update-source")
    horizon = trace.duration_ms + max(0.0, drain_ms)
    env.run(until=horizon)
    portal.finalize()
    if isinstance(env.telemetry, KernelProbe):
        env.telemetry.flush()
    if monitor is not None:
        monitor.verify_complete(portal.total_gained)
    return ClusterResult(portal, horizon,
                         invariants_checked=monitor is not None)
