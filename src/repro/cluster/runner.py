"""Replay a trace against a replicated portal."""

from __future__ import annotations

import typing

from repro.db.server import ServerConfig
from repro.db.transactions import Query
from repro.qc.contracts import QualityContract
from repro.scheduling.base import Scheduler
from repro.sim import Environment
from repro.sim.rng import StreamRegistry
from repro.workload.traces import Trace

from .portal import ReplicatedPortal
from .routers import Router


class ClusterResult:
    """Cluster-level outcome plus the per-replica detail."""

    def __init__(self, portal: ReplicatedPortal, duration: float) -> None:
        self.duration = duration
        self.n_replicas = len(portal.replicas)
        self.router_name = portal.router.name
        self.total_percent = portal.total_percent
        self.qos_percent = portal.qos_percent
        self.qod_percent = portal.qod_percent
        self.mean_response_time = portal.mean_response_time()
        self.counters = portal.counters()
        self.routed_counts = list(portal.routed_counts)
        self.replica_ledgers = [r.ledger for r in portal.replicas]

    def __repr__(self) -> str:
        return (f"<ClusterResult n={self.n_replicas} "
                f"router={self.router_name} "
                f"Q%={self.total_percent:.3f}>")


def run_cluster_simulation(n_replicas: int,
                           scheduler_factory: typing.Callable[[], Scheduler],
                           trace: Trace,
                           qc_source,
                           *,
                           router: Router | None = None,
                           master_seed: int = 0,
                           drain_ms: float = 30_000.0,
                           server_config: ServerConfig | None = None,
                           ) -> ClusterResult:
    """Replay ``trace`` against ``n_replicas`` servers behind ``router``.

    The update stream is broadcast to every replica; queries are routed.
    Contracts are drawn exactly as in the single-server runner, so
    cluster results are directly comparable with
    :func:`repro.experiments.run_simulation` on the same trace.
    """
    env = Environment()
    streams = StreamRegistry(master_seed)
    portal = ReplicatedPortal(env, n_replicas, scheduler_factory, streams,
                              router=router, server_config=server_config)
    qc_rng = streams.stream("qc.sampler")

    def query_source(env):
        for record in trace.queries:
            delay = record.arrival_ms - env.now
            if delay > 0:
                yield env.timeout(delay)
            contract: QualityContract = qc_source.sample(qc_rng, env.now)
            portal.submit_query(Query(env.now, record.exec_ms,
                                      record.items, contract))

    def update_source(env):
        for record in trace.updates:
            delay = record.arrival_ms - env.now
            if delay > 0:
                yield env.timeout(delay)
            portal.broadcast_update(env.now, record.exec_ms, record.item,
                                    record.value)

    env.process(query_source(env), name="cluster-query-source")
    env.process(update_source(env), name="cluster-update-source")
    horizon = trace.duration_ms + max(0.0, drain_ms)
    env.run(until=horizon)
    portal.finalize()
    return ClusterResult(portal, horizon)
