"""A replicated web-database portal (extension; cf. [17]).

``ReplicatedPortal`` runs ``n`` independent replicas inside one simulated
environment.  Each replica is a complete single-CPU
:class:`~repro.db.server.DatabaseServer` with its own database, lock
manager, scheduler, and profit ledger.  Updates are *broadcast*: every
replica receives its own copy of each update and applies (or supersedes)
it independently — the paper's data model, where sources push every
update to every replica.  Queries are *routed*: a
:class:`~repro.cluster.routers.Router` picks the replica that serves
each one, and that replica's staleness is what the query observes.

The portal is also where the cluster *degrades* instead of misbehaving
when a :class:`~repro.faults.FaultInjector` crashes replicas:

* a crashed replica stops receiving broadcasts and routed queries, and
  every transaction in flight on it is stranded (fail-stop);
* stranded **queries** enter the failover path: resubmission to a healthy
  replica, hedged (immediate, to the pre-computed backup) when the router
  provides one, otherwise with capped exponential-backoff retries.  A
  failed-over query keeps its original arrival time and lifetime
  deadline, so the crash's lost time is charged against its contract;
* stranded and missed **updates** are logged per replica and replayed on
  recovery — the replica rejoins *stale*, with the re-sync backlog
  visible to QoD-aware routers, and catches up by executing it;
* queries whose retries run out (or that are mid-retry when the run
  ends) are accounted as ``queries_lost_crash`` — their contracts stay in
  the ledger denominators, so crashes cost profit and never shrink the
  totals they are measured against.

The portal aggregates the per-replica ledgers into cluster-level profit
percentages comparable with single-server results.
"""

from __future__ import annotations

import dataclasses
import functools
import typing

from repro.db.admission import AdmissionPolicy
from repro.db.database import Database
from repro.db.server import DatabaseServer, ServerConfig
from repro.db.transactions import Query, Transaction, TxnStatus, Update
from repro.db.wal import DurabilityConfig, WalRecord, WriteAheadLog
from repro.metrics.profit import ProfitLedger
from repro.scheduling.base import Scheduler
from repro.sim import Environment
from repro.sim.invariants import InvariantMonitor
from repro.sim.process import ProcessGenerator
from repro.sim.monitor import CounterSet
from repro.sim.rng import StreamRegistry
from repro.telemetry.hooks import TelemetryKnob, TelemetrySession

from .health import OPEN, CircuitBreaker, FailureDetector, HealthConfig
from .routers import (NoHealthyReplica, RoundRobinRouter, Router)

#: A missed broadcast, kept for recovery re-sync: (exec_ms, item, value).
_MissedUpdate = tuple[float, str, float]

#: A broadcast withheld by a lossy window: (seq, exec_ms, item, value).
_WithheldUpdate = tuple[int, float, str, float]

#: Test-only flag for the chaos harness's planted-bug meta-test: when
#: True, :meth:`ReplicatedPortal.heal_updates` "forgets" the newest
#: dropped update during re-sync — a deliberately broken heal the
#: ``gap_healed`` invariant must catch (and the shrinker must minimise).
#: Never set outside tests; see :mod:`repro.experiments.chaos`.
PLANTED_RESYNC_BUG = False


@dataclasses.dataclass
class RecoveryIncident:
    """One crash→recover→caught-up episode, with its durability cost.

    ``rpo_uu`` is the recovery point objective in the paper's QoD unit:
    applied updates whose durability was lost with the crash (the
    unflushed WAL tail) and had to be re-fetched from the source.
    ``rto_ms`` is the recovery time objective: recovery instant until the
    re-sync backlog fully drained (``None`` while not yet caught up, or
    when the run ended first).  Portal-scope incidents aggregate their
    member replicas' episodes.
    """

    scope: str  # "replica" | "portal"
    replica: int | None
    crashed_at: float
    recovered_at: float | None = None
    rpo_uu: int = 0
    wal_replayed: int = 0
    checkpoint_at: float | None = None
    resynced: int = 0
    resync_txns: list[Update] = dataclasses.field(
        default_factory=list, repr=False)
    members: "list[RecoveryIncident]" = dataclasses.field(
        default_factory=list, repr=False)

    def rto_ms(self) -> float | None:
        """Time from recovery to a fully drained re-sync backlog."""
        if self.recovered_at is None:
            return None
        if self.scope == "portal":
            rtos = [m.rto_ms() for m in self.members]
            if any(r is None for r in rtos):
                return None
            return max(rtos, default=0.0)
        if any(txn.alive for txn in self.resync_txns):
            return None
        if not self.resync_txns:
            return 0.0
        return (max(typing.cast(float, txn.finish_time)
                    for txn in self.resync_txns) - self.recovered_at)

    def as_dict(self) -> dict[str, typing.Any]:
        if self.scope == "portal":
            rpo = max((m.rpo_uu for m in self.members), default=0)
            replayed = sum(m.wal_replayed for m in self.members)
            resynced = sum(m.resynced for m in self.members)
            marks = [m.checkpoint_at for m in self.members
                     if m.checkpoint_at is not None]
            checkpoint_at = max(marks) if marks else None
        else:
            rpo, replayed, resynced, checkpoint_at = (
                self.rpo_uu, self.wal_replayed, self.resynced,
                self.checkpoint_at)
        rto = self.rto_ms()
        return {
            "scope": self.scope,
            "replica": self.replica,
            "crashed_at_ms": self.crashed_at,
            "recovered_at_ms": self.recovered_at,
            "rpo_uu": rpo,
            "wal_replayed": replayed,
            "checkpoint_at_ms": checkpoint_at,
            "resynced": resynced,
            "rto_ms": rto,
            "caught_up": rto is not None,
        }


class ReplicaHandle:
    """One replica: server + ledger, with the cheap state routers read."""

    def __init__(self, index: int, server: DatabaseServer,
                 ledger: ProfitLedger,
                 wal: WriteAheadLog | None = None) -> None:
        self.index = index
        self.server = server
        self.ledger = ledger
        #: The replica's durable trail (None without a durability layer).
        self.wal = wal
        #: Health bit the routers consult; flipped by crash/recover.
        self.up = True
        #: Sim time of the current outage's start (None while up).
        self.crashed_at: float | None = None
        #: Number of crashes suffered so far.
        self.crash_count = 0
        #: Total time spent down (closed outages; finalize closes the
        #: last one if the run ends mid-outage).
        self.downtime_ms = 0.0
        #: Broadcasts missed while down, replayed on recovery.
        self.missed_updates: list[_MissedUpdate] = []
        #: The in-progress crash episode (None while up and caught up).
        self.open_incident: RecoveryIncident | None = None
        #: Newest broadcast sequence number this replica has seen (gap
        #: detection: a jump means the lossy link ate something).
        self.last_seq = 0
        #: Open lossy-window mode (None | "drop" | "delay" | "reorder").
        self.loss_mode: str | None = None
        #: Delivery delay while ``loss_mode == "delay"`` (ms).
        self.loss_delay_ms = 0.0
        #: Broadcasts withheld by a drop/reorder window, re-synced on heal.
        self.withheld: list[_WithheldUpdate] = []
        #: In-flight delayed deliveries: mutable
        #: ``[delivered, exec_ms, item, value, seq]`` entries (flag set
        #: when the timer or heal flush delivers, so the other side
        #: no-ops).
        self.delayed: list[list] = []
        #: Circuit breaker (None unless the portal has a HealthConfig).
        self.breaker: CircuitBreaker | None = None

    def pending_queries(self) -> int:
        return self.server.scheduler.pending_queries()

    def pending_updates(self) -> int:
        return self.server.scheduler.pending_updates()

    def __repr__(self) -> str:
        state = "up" if self.up else "DOWN"
        return (f"<ReplicaHandle #{self.index} {state} "
                f"q={self.pending_queries()} u={self.pending_updates()}>")


class ReplicatedPortal:
    """``n`` replicas behind a query router, sharing one clock."""

    def __init__(self, env: Environment, n_replicas: int,
                 scheduler_factory: typing.Callable[[], Scheduler],
                 streams: StreamRegistry,
                 router: Router | None = None,
                 server_config: ServerConfig | None = None,
                 failover_retries: int = 6,
                 failover_backoff_ms: float = 50.0,
                 durability: DurabilityConfig | None = None,
                 monitor: InvariantMonitor | None = None,
                 telemetry: TelemetryKnob = None,
                 health: HealthConfig | None = None,
                 admission_factory: typing.Callable[
                     [], AdmissionPolicy] | None = None,
                 telemetry_prefix: str = "") -> None:
        if n_replicas <= 0:
            raise ValueError("need at least one replica")
        if failover_retries < 0:
            raise ValueError(
                f"failover_retries must be >= 0, got {failover_retries}")
        if failover_backoff_ms <= 0:
            raise ValueError(
                f"failover_backoff_ms must be positive, "
                f"got {failover_backoff_ms}")
        self.env = env
        self.router = router or RoundRobinRouter()
        self.failover_retries = failover_retries
        self.failover_backoff_ms = failover_backoff_ms
        self.durability = durability
        self.monitor = monitor
        self.health = health
        #: One shared telemetry session across the portal and every
        #: replica: each replica traces under its own ``replicaN`` scope,
        #: cluster incidents under ``portal``.  ``telemetry_prefix``
        #: namespaces the scopes (e.g. ``shard2/``) so several portals
        #: can share one session without lane collisions.
        self.telemetry = TelemetrySession.from_knob(telemetry)
        self.telemetry_prefix = telemetry_prefix
        self._probe = (
            self.telemetry.cluster_probe(f"{telemetry_prefix}portal")
            if self.telemetry is not None else None)
        #: Jittered failover backoff: a dedicated named stream, so retry
        #: storms de-synchronise deterministically.  Stream *creation* is
        #: draw-free — a run that never retries is unaffected.
        self._retry_rng = streams.stream("cluster.retry-backoff")
        #: Reorder-window shuffles draw from their own named stream.
        self._reorder_rng = streams.stream("cluster.reorder")
        #: Global broadcast sequence number (gap detection's clock).
        self._broadcast_seq = 0
        self.replicas: list[ReplicaHandle] = []
        for index in range(n_replicas):
            ledger = ProfitLedger()
            wal = (WriteAheadLog(flush_every=durability.flush_every)
                   if durability is not None else None)
            server = DatabaseServer(
                env, Database(), scheduler_factory(), ledger,
                streams.spawn(f"replica-{index}"),
                config=server_config,
                admission=(admission_factory() if admission_factory
                           is not None else None),
                wal=wal, monitor=monitor,
                telemetry=self.telemetry,
                telemetry_scope=f"{telemetry_prefix}replica{index}")
            self.replicas.append(ReplicaHandle(index, server, ledger, wal))
        #: Gray-failure defenses (only with an attached HealthConfig):
        #: the suspicion detector plus one breaker per replica, all
        #: sharing a single named jitter stream.
        self.detector: FailureDetector | None = None
        if health is not None:
            self.detector = FailureDetector(n_replicas, health)
            breaker_rng = streams.stream("cluster.breaker")
            for handle in self.replicas:
                handle.breaker = CircuitBreaker(health, breaker_rng)
                handle.server.query_outcome_hook = functools.partial(
                    self._on_query_outcome, handle)
        if durability is not None:
            env.process(self._checkpointer(), name="checkpointer")
        #: Queries routed per replica (for balance inspection); failover
        #: resubmissions count as fresh routing decisions.
        self.routed_counts = [0] * n_replicas
        #: Portal-level robustness counters (crashes, failovers, ...),
        #: merged with the per-replica ledgers by :meth:`counters`.
        self.fault_counters = CounterSet()
        #: Queries currently waiting in a failover retry loop, mapped to
        #: the ledger holding their contract's maxima.
        self._retrying: dict[Query, ProfitLedger] = {}
        #: Pre-computed hedge backups (txn_id -> replica index), kept
        #: only when the router nominates backups (HedgedRouter).
        self._backups: dict[int, int] = {}
        #: Every crash episode, in crash order (replica + portal scope).
        self.incidents: list[RecoveryIncident] = []
        #: Closed replica outages as (start, end) spans; finalize closes
        #: the open ones.  The union of these is the portal's true
        #: unavailability (overlapping outages are not double-counted).
        self.outage_spans: list[tuple[float, float]] = []
        #: The in-progress portal-wide outage (None normally).
        self._portal_incident: RecoveryIncident | None = None

    def _observe(self, kind: str, txn: Transaction,
                 **data: typing.Any) -> None:
        """Feed a portal-level lifecycle event to the invariant monitor."""
        if self.monitor is not None:
            self.monitor.record(kind, txn_id=txn.txn_id, **data)

    def _checkpointer(self) -> ProcessGenerator:
        """Periodically checkpoint every live replica (durability only)."""
        interval = typing.cast(
            DurabilityConfig, self.durability).checkpoint_interval_ms
        while True:
            yield self.env.timeout(interval)
            for handle in self.replicas:
                if handle.up:
                    handle.server.take_checkpoint()
                    self.fault_counters.increment("checkpoints_taken")
                    if self._probe is not None:
                        self._probe.checkpoint(self.env.now, handle.index)

    def __repr__(self) -> str:
        up = sum(1 for r in self.replicas if r.up)
        return (f"<ReplicatedPortal n={len(self.replicas)} up={up} "
                f"router={self.router.name}>")

    # ------------------------------------------------------------------
    # Arrivals
    # ------------------------------------------------------------------
    def submit_query(self, query: Query) -> int:
        """Route and submit; returns the serving replica's index.

        When every replica is down the query is not bounced: its contract
        is priced into the intake ledger (replica 0's — the denominators
        must see every submitted contract exactly once) and it enters the
        failover retry loop, hoping for a recovery within its lifetime.
        Returns ``-1`` in that case.
        """
        try:
            index = self.router.choose(query, self.replicas)
        except NoHealthyReplica:
            self._observe("query_submitted", query)
            self.replicas[0].ledger.on_query_submitted(query, self.env.now)
            self.fault_counters.increment("queries_stranded_arrival")
            self._start_failover(query, self.replicas[0].ledger,
                                 backup_index=None)
            return -1
        if not 0 <= index < len(self.replicas):
            raise ValueError(f"router chose invalid replica {index}")
        handle = self.replicas[index]
        if not handle.up:
            raise ValueError(f"router chose dead replica {index}")
        self.routed_counts[index] += 1
        if handle.breaker is not None:
            handle.breaker.record_routed(self.env.now)
        handle.server.submit_query(query)
        if query.alive:  # not rejected by admission control
            self._remember_backup(query, index)
        return index

    def broadcast_update(self, arrival_time: float, exec_ms: float,
                         item: str, value: float) -> None:
        """Every live replica gets its own copy of the update; dead
        replicas log it for re-sync at recovery, and replicas behind a
        lossy broadcast window (the ``drop/delay/reorder_updates`` gray
        faults) see the window's failure mode instead of the update."""
        self._broadcast_seq += 1
        seq = self._broadcast_seq
        for replica in self.replicas:
            if not replica.up:
                replica.missed_updates.append((exec_ms, item, value))
                continue
            mode = replica.loss_mode
            if mode is None:
                self._deliver(replica, seq, arrival_time, exec_ms, item,
                              value)
            elif mode == "delay":
                entry = [False, exec_ms, item, value, seq]
                replica.delayed.append(entry)
                self.fault_counters.increment("updates_delayed")
                self.env.process(
                    self._delayed_delivery(replica, entry),
                    name=f"delayed-update-{seq}-r{replica.index}")
            else:  # "drop" and "reorder" both withhold for the heal
                replica.withheld.append((seq, exec_ms, item, value))
                if mode == "drop":
                    self.fault_counters.increment("updates_dropped_window")

    def _deliver(self, handle: ReplicaHandle, seq: int | None,
                 arrival_time: float, exec_ms: float, item: str,
                 value: float) -> None:
        """Hand one broadcast copy to a replica, with gap detection.

        ``seq`` is the broadcast sequence number (None for re-sync
        deliveries, which must not advance or trip the gap cursor).  A
        jump past ``last_seq + 1`` means the link ate updates; a seq at
        or below the cursor arrived out of order.  Both feed the failure
        detector.  Deliveries can land on a replica that crashed after
        they were scheduled (a delayed entry firing mid-outage); those
        fall through to the missed-updates log like any other broadcast.
        """
        if not handle.up:
            handle.missed_updates.append((exec_ms, item, value))
            return
        if seq is not None:
            last = handle.last_seq
            if seq > last + 1:
                self._note_gap(handle, seq - last - 1)
            elif seq <= last:
                self._note_gap(handle, 1, out_of_order=True)
            if seq > last:
                handle.last_seq = seq
        handle.server.submit_update(
            Update(arrival_time, exec_ms, item, value=value))

    def _delayed_delivery(self, handle: ReplicaHandle,
                          entry: list) -> ProcessGenerator:
        """Timer half of the delay window: deliver one entry late
        (unless a heal flush or window abort beat the timer to it)."""
        yield self.env.timeout(handle.loss_delay_ms)
        if entry[0]:
            return
        entry[0] = True
        now = self.env.now
        self._deliver(handle, entry[4], now, entry[1], entry[2], entry[3])
        # Late delivery is detector-visible evidence even when in-order.
        if self.detector is not None:
            self.detector.observe_gap(handle.index, 1, now)
            self._sync_breaker(handle)

    # ------------------------------------------------------------------
    # Replica lifecycle (driven by the fault injector)
    # ------------------------------------------------------------------
    def crash_replica(self, index: int) -> None:
        """Fail-stop ``index``: strand its in-flight work (idempotent).

        With a durability layer attached the crash is *total*: the
        main-memory store is wiped and the WAL's unflushed tail is lost
        (the incident's RPO).  Without one, the database object
        conveniently survives — the original optimistic fault model.
        """
        handle = self.replicas[index]
        if not handle.up:
            return
        handle.up = False
        handle.crashed_at = self.env.now
        handle.crash_count += 1
        incident = RecoveryIncident(scope="replica", replica=index,
                                    crashed_at=self.env.now)
        handle.open_incident = incident
        self.incidents.append(incident)
        if self._portal_incident is not None:
            self._portal_incident.members.append(incident)
        self.fault_counters.increment("replica_crashes")
        if self._probe is not None:
            self._probe.crash(self.env.now, index)
        stranded = handle.server.crash()
        if handle.wal is not None:
            # The source is durable: the lost tail re-enters as re-sync
            # work.  It goes first — those updates were *applied* before
            # the stranded in-flight ones arrived, and the register table
            # resolves per-item re-sync order by last-write-wins.
            lost = handle.server.lose_volatile_state()
            incident.rpo_uu = len(lost)
            self.fault_counters.increment("wal_records_lost", len(lost))
            for record in lost:
                handle.missed_updates.append(
                    (record.exec_ms, record.item, record.value))
        for txn in stranded:
            if txn.is_query:
                self.fault_counters.increment("queries_failed_over")
                self._start_failover(
                    typing.cast(Query, txn), handle.ledger,
                    backup_index=self._backups.pop(txn.txn_id, None))
            else:
                self._lose_update(typing.cast(Update, txn), handle)
        # A crash closes any open gray-failure incident on the replica:
        # the lossy window's withheld updates become ordinary missed
        # broadcasts (newest re-sync work, after the WAL tail and the
        # stranded in-flight updates above), and the slowdown clears —
        # the repaired replica comes back at nominal rate.
        self._abort_window(handle)
        if handle.server.slowdown != 1.0:
            handle.server.set_slowdown(1.0)
        if handle.breaker is not None and handle.breaker.state != OPEN:
            handle.breaker.trip(self.env.now)
            self.fault_counters.increment("breaker_trips")
            if self._probe is not None:
                self._probe.breaker(self.env.now, index, OPEN)

    def recover_replica(self, index: int) -> None:
        """Repair ``index``: rejoin stale, then catch up (idempotent).

        With a durability layer, recovery first restores the last
        crash-consistent checkpoint and replays the durable WAL tail;
        without one the replica's database kept its pre-crash contents.
        Either way, the broadcasts it missed are replayed now in arrival
        order (the register table collapses per-item duplicates), so it
        rejoins with a visible re-sync backlog and works it off under
        its own scheduler.
        """
        handle = self.replicas[index]
        if handle.up:
            return
        now = self.env.now
        crashed_at = typing.cast(float, handle.crashed_at)
        incident = handle.open_incident
        if handle.wal is not None:
            # Restore BEFORE rejoining.  The CRC scan inside survives
            # silent corruption: the replay truncates at the first bad
            # record and the refused suffix is read-repaired from a
            # healthy peer below, instead of the old fail-stop abort.
            checkpoint, replayed, refused = (
                handle.server.restore_durable_state())
            if incident is not None:
                incident.wal_replayed = replayed
                incident.checkpoint_at = (
                    checkpoint.taken_at if checkpoint is not None else None)
            self.fault_counters.increment("wal_records_replayed", replayed)
            if self._probe is not None:
                self._probe.replay(now, index, replayed)
            if refused:
                self.fault_counters.increment("wal_corruption_detected",
                                              len(refused))
                if self.monitor is not None:
                    self.monitor.record("wal_corruption_detected",
                                        replica=index,
                                        records=len(refused))
                if self._probe is not None:
                    self._probe.corrupt(now, index, len(refused))
                self._read_repair(handle, refused)
        handle.up = True
        handle.last_seq = self._broadcast_seq  # re-sync covers the gap
        handle.downtime_ms += now - crashed_at
        self.outage_spans.append((crashed_at, now))
        handle.crashed_at = None
        self.fault_counters.increment("replica_recoveries")
        handle.server.recover()
        missed, handle.missed_updates = handle.missed_updates, []
        for exec_ms, item, value in missed:
            update = Update(now, exec_ms, item, value=value)
            handle.server.submit_update(update)
            self.fault_counters.increment("updates_resynced")
            if incident is not None:
                incident.resynced += 1
                incident.resync_txns.append(update)
        if incident is not None:
            incident.recovered_at = now
            handle.open_incident = None
        if self._probe is not None:
            self._probe.recover(now, index, len(missed))

    def _lose_update(self, update: Update, handle: ReplicaHandle) -> None:
        """An in-flight update died with its replica; the source is
        durable, so it is queued for re-push at recovery."""
        update.status = TxnStatus.LOST_CRASH
        update.finish_time = self.env.now
        self._observe("update_lost", update)
        if self._probe is not None:
            self._probe.lost(self.env.now, update)
        self.fault_counters.increment("updates_lost_crash")
        handle.missed_updates.append(
            (update.exec_time, update.item, update.value))

    # ------------------------------------------------------------------
    # Gray failures (driven by the fault injector)
    # ------------------------------------------------------------------
    def slow_replica(self, index: int, factor: float) -> None:
        """Gray fault: ``index`` keeps serving, ``factor``x slower."""
        self.replicas[index].server.set_slowdown(factor)
        self.fault_counters.increment("replica_slowdowns")
        if self._probe is not None:
            self._probe.slow(self.env.now, index, factor)

    def restore_replica(self, index: int) -> None:
        """End a slowdown: ``index`` returns to its nominal rate."""
        self.replicas[index].server.set_slowdown(1.0)
        self.fault_counters.increment("replica_restores")
        if self._probe is not None:
            self._probe.slow(self.env.now, index, 1.0)

    def open_update_window(self, index: int, mode: str,
                           delay_ms: float = 0.0) -> None:
        """Open a lossy broadcast window on ``index``.

        ``mode`` is ``"drop"`` (broadcasts silently withheld),
        ``"delay"`` (each delivered ``delay_ms`` late), or ``"reorder"``
        (withheld, then delivered shuffled at the heal).  One window at
        a time per replica — plan validation enforces the exclusivity.
        """
        if mode not in ("drop", "delay", "reorder"):
            raise ValueError(f"unknown loss mode {mode!r}")
        handle = self.replicas[index]
        if handle.loss_mode is not None:
            raise RuntimeError(
                f"replica {index} already has a {handle.loss_mode!r} "
                f"window open")
        if mode == "delay" and delay_ms <= 0:
            raise ValueError(
                f"delay mode needs a positive delay_ms, got {delay_ms}")
        handle.loss_mode = mode
        handle.loss_delay_ms = delay_ms if mode == "delay" else 0.0
        self.fault_counters.increment("update_windows_opened")
        if self._probe is not None:
            self._probe.window(self.env.now, index, mode)

    def heal_updates(self, index: int) -> None:
        """Close the lossy window on ``index`` and re-sync what it lost.

        * **drop** — the gap is now observable (the detector learns the
          full count at once) and every withheld update is re-delivered
          as fresh re-sync work; the ``gap_healed`` invariant holds this
          re-sync to completeness (dropped == re-synced), which is what
          the chaos harness's planted-bug meta-test deliberately breaks.
        * **delay** — pending deliveries flush immediately, in order.
        * **reorder** — the withheld burst is delivered in a shuffled
          order drawn from the named ``cluster.reorder`` stream (the
          out-of-order sequence numbers feed the detector), then
          per-item last-write-wins is restored by re-pushing the
          true-newest value wherever the shuffle left an older one on
          top.
        """
        handle = self.replicas[index]
        mode = handle.loss_mode
        if mode is None:
            return
        handle.loss_mode = None
        now = self.env.now
        resynced = 0
        if mode == "drop":
            withheld, handle.withheld = handle.withheld, []
            dropped = len(withheld)
            if dropped:
                self._note_gap(handle, dropped)
            if PLANTED_RESYNC_BUG and withheld:
                withheld = withheld[:-1]  # the deliberate heal bug
            for _seq, exec_ms, item, value in withheld:
                self._deliver(handle, None, now, exec_ms, item, value)
                resynced += 1
            self.fault_counters.increment("updates_gap_resynced", resynced)
            handle.last_seq = self._broadcast_seq
            if self.monitor is not None:
                self.monitor.record("gap_healed", replica=index,
                                    dropped=dropped, resynced=resynced)
        elif mode == "delay":
            for entry in handle.delayed:
                if not entry[0]:
                    entry[0] = True
                    self._deliver(handle, entry[4], now, entry[1],
                                  entry[2], entry[3])
                    resynced += 1
            handle.delayed = []
        else:  # reorder
            withheld, handle.withheld = handle.withheld, []
            order = list(range(len(withheld)))
            self._reorder_rng.shuffle(order)
            newest: dict[str, _WithheldUpdate] = {}
            last_delivered: dict[str, int] = {}
            for position in order:
                seq, exec_ms, item, value = withheld[position]
                self._deliver(handle, seq, now, exec_ms, item, value)
                last_delivered[item] = seq
                kept = newest.get(item)
                if kept is None or seq > kept[0]:
                    newest[item] = withheld[position]
            for item in sorted(newest):
                seq, exec_ms, _item, value = newest[item]
                if last_delivered[item] != seq:
                    # The shuffle left an older value registered last;
                    # re-push the true-newest one (last-write-wins).
                    self._deliver(handle, None, now, exec_ms, item, value)
                    resynced += 1
            self.fault_counters.increment("updates_reorder_resynced",
                                          resynced)
            handle.last_seq = self._broadcast_seq
        self.fault_counters.increment("update_windows_healed")
        if self._probe is not None:
            self._probe.heal(now, index, mode, resynced)

    def _abort_window(self, handle: ReplicaHandle) -> None:
        """A crash closes any open window: everything the window still
        holds becomes ordinary missed-broadcast re-sync work."""
        mode = handle.loss_mode
        handle.loss_mode = None
        if mode is None and not handle.delayed:
            return
        withheld, handle.withheld = handle.withheld, []
        for _seq, exec_ms, item, value in withheld:
            handle.missed_updates.append((exec_ms, item, value))
        for entry in handle.delayed:
            if not entry[0]:
                entry[0] = True
                handle.missed_updates.append(
                    (entry[1], entry[2], entry[3]))
        handle.delayed = []
        self.fault_counters.increment("update_windows_aborted")

    def corrupt_wal(self, index: int, records: int = 1) -> None:
        """Gray fault: silently damage the newest ``records`` durable WAL
        records of ``index``.  Latent — nothing happens until the
        replica next restores, whose CRC scan refuses the damaged
        suffix and triggers peer read-repair (see
        :meth:`recover_replica`).  A no-op without a durability layer
        or an empty log (sampled schedules corrupt blindly)."""
        handle = self.replicas[index]
        if handle.wal is None:
            self.fault_counters.increment("wal_corruptions_noop")
            return
        damaged = handle.wal.corrupt_tail(records)
        if damaged:
            self.fault_counters.increment("wal_records_corrupted", damaged)
        else:
            self.fault_counters.increment("wal_corruptions_noop")

    def _read_repair(self, handle: ReplicaHandle,
                     refused: list[WalRecord]) -> None:
        """Re-source the items behind refused WAL records from a peer.

        The lowest-indexed healthy replica donates its current applied
        value per item; repairs are *prepended* to the missed-updates
        backlog so that newer missed broadcasts (replayed after) still
        win per-item.  With no healthy peer the items stay unrepaired
        (counted) — the replica rejoins with pre-checkpoint values and
        catches up only through subsequent broadcasts.
        """
        donor = next((peer for peer in self.replicas
                      if peer.up and peer.index != handle.index), None)
        if donor is None:
            self.fault_counters.increment("wal_corrupt_unrepaired",
                                          len(refused))
            return
        repairs: list[_MissedUpdate] = []
        seen: set[str] = set()
        for record in refused:
            if record.item in seen:
                continue
            seen.add(record.item)
            value = donor.server.database.read(record.item)
            repairs.append((record.exec_ms, record.item, value))
        handle.missed_updates[:0] = repairs
        self.fault_counters.increment("wal_corrupt_resynced", len(repairs))

    # ------------------------------------------------------------------
    # Failure detection + circuit breaking (with a HealthConfig)
    # ------------------------------------------------------------------
    def _note_gap(self, handle: ReplicaHandle, missed: int,
                  out_of_order: bool = False) -> None:
        self.fault_counters.increment(
            "broadcast_out_of_order" if out_of_order else "broadcast_gaps",
            missed)
        if self._probe is not None:
            self._probe.gap(self.env.now, handle.index, missed,
                            out_of_order)
        if self.detector is not None:
            self.detector.observe_gap(handle.index, missed, self.env.now)
            self._sync_breaker(handle)

    def _sync_breaker(self, handle: ReplicaHandle) -> None:
        """Non-query evidence arrived: let a CLOSED breaker trip on it."""
        breaker = handle.breaker
        if breaker is None:
            return
        detector = typing.cast(FailureDetector, self.detector)
        before = breaker.state
        breaker.note_suspicion(
            self.env.now, detector.suspicion(handle.index, self.env.now))
        if breaker.state is not before and breaker.state == OPEN:
            self.fault_counters.increment("breaker_trips")
            if self._probe is not None:
                self._probe.breaker(self.env.now, handle.index, OPEN)

    def _on_query_outcome(self, handle: ReplicaHandle, query: Query,
                          ok: bool) -> None:
        """Server callback: one query finished (or died) on ``handle``."""
        now = self.env.now
        detector = typing.cast(FailureDetector, self.detector)
        if ok:
            detector.observe_response(handle.index, query.response_time(),
                                      now)
        else:
            detector.observe_failure(handle.index, now)
        breaker = typing.cast(CircuitBreaker, handle.breaker)
        before = breaker.state
        breaker.observe(now, ok, detector.suspicion(handle.index, now))
        after = breaker.state
        if after is not before:
            if after == OPEN:
                self.fault_counters.increment("breaker_trips")
            elif before == OPEN:  # OPEN -> HALF_OPEN probe consumed
                self.fault_counters.increment("breaker_probes")
            else:
                self.fault_counters.increment("breaker_closes")
            if self._probe is not None:
                self._probe.breaker(now, handle.index, after)

    # ------------------------------------------------------------------
    # Query failover
    # ------------------------------------------------------------------
    def _remember_backup(self, query: Query, primary: int) -> None:
        choose_backup = getattr(self.router, "choose_backup", None)
        if choose_backup is None:
            return
        backup = choose_backup(query, self.replicas, primary)
        if backup is not None:
            self._backups[query.txn_id] = backup
        else:
            self._backups.pop(query.txn_id, None)

    def _start_failover(self, query: Query, ledger: ProfitLedger,
                        backup_index: int | None) -> None:
        query.status = TxnStatus.CREATED  # between servers again
        self._retrying[query] = ledger
        if self._probe is not None:
            self._probe.failover(self.env.now, query)
        self.env.process(self._failover(query, ledger, backup_index),
                         name=f"failover-{query.txn_id}")

    def _failover(self, query: Query, ledger: ProfitLedger,
                  backup_index: int | None) -> ProcessGenerator:
        # Hedge: the router pre-nominated a backup — resubmit immediately.
        if backup_index is not None and self.replicas[backup_index].up:
            self._adopt(query, backup_index)
            return
        for attempt in range(self.failover_retries):
            # Jittered exponential backoff from the named
            # ``cluster.retry-backoff`` stream: stranded queries spread
            # out instead of stampeding the survivors in lock-step.
            yield self.env.timeout(
                self.failover_backoff_ms * (2.0 ** attempt)
                * self._retry_rng.uniform(0.5, 1.5))
            if query.past_lifetime(self.env.now):
                break  # the crash ate the contract's whole lifetime
            try:
                index = self.router.choose(query, self.replicas)
            except NoHealthyReplica:
                continue
            self._adopt(query, index)
            return
        self._lose_query(query, ledger)

    def _adopt(self, query: Query, index: int) -> None:
        """Resubmit a stranded query to replica ``index``."""
        if query.remaining != query.exec_time:
            query.reset_for_restart()  # partial work died with the crash
        del self._retrying[query]
        self.routed_counts[index] += 1
        self.fault_counters.increment("query_retries")
        if self._probe is not None:
            self._probe.adopt(self.env.now, query, index)
        handle = self.replicas[index]
        if handle.breaker is not None:
            handle.breaker.record_routed(self.env.now)
        handle.server.adopt_query(query)
        if query.alive:
            self._remember_backup(query, index)

    def _lose_query(self, query: Query, ledger: ProfitLedger) -> None:
        del self._retrying[query]
        self._backups.pop(query.txn_id, None)
        query.status = TxnStatus.LOST_CRASH
        query.finish_time = self.env.now
        ledger.on_query_lost_to_crash(query, self.env.now)
        self._observe("query_lost", query)
        if self._probe is not None:
            self._probe.lost(self.env.now, query)

    # ------------------------------------------------------------------
    # Portal-wide outage (the ``portal_crash`` fault kind)
    # ------------------------------------------------------------------
    def crash_portal(self) -> None:
        """Fail-stop the whole portal: every replica goes down at once.

        A portal-scope :class:`RecoveryIncident` is opened; the member
        replicas' episodes aggregate into it (a replica already down
        keeps its own open episode and joins as a member).  Idempotent.
        """
        if self._portal_incident is not None:
            return
        incident = RecoveryIncident(scope="portal", replica=None,
                                    crashed_at=self.env.now)
        self.incidents.append(incident)
        self._portal_incident = incident
        self.fault_counters.increment("portal_crashes")
        if self._probe is not None:
            self._probe.crash(self.env.now, None)
        for handle in self.replicas:
            if handle.up:
                self.crash_replica(handle.index)  # appends to members
            elif handle.open_incident is not None:
                incident.members.append(handle.open_incident)

    def recover_portal(self) -> None:
        """End a portal-wide outage: recover every downed replica."""
        incident = self._portal_incident
        if incident is None:
            return
        self._portal_incident = None
        for handle in self.replicas:
            if not handle.up:
                self.recover_replica(handle.index)
        incident.recovered_at = self.env.now
        self.fault_counters.increment("portal_recoveries")
        if self._probe is not None:
            self._probe.recover(self.env.now, None, 0)

    # ------------------------------------------------------------------
    def finalize(self) -> None:
        now = self.env.now
        for replica in self.replicas:
            if not replica.up and replica.crashed_at is not None:
                replica.downtime_ms += now - replica.crashed_at
                self.outage_spans.append((replica.crashed_at, now))
                replica.crashed_at = now  # keep a second finalize additive
        # Queries parked in a backoff when the horizon hit: lost, not
        # vanished — their contracts stay in the denominators.
        for query, ledger in list(self._retrying.items()):
            self._lose_query(query, ledger)
        for replica in self.replicas:
            replica.server.finalize()

    # ------------------------------------------------------------------
    # Shard support: adoption, staleness probes, and state transfer
    # ------------------------------------------------------------------
    def adopt_query(self, query: Query) -> int:
        """Route and enqueue a query whose contract is priced elsewhere.

        The shard planner's fan-out sub-queries arrive here: their
        (scaled, shadow-priced) contracts must stay out of this portal's
        denominators — the parent contract is priced exactly once by the
        coordinating layer.  Routing, breaker bookkeeping, and the
        failover retry loop behave exactly as in :meth:`submit_query`;
        only the ledger pricing differs.  Returns the serving replica's
        index, or ``-1`` when the query entered the failover loop.
        """
        try:
            index = self.router.choose(query, self.replicas)
        except NoHealthyReplica:
            self.fault_counters.increment("queries_stranded_arrival")
            self._start_failover(query, self.replicas[0].ledger,
                                 backup_index=None)
            return -1
        if not 0 <= index < len(self.replicas):
            raise ValueError(f"router chose invalid replica {index}")
        handle = self.replicas[index]
        if not handle.up:
            raise ValueError(f"router chose dead replica {index}")
        self.routed_counts[index] += 1
        if handle.breaker is not None:
            handle.breaker.record_routed(self.env.now)
        handle.server.adopt_query(query)
        if query.alive:
            self._remember_backup(query, index)
        return index

    def staleness_age(self, key: str) -> float:
        """Simulated-time age of ``key``'s oldest unapplied update on the
        *freshest* live replica (the copy a router would want to serve
        from).  0.0 when some live replica is fully caught up on ``key``
        — or when every replica is down (routing, not freshness, is the
        problem then).
        """
        now = self.env.now
        best: float | None = None
        for replica in self.replicas:
            if not replica.up:
                continue
            age = replica.server.database.staleness_age(key, now)
            if best is None or age < best:
                best = age
        return best if best is not None else 0.0

    def export_items(self, keys: typing.Iterable[str]) -> dict[str, tuple]:
        """Partial state snapshot for ``keys`` from the first live
        replica (the migration donor)."""
        for replica in self.replicas:
            if replica.up:
                return replica.server.database.export_items(keys)
        raise NoHealthyReplica("no live replica to export from")

    def import_items(self, snapshot: dict[str, tuple]) -> None:
        """Install a partial snapshot on every replica (migration copy).

        Every replica gets the items — within a shard the keyspace is
        fully replicated.  A replica that is down mid-migration converges
        through the normal update stream once it recovers (values are
        refreshed by subsequent updates exactly as after any outage).
        """
        for replica in self.replicas:
            replica.server.database.import_items(snapshot)

    def pending_update_for(self, key: str) -> bool:
        """True while any live replica still has a pending (registered,
        unapplied) update for ``key`` — the migration drain predicate."""
        for replica in self.replicas:
            if not replica.up:
                continue
            if replica.server.database.pending_update(key) is not None:
                return True
        return False

    # ------------------------------------------------------------------
    # Cluster-level aggregates
    # ------------------------------------------------------------------
    @property
    def total_max(self) -> float:
        return sum(r.ledger.total_max for r in self.replicas)

    @property
    def total_gained(self) -> float:
        return sum(r.ledger.total_gained for r in self.replicas)

    @property
    def total_percent(self) -> float:
        total_max = self.total_max
        return self.total_gained / total_max if total_max else 0.0

    @property
    def qos_percent(self) -> float:
        total_max = self.total_max
        if not total_max:
            return 0.0
        return sum(r.ledger.qos_gained for r in self.replicas) / total_max

    @property
    def qod_percent(self) -> float:
        total_max = self.total_max
        if not total_max:
            return 0.0
        return sum(r.ledger.qod_gained for r in self.replicas) / total_max

    @property
    def total_downtime_ms(self) -> float:
        """Replica-milliseconds of unavailability accrued so far."""
        now = self.env.now
        total = 0.0
        for replica in self.replicas:
            total += replica.downtime_ms
            if not replica.up and replica.crashed_at is not None:
                total += now - replica.crashed_at
        return total

    def downtime_union_ms(self) -> float:
        """Wall-clock time with *at least one* replica down.

        The union of the outage intervals — concurrent outages (a portal
        crash, or overlapping per-replica ones) are counted once, unlike
        the replica-ms sum of :attr:`total_downtime_ms`.  Spans still
        open (replica down right now) are closed at the current clock.
        """
        now = self.env.now
        spans = list(self.outage_spans)
        for replica in self.replicas:
            if not replica.up and replica.crashed_at is not None:
                spans.append((replica.crashed_at, now))
        if not spans:
            return 0.0
        spans.sort()
        total = 0.0
        cur_start, cur_end = spans[0]
        for start, end in spans[1:]:
            if start > cur_end:
                total += cur_end - cur_start
                cur_start, cur_end = start, end
            else:
                cur_end = max(cur_end, end)
        return total + (cur_end - cur_start)

    def mean_response_time(self) -> float:
        """Committed-query mean over the whole cluster."""
        count = sum(r.ledger.response_time.count for r in self.replicas)
        if not count:
            return 0.0
        return sum(r.ledger.response_time.total
                   for r in self.replicas) / count

    def counters(self) -> dict[str, int]:
        combined: dict[str, int] = dict(self.fault_counters.as_dict())
        for replica in self.replicas:
            for key, value in replica.ledger.counters.as_dict().items():
                combined[key] = combined.get(key, 0) + value
        return combined
