"""A replicated web-database portal (extension; cf. [17]).

``ReplicatedPortal`` runs ``n`` independent replicas inside one simulated
environment.  Each replica is a complete single-CPU
:class:`~repro.db.server.DatabaseServer` with its own database, lock
manager, scheduler, and profit ledger.  Updates are *broadcast*: every
replica receives its own copy of each update and applies (or supersedes)
it independently — the paper's data model, where sources push every
update to every replica.  Queries are *routed*: a
:class:`~repro.cluster.routers.Router` picks the replica that serves
each one, and that replica's staleness is what the query observes.

The portal aggregates the per-replica ledgers into cluster-level profit
percentages comparable with single-server results.
"""

from __future__ import annotations

import typing

from repro.db.database import Database
from repro.db.server import DatabaseServer, ServerConfig
from repro.db.transactions import Query, Update
from repro.metrics.profit import ProfitLedger
from repro.scheduling.base import Scheduler
from repro.sim import Environment
from repro.sim.rng import StreamRegistry

from .routers import Router, RoundRobinRouter


class ReplicaHandle:
    """One replica: server + ledger, with the cheap state routers read."""

    def __init__(self, index: int, server: DatabaseServer,
                 ledger: ProfitLedger) -> None:
        self.index = index
        self.server = server
        self.ledger = ledger

    def pending_queries(self) -> int:
        return self.server.scheduler.pending_queries()

    def pending_updates(self) -> int:
        return self.server.scheduler.pending_updates()

    def __repr__(self) -> str:
        return (f"<ReplicaHandle #{self.index} "
                f"q={self.pending_queries()} u={self.pending_updates()}>")


class ReplicatedPortal:
    """``n`` replicas behind a query router, sharing one clock."""

    def __init__(self, env: Environment, n_replicas: int,
                 scheduler_factory: typing.Callable[[], Scheduler],
                 streams: StreamRegistry,
                 router: Router | None = None,
                 server_config: ServerConfig | None = None) -> None:
        if n_replicas <= 0:
            raise ValueError("need at least one replica")
        self.env = env
        self.router = router or RoundRobinRouter()
        self.replicas: list[ReplicaHandle] = []
        for index in range(n_replicas):
            ledger = ProfitLedger()
            server = DatabaseServer(
                env, Database(), scheduler_factory(), ledger,
                streams.spawn(f"replica-{index}"),
                config=server_config)
            self.replicas.append(ReplicaHandle(index, server, ledger))
        #: Queries routed per replica (for balance inspection).
        self.routed_counts = [0] * n_replicas

    def __repr__(self) -> str:
        return (f"<ReplicatedPortal n={len(self.replicas)} "
                f"router={self.router.name}>")

    # ------------------------------------------------------------------
    def submit_query(self, query: Query) -> int:
        """Route and submit; returns the serving replica's index."""
        index = self.router.choose(query, self.replicas)
        if not 0 <= index < len(self.replicas):
            raise ValueError(f"router chose invalid replica {index}")
        self.routed_counts[index] += 1
        self.replicas[index].server.submit_query(query)
        return index

    def broadcast_update(self, arrival_time: float, exec_ms: float,
                         item: str, value: float) -> None:
        """Every replica gets its own copy of the update."""
        for replica in self.replicas:
            replica.server.submit_update(
                Update(arrival_time, exec_ms, item, value=value))

    def finalize(self) -> None:
        for replica in self.replicas:
            replica.server.finalize()

    # ------------------------------------------------------------------
    # Cluster-level aggregates
    # ------------------------------------------------------------------
    @property
    def total_max(self) -> float:
        return sum(r.ledger.total_max for r in self.replicas)

    @property
    def total_gained(self) -> float:
        return sum(r.ledger.total_gained for r in self.replicas)

    @property
    def total_percent(self) -> float:
        total_max = self.total_max
        return self.total_gained / total_max if total_max else 0.0

    @property
    def qos_percent(self) -> float:
        total_max = self.total_max
        if not total_max:
            return 0.0
        return sum(r.ledger.qos_gained for r in self.replicas) / total_max

    @property
    def qod_percent(self) -> float:
        total_max = self.total_max
        if not total_max:
            return 0.0
        return sum(r.ledger.qod_gained for r in self.replicas) / total_max

    def mean_response_time(self) -> float:
        """Committed-query mean over the whole cluster."""
        count = sum(r.ledger.response_time.count for r in self.replicas)
        if not count:
            return 0.0
        return sum(r.ledger.response_time.total
                   for r in self.replicas) / count

    def counters(self) -> dict[str, int]:
        combined: dict[str, int] = {}
        for replica in self.replicas:
            for key, value in replica.ledger.counters.as_dict().items():
                combined[key] = combined.get(key, 0) + value
        return combined
