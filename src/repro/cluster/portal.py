"""A replicated web-database portal (extension; cf. [17]).

``ReplicatedPortal`` runs ``n`` independent replicas inside one simulated
environment.  Each replica is a complete single-CPU
:class:`~repro.db.server.DatabaseServer` with its own database, lock
manager, scheduler, and profit ledger.  Updates are *broadcast*: every
replica receives its own copy of each update and applies (or supersedes)
it independently — the paper's data model, where sources push every
update to every replica.  Queries are *routed*: a
:class:`~repro.cluster.routers.Router` picks the replica that serves
each one, and that replica's staleness is what the query observes.

The portal is also where the cluster *degrades* instead of misbehaving
when a :class:`~repro.faults.FaultInjector` crashes replicas:

* a crashed replica stops receiving broadcasts and routed queries, and
  every transaction in flight on it is stranded (fail-stop);
* stranded **queries** enter the failover path: resubmission to a healthy
  replica, hedged (immediate, to the pre-computed backup) when the router
  provides one, otherwise with capped exponential-backoff retries.  A
  failed-over query keeps its original arrival time and lifetime
  deadline, so the crash's lost time is charged against its contract;
* stranded and missed **updates** are logged per replica and replayed on
  recovery — the replica rejoins *stale*, with the re-sync backlog
  visible to QoD-aware routers, and catches up by executing it;
* queries whose retries run out (or that are mid-retry when the run
  ends) are accounted as ``queries_lost_crash`` — their contracts stay in
  the ledger denominators, so crashes cost profit and never shrink the
  totals they are measured against.

The portal aggregates the per-replica ledgers into cluster-level profit
percentages comparable with single-server results.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.db.database import Database
from repro.db.server import DatabaseServer, ServerConfig
from repro.db.transactions import Query, Transaction, TxnStatus, Update
from repro.db.wal import DurabilityConfig, WriteAheadLog
from repro.metrics.profit import ProfitLedger
from repro.scheduling.base import Scheduler
from repro.sim import Environment
from repro.sim.invariants import InvariantMonitor
from repro.sim.process import ProcessGenerator
from repro.sim.monitor import CounterSet
from repro.sim.rng import StreamRegistry
from repro.telemetry.hooks import TelemetryKnob, TelemetrySession

from .routers import (NoHealthyReplica, RoundRobinRouter, Router)

#: A missed broadcast, kept for recovery re-sync: (exec_ms, item, value).
_MissedUpdate = tuple[float, str, float]


@dataclasses.dataclass
class RecoveryIncident:
    """One crash→recover→caught-up episode, with its durability cost.

    ``rpo_uu`` is the recovery point objective in the paper's QoD unit:
    applied updates whose durability was lost with the crash (the
    unflushed WAL tail) and had to be re-fetched from the source.
    ``rto_ms`` is the recovery time objective: recovery instant until the
    re-sync backlog fully drained (``None`` while not yet caught up, or
    when the run ended first).  Portal-scope incidents aggregate their
    member replicas' episodes.
    """

    scope: str  # "replica" | "portal"
    replica: int | None
    crashed_at: float
    recovered_at: float | None = None
    rpo_uu: int = 0
    wal_replayed: int = 0
    checkpoint_at: float | None = None
    resynced: int = 0
    resync_txns: list[Update] = dataclasses.field(
        default_factory=list, repr=False)
    members: "list[RecoveryIncident]" = dataclasses.field(
        default_factory=list, repr=False)

    def rto_ms(self) -> float | None:
        """Time from recovery to a fully drained re-sync backlog."""
        if self.recovered_at is None:
            return None
        if self.scope == "portal":
            rtos = [m.rto_ms() for m in self.members]
            if any(r is None for r in rtos):
                return None
            return max(rtos, default=0.0)
        if any(txn.alive for txn in self.resync_txns):
            return None
        if not self.resync_txns:
            return 0.0
        return (max(typing.cast(float, txn.finish_time)
                    for txn in self.resync_txns) - self.recovered_at)

    def as_dict(self) -> dict[str, typing.Any]:
        if self.scope == "portal":
            rpo = max((m.rpo_uu for m in self.members), default=0)
            replayed = sum(m.wal_replayed for m in self.members)
            resynced = sum(m.resynced for m in self.members)
            marks = [m.checkpoint_at for m in self.members
                     if m.checkpoint_at is not None]
            checkpoint_at = max(marks) if marks else None
        else:
            rpo, replayed, resynced, checkpoint_at = (
                self.rpo_uu, self.wal_replayed, self.resynced,
                self.checkpoint_at)
        rto = self.rto_ms()
        return {
            "scope": self.scope,
            "replica": self.replica,
            "crashed_at_ms": self.crashed_at,
            "recovered_at_ms": self.recovered_at,
            "rpo_uu": rpo,
            "wal_replayed": replayed,
            "checkpoint_at_ms": checkpoint_at,
            "resynced": resynced,
            "rto_ms": rto,
            "caught_up": rto is not None,
        }


class ReplicaHandle:
    """One replica: server + ledger, with the cheap state routers read."""

    def __init__(self, index: int, server: DatabaseServer,
                 ledger: ProfitLedger,
                 wal: WriteAheadLog | None = None) -> None:
        self.index = index
        self.server = server
        self.ledger = ledger
        #: The replica's durable trail (None without a durability layer).
        self.wal = wal
        #: Health bit the routers consult; flipped by crash/recover.
        self.up = True
        #: Sim time of the current outage's start (None while up).
        self.crashed_at: float | None = None
        #: Number of crashes suffered so far.
        self.crash_count = 0
        #: Total time spent down (closed outages; finalize closes the
        #: last one if the run ends mid-outage).
        self.downtime_ms = 0.0
        #: Broadcasts missed while down, replayed on recovery.
        self.missed_updates: list[_MissedUpdate] = []
        #: The in-progress crash episode (None while up and caught up).
        self.open_incident: RecoveryIncident | None = None

    def pending_queries(self) -> int:
        return self.server.scheduler.pending_queries()

    def pending_updates(self) -> int:
        return self.server.scheduler.pending_updates()

    def __repr__(self) -> str:
        state = "up" if self.up else "DOWN"
        return (f"<ReplicaHandle #{self.index} {state} "
                f"q={self.pending_queries()} u={self.pending_updates()}>")


class ReplicatedPortal:
    """``n`` replicas behind a query router, sharing one clock."""

    def __init__(self, env: Environment, n_replicas: int,
                 scheduler_factory: typing.Callable[[], Scheduler],
                 streams: StreamRegistry,
                 router: Router | None = None,
                 server_config: ServerConfig | None = None,
                 failover_retries: int = 6,
                 failover_backoff_ms: float = 50.0,
                 durability: DurabilityConfig | None = None,
                 monitor: InvariantMonitor | None = None,
                 telemetry: TelemetryKnob = None) -> None:
        if n_replicas <= 0:
            raise ValueError("need at least one replica")
        if failover_retries < 0:
            raise ValueError(
                f"failover_retries must be >= 0, got {failover_retries}")
        if failover_backoff_ms <= 0:
            raise ValueError(
                f"failover_backoff_ms must be positive, "
                f"got {failover_backoff_ms}")
        self.env = env
        self.router = router or RoundRobinRouter()
        self.failover_retries = failover_retries
        self.failover_backoff_ms = failover_backoff_ms
        self.durability = durability
        self.monitor = monitor
        #: One shared telemetry session across the portal and every
        #: replica: each replica traces under its own ``replicaN`` scope,
        #: cluster incidents under ``portal``.
        self.telemetry = TelemetrySession.from_knob(telemetry)
        self._probe = (self.telemetry.cluster_probe("portal")
                       if self.telemetry is not None else None)
        self.replicas: list[ReplicaHandle] = []
        for index in range(n_replicas):
            ledger = ProfitLedger()
            wal = (WriteAheadLog(flush_every=durability.flush_every)
                   if durability is not None else None)
            server = DatabaseServer(
                env, Database(), scheduler_factory(), ledger,
                streams.spawn(f"replica-{index}"),
                config=server_config, wal=wal, monitor=monitor,
                telemetry=self.telemetry,
                telemetry_scope=f"replica{index}")
            self.replicas.append(ReplicaHandle(index, server, ledger, wal))
        if durability is not None:
            env.process(self._checkpointer(), name="checkpointer")
        #: Queries routed per replica (for balance inspection); failover
        #: resubmissions count as fresh routing decisions.
        self.routed_counts = [0] * n_replicas
        #: Portal-level robustness counters (crashes, failovers, ...),
        #: merged with the per-replica ledgers by :meth:`counters`.
        self.fault_counters = CounterSet()
        #: Queries currently waiting in a failover retry loop, mapped to
        #: the ledger holding their contract's maxima.
        self._retrying: dict[Query, ProfitLedger] = {}
        #: Pre-computed hedge backups (txn_id -> replica index), kept
        #: only when the router nominates backups (HedgedRouter).
        self._backups: dict[int, int] = {}
        #: Every crash episode, in crash order (replica + portal scope).
        self.incidents: list[RecoveryIncident] = []
        #: Closed replica outages as (start, end) spans; finalize closes
        #: the open ones.  The union of these is the portal's true
        #: unavailability (overlapping outages are not double-counted).
        self.outage_spans: list[tuple[float, float]] = []
        #: The in-progress portal-wide outage (None normally).
        self._portal_incident: RecoveryIncident | None = None

    def _observe(self, kind: str, txn: Transaction,
                 **data: typing.Any) -> None:
        """Feed a portal-level lifecycle event to the invariant monitor."""
        if self.monitor is not None:
            self.monitor.record(kind, txn_id=txn.txn_id, **data)

    def _checkpointer(self) -> ProcessGenerator:
        """Periodically checkpoint every live replica (durability only)."""
        interval = typing.cast(
            DurabilityConfig, self.durability).checkpoint_interval_ms
        while True:
            yield self.env.timeout(interval)
            for handle in self.replicas:
                if handle.up:
                    handle.server.take_checkpoint()
                    self.fault_counters.increment("checkpoints_taken")
                    if self._probe is not None:
                        self._probe.checkpoint(self.env.now, handle.index)

    def __repr__(self) -> str:
        up = sum(1 for r in self.replicas if r.up)
        return (f"<ReplicatedPortal n={len(self.replicas)} up={up} "
                f"router={self.router.name}>")

    # ------------------------------------------------------------------
    # Arrivals
    # ------------------------------------------------------------------
    def submit_query(self, query: Query) -> int:
        """Route and submit; returns the serving replica's index.

        When every replica is down the query is not bounced: its contract
        is priced into the intake ledger (replica 0's — the denominators
        must see every submitted contract exactly once) and it enters the
        failover retry loop, hoping for a recovery within its lifetime.
        Returns ``-1`` in that case.
        """
        try:
            index = self.router.choose(query, self.replicas)
        except NoHealthyReplica:
            self._observe("query_submitted", query)
            self.replicas[0].ledger.on_query_submitted(query, self.env.now)
            self.fault_counters.increment("queries_stranded_arrival")
            self._start_failover(query, self.replicas[0].ledger,
                                 backup_index=None)
            return -1
        if not 0 <= index < len(self.replicas):
            raise ValueError(f"router chose invalid replica {index}")
        handle = self.replicas[index]
        if not handle.up:
            raise ValueError(f"router chose dead replica {index}")
        self.routed_counts[index] += 1
        handle.server.submit_query(query)
        if query.alive:  # not rejected by admission control
            self._remember_backup(query, index)
        return index

    def broadcast_update(self, arrival_time: float, exec_ms: float,
                         item: str, value: float) -> None:
        """Every live replica gets its own copy of the update; dead
        replicas log it for re-sync at recovery."""
        for replica in self.replicas:
            if replica.up:
                replica.server.submit_update(
                    Update(arrival_time, exec_ms, item, value=value))
            else:
                replica.missed_updates.append((exec_ms, item, value))

    # ------------------------------------------------------------------
    # Replica lifecycle (driven by the fault injector)
    # ------------------------------------------------------------------
    def crash_replica(self, index: int) -> None:
        """Fail-stop ``index``: strand its in-flight work (idempotent).

        With a durability layer attached the crash is *total*: the
        main-memory store is wiped and the WAL's unflushed tail is lost
        (the incident's RPO).  Without one, the database object
        conveniently survives — the original optimistic fault model.
        """
        handle = self.replicas[index]
        if not handle.up:
            return
        handle.up = False
        handle.crashed_at = self.env.now
        handle.crash_count += 1
        incident = RecoveryIncident(scope="replica", replica=index,
                                    crashed_at=self.env.now)
        handle.open_incident = incident
        self.incidents.append(incident)
        if self._portal_incident is not None:
            self._portal_incident.members.append(incident)
        self.fault_counters.increment("replica_crashes")
        if self._probe is not None:
            self._probe.crash(self.env.now, index)
        stranded = handle.server.crash()
        if handle.wal is not None:
            # The source is durable: the lost tail re-enters as re-sync
            # work.  It goes first — those updates were *applied* before
            # the stranded in-flight ones arrived, and the register table
            # resolves per-item re-sync order by last-write-wins.
            lost = handle.server.lose_volatile_state()
            incident.rpo_uu = len(lost)
            self.fault_counters.increment("wal_records_lost", len(lost))
            for record in lost:
                handle.missed_updates.append(
                    (record.exec_ms, record.item, record.value))
        for txn in stranded:
            if txn.is_query:
                self.fault_counters.increment("queries_failed_over")
                self._start_failover(
                    typing.cast(Query, txn), handle.ledger,
                    backup_index=self._backups.pop(txn.txn_id, None))
            else:
                self._lose_update(typing.cast(Update, txn), handle)

    def recover_replica(self, index: int) -> None:
        """Repair ``index``: rejoin stale, then catch up (idempotent).

        With a durability layer, recovery first restores the last
        crash-consistent checkpoint and replays the durable WAL tail;
        without one the replica's database kept its pre-crash contents.
        Either way, the broadcasts it missed are replayed now in arrival
        order (the register table collapses per-item duplicates), so it
        rejoins with a visible re-sync backlog and works it off under
        its own scheduler.
        """
        handle = self.replicas[index]
        if handle.up:
            return
        now = self.env.now
        crashed_at = typing.cast(float, handle.crashed_at)
        incident = handle.open_incident
        if handle.wal is not None:
            # Restore BEFORE rejoining: a corrupt WAL aborts recovery
            # here and the replica stays down (fail-stop), instead of
            # re-entering rotation with a dead server behind it.
            checkpoint, replayed = handle.server.restore_durable_state()
            if incident is not None:
                incident.wal_replayed = replayed
                incident.checkpoint_at = (
                    checkpoint.taken_at if checkpoint is not None else None)
            self.fault_counters.increment("wal_records_replayed", replayed)
            if self._probe is not None:
                self._probe.replay(now, index, replayed)
        handle.up = True
        handle.downtime_ms += now - crashed_at
        self.outage_spans.append((crashed_at, now))
        handle.crashed_at = None
        self.fault_counters.increment("replica_recoveries")
        handle.server.recover()
        missed, handle.missed_updates = handle.missed_updates, []
        for exec_ms, item, value in missed:
            update = Update(now, exec_ms, item, value=value)
            handle.server.submit_update(update)
            self.fault_counters.increment("updates_resynced")
            if incident is not None:
                incident.resynced += 1
                incident.resync_txns.append(update)
        if incident is not None:
            incident.recovered_at = now
            handle.open_incident = None
        if self._probe is not None:
            self._probe.recover(now, index, len(missed))

    def _lose_update(self, update: Update, handle: ReplicaHandle) -> None:
        """An in-flight update died with its replica; the source is
        durable, so it is queued for re-push at recovery."""
        update.status = TxnStatus.LOST_CRASH
        update.finish_time = self.env.now
        self._observe("update_lost", update)
        if self._probe is not None:
            self._probe.lost(self.env.now, update)
        self.fault_counters.increment("updates_lost_crash")
        handle.missed_updates.append(
            (update.exec_time, update.item, update.value))

    # ------------------------------------------------------------------
    # Query failover
    # ------------------------------------------------------------------
    def _remember_backup(self, query: Query, primary: int) -> None:
        choose_backup = getattr(self.router, "choose_backup", None)
        if choose_backup is None:
            return
        backup = choose_backup(query, self.replicas, primary)
        if backup is not None:
            self._backups[query.txn_id] = backup
        else:
            self._backups.pop(query.txn_id, None)

    def _start_failover(self, query: Query, ledger: ProfitLedger,
                        backup_index: int | None) -> None:
        query.status = TxnStatus.CREATED  # between servers again
        self._retrying[query] = ledger
        if self._probe is not None:
            self._probe.failover(self.env.now, query)
        self.env.process(self._failover(query, ledger, backup_index),
                         name=f"failover-{query.txn_id}")

    def _failover(self, query: Query, ledger: ProfitLedger,
                  backup_index: int | None) -> ProcessGenerator:
        # Hedge: the router pre-nominated a backup — resubmit immediately.
        if backup_index is not None and self.replicas[backup_index].up:
            self._adopt(query, backup_index)
            return
        for attempt in range(self.failover_retries):
            yield self.env.timeout(
                self.failover_backoff_ms * (2.0 ** attempt))
            if query.past_lifetime(self.env.now):
                break  # the crash ate the contract's whole lifetime
            try:
                index = self.router.choose(query, self.replicas)
            except NoHealthyReplica:
                continue
            self._adopt(query, index)
            return
        self._lose_query(query, ledger)

    def _adopt(self, query: Query, index: int) -> None:
        """Resubmit a stranded query to replica ``index``."""
        if query.remaining != query.exec_time:
            query.reset_for_restart()  # partial work died with the crash
        del self._retrying[query]
        self.routed_counts[index] += 1
        self.fault_counters.increment("query_retries")
        if self._probe is not None:
            self._probe.adopt(self.env.now, query, index)
        self.replicas[index].server.adopt_query(query)
        if query.alive:
            self._remember_backup(query, index)

    def _lose_query(self, query: Query, ledger: ProfitLedger) -> None:
        del self._retrying[query]
        self._backups.pop(query.txn_id, None)
        query.status = TxnStatus.LOST_CRASH
        query.finish_time = self.env.now
        ledger.on_query_lost_to_crash(query, self.env.now)
        self._observe("query_lost", query)
        if self._probe is not None:
            self._probe.lost(self.env.now, query)

    # ------------------------------------------------------------------
    # Portal-wide outage (the ``portal_crash`` fault kind)
    # ------------------------------------------------------------------
    def crash_portal(self) -> None:
        """Fail-stop the whole portal: every replica goes down at once.

        A portal-scope :class:`RecoveryIncident` is opened; the member
        replicas' episodes aggregate into it (a replica already down
        keeps its own open episode and joins as a member).  Idempotent.
        """
        if self._portal_incident is not None:
            return
        incident = RecoveryIncident(scope="portal", replica=None,
                                    crashed_at=self.env.now)
        self.incidents.append(incident)
        self._portal_incident = incident
        self.fault_counters.increment("portal_crashes")
        if self._probe is not None:
            self._probe.crash(self.env.now, None)
        for handle in self.replicas:
            if handle.up:
                self.crash_replica(handle.index)  # appends to members
            elif handle.open_incident is not None:
                incident.members.append(handle.open_incident)

    def recover_portal(self) -> None:
        """End a portal-wide outage: recover every downed replica."""
        incident = self._portal_incident
        if incident is None:
            return
        self._portal_incident = None
        for handle in self.replicas:
            if not handle.up:
                self.recover_replica(handle.index)
        incident.recovered_at = self.env.now
        self.fault_counters.increment("portal_recoveries")
        if self._probe is not None:
            self._probe.recover(self.env.now, None, 0)

    # ------------------------------------------------------------------
    def finalize(self) -> None:
        now = self.env.now
        for replica in self.replicas:
            if not replica.up and replica.crashed_at is not None:
                replica.downtime_ms += now - replica.crashed_at
                self.outage_spans.append((replica.crashed_at, now))
                replica.crashed_at = now  # keep a second finalize additive
        # Queries parked in a backoff when the horizon hit: lost, not
        # vanished — their contracts stay in the denominators.
        for query, ledger in list(self._retrying.items()):
            self._lose_query(query, ledger)
        for replica in self.replicas:
            replica.server.finalize()

    # ------------------------------------------------------------------
    # Cluster-level aggregates
    # ------------------------------------------------------------------
    @property
    def total_max(self) -> float:
        return sum(r.ledger.total_max for r in self.replicas)

    @property
    def total_gained(self) -> float:
        return sum(r.ledger.total_gained for r in self.replicas)

    @property
    def total_percent(self) -> float:
        total_max = self.total_max
        return self.total_gained / total_max if total_max else 0.0

    @property
    def qos_percent(self) -> float:
        total_max = self.total_max
        if not total_max:
            return 0.0
        return sum(r.ledger.qos_gained for r in self.replicas) / total_max

    @property
    def qod_percent(self) -> float:
        total_max = self.total_max
        if not total_max:
            return 0.0
        return sum(r.ledger.qod_gained for r in self.replicas) / total_max

    @property
    def total_downtime_ms(self) -> float:
        """Replica-milliseconds of unavailability accrued so far."""
        now = self.env.now
        total = 0.0
        for replica in self.replicas:
            total += replica.downtime_ms
            if not replica.up and replica.crashed_at is not None:
                total += now - replica.crashed_at
        return total

    def downtime_union_ms(self) -> float:
        """Wall-clock time with *at least one* replica down.

        The union of the outage intervals — concurrent outages (a portal
        crash, or overlapping per-replica ones) are counted once, unlike
        the replica-ms sum of :attr:`total_downtime_ms`.  Spans still
        open (replica down right now) are closed at the current clock.
        """
        now = self.env.now
        spans = list(self.outage_spans)
        for replica in self.replicas:
            if not replica.up and replica.crashed_at is not None:
                spans.append((replica.crashed_at, now))
        if not spans:
            return 0.0
        spans.sort()
        total = 0.0
        cur_start, cur_end = spans[0]
        for start, end in spans[1:]:
            if start > cur_end:
                total += cur_end - cur_start
                cur_start, cur_end = start, end
            else:
                cur_end = max(cur_end, end)
        return total + (cur_end - cur_start)

    def mean_response_time(self) -> float:
        """Committed-query mean over the whole cluster."""
        count = sum(r.ledger.response_time.count for r in self.replicas)
        if not count:
            return 0.0
        return sum(r.ledger.response_time.total
                   for r in self.replicas) / count

    def counters(self) -> dict[str, int]:
        combined: dict[str, int] = dict(self.fault_counters.as_dict())
        for replica in self.replicas:
            for key, value in replica.ledger.counters.as_dict().items():
                combined[key] = combined.get(key, 0) + value
        return combined
