"""A replicated web-database portal (extension; cf. [17]).

``ReplicatedPortal`` runs ``n`` independent replicas inside one simulated
environment.  Each replica is a complete single-CPU
:class:`~repro.db.server.DatabaseServer` with its own database, lock
manager, scheduler, and profit ledger.  Updates are *broadcast*: every
replica receives its own copy of each update and applies (or supersedes)
it independently — the paper's data model, where sources push every
update to every replica.  Queries are *routed*: a
:class:`~repro.cluster.routers.Router` picks the replica that serves
each one, and that replica's staleness is what the query observes.

The portal is also where the cluster *degrades* instead of misbehaving
when a :class:`~repro.faults.FaultInjector` crashes replicas:

* a crashed replica stops receiving broadcasts and routed queries, and
  every transaction in flight on it is stranded (fail-stop);
* stranded **queries** enter the failover path: resubmission to a healthy
  replica, hedged (immediate, to the pre-computed backup) when the router
  provides one, otherwise with capped exponential-backoff retries.  A
  failed-over query keeps its original arrival time and lifetime
  deadline, so the crash's lost time is charged against its contract;
* stranded and missed **updates** are logged per replica and replayed on
  recovery — the replica rejoins *stale*, with the re-sync backlog
  visible to QoD-aware routers, and catches up by executing it;
* queries whose retries run out (or that are mid-retry when the run
  ends) are accounted as ``queries_lost_crash`` — their contracts stay in
  the ledger denominators, so crashes cost profit and never shrink the
  totals they are measured against.

The portal aggregates the per-replica ledgers into cluster-level profit
percentages comparable with single-server results.
"""

from __future__ import annotations

import typing

from repro.db.database import Database
from repro.db.server import DatabaseServer, ServerConfig
from repro.db.transactions import Query, Transaction, TxnStatus, Update
from repro.metrics.profit import ProfitLedger
from repro.scheduling.base import Scheduler
from repro.sim import Environment
from repro.sim.monitor import CounterSet
from repro.sim.rng import StreamRegistry

from .routers import NoHealthyReplica, Router, RoundRobinRouter

#: A missed broadcast, kept for recovery re-sync: (exec_ms, item, value).
_MissedUpdate = tuple[float, str, float]


class ReplicaHandle:
    """One replica: server + ledger, with the cheap state routers read."""

    def __init__(self, index: int, server: DatabaseServer,
                 ledger: ProfitLedger) -> None:
        self.index = index
        self.server = server
        self.ledger = ledger
        #: Health bit the routers consult; flipped by crash/recover.
        self.up = True
        #: Sim time of the current outage's start (None while up).
        self.crashed_at: float | None = None
        #: Number of crashes suffered so far.
        self.crash_count = 0
        #: Total time spent down (closed outages; finalize closes the
        #: last one if the run ends mid-outage).
        self.downtime_ms = 0.0
        #: Broadcasts missed while down, replayed on recovery.
        self.missed_updates: list[_MissedUpdate] = []

    def pending_queries(self) -> int:
        return self.server.scheduler.pending_queries()

    def pending_updates(self) -> int:
        return self.server.scheduler.pending_updates()

    def __repr__(self) -> str:
        state = "up" if self.up else "DOWN"
        return (f"<ReplicaHandle #{self.index} {state} "
                f"q={self.pending_queries()} u={self.pending_updates()}>")


class ReplicatedPortal:
    """``n`` replicas behind a query router, sharing one clock."""

    def __init__(self, env: Environment, n_replicas: int,
                 scheduler_factory: typing.Callable[[], Scheduler],
                 streams: StreamRegistry,
                 router: Router | None = None,
                 server_config: ServerConfig | None = None,
                 failover_retries: int = 6,
                 failover_backoff_ms: float = 50.0) -> None:
        if n_replicas <= 0:
            raise ValueError("need at least one replica")
        if failover_retries < 0:
            raise ValueError(
                f"failover_retries must be >= 0, got {failover_retries}")
        if failover_backoff_ms <= 0:
            raise ValueError(
                f"failover_backoff_ms must be positive, "
                f"got {failover_backoff_ms}")
        self.env = env
        self.router = router or RoundRobinRouter()
        self.failover_retries = failover_retries
        self.failover_backoff_ms = failover_backoff_ms
        self.replicas: list[ReplicaHandle] = []
        for index in range(n_replicas):
            ledger = ProfitLedger()
            server = DatabaseServer(
                env, Database(), scheduler_factory(), ledger,
                streams.spawn(f"replica-{index}"),
                config=server_config)
            self.replicas.append(ReplicaHandle(index, server, ledger))
        #: Queries routed per replica (for balance inspection); failover
        #: resubmissions count as fresh routing decisions.
        self.routed_counts = [0] * n_replicas
        #: Portal-level robustness counters (crashes, failovers, ...),
        #: merged with the per-replica ledgers by :meth:`counters`.
        self.fault_counters = CounterSet()
        #: Queries currently waiting in a failover retry loop, mapped to
        #: the ledger holding their contract's maxima.
        self._retrying: dict[Query, ProfitLedger] = {}
        #: Pre-computed hedge backups (txn_id -> replica index), kept
        #: only when the router nominates backups (HedgedRouter).
        self._backups: dict[int, int] = {}

    def __repr__(self) -> str:
        up = sum(1 for r in self.replicas if r.up)
        return (f"<ReplicatedPortal n={len(self.replicas)} up={up} "
                f"router={self.router.name}>")

    # ------------------------------------------------------------------
    # Arrivals
    # ------------------------------------------------------------------
    def submit_query(self, query: Query) -> int:
        """Route and submit; returns the serving replica's index.

        When every replica is down the query is not bounced: its contract
        is priced into the intake ledger (replica 0's — the denominators
        must see every submitted contract exactly once) and it enters the
        failover retry loop, hoping for a recovery within its lifetime.
        Returns ``-1`` in that case.
        """
        try:
            index = self.router.choose(query, self.replicas)
        except NoHealthyReplica:
            self.replicas[0].ledger.on_query_submitted(query, self.env.now)
            self.fault_counters.increment("queries_stranded_arrival")
            self._start_failover(query, self.replicas[0].ledger,
                                 backup_index=None)
            return -1
        if not 0 <= index < len(self.replicas):
            raise ValueError(f"router chose invalid replica {index}")
        handle = self.replicas[index]
        if not handle.up:
            raise ValueError(f"router chose dead replica {index}")
        self.routed_counts[index] += 1
        handle.server.submit_query(query)
        if query.alive:  # not rejected by admission control
            self._remember_backup(query, index)
        return index

    def broadcast_update(self, arrival_time: float, exec_ms: float,
                         item: str, value: float) -> None:
        """Every live replica gets its own copy of the update; dead
        replicas log it for re-sync at recovery."""
        for replica in self.replicas:
            if replica.up:
                replica.server.submit_update(
                    Update(arrival_time, exec_ms, item, value=value))
            else:
                replica.missed_updates.append((exec_ms, item, value))

    # ------------------------------------------------------------------
    # Replica lifecycle (driven by the fault injector)
    # ------------------------------------------------------------------
    def crash_replica(self, index: int) -> None:
        """Fail-stop ``index``: strand its in-flight work (idempotent)."""
        handle = self.replicas[index]
        if not handle.up:
            return
        handle.up = False
        handle.crashed_at = self.env.now
        handle.crash_count += 1
        self.fault_counters.increment("replica_crashes")
        for txn in handle.server.crash():
            if txn.is_query:
                self.fault_counters.increment("queries_failed_over")
                self._start_failover(
                    typing.cast(Query, txn), handle.ledger,
                    backup_index=self._backups.pop(txn.txn_id, None))
            else:
                self._lose_update(typing.cast(Update, txn), handle)

    def recover_replica(self, index: int) -> None:
        """Repair ``index``: rejoin stale, then catch up (idempotent).

        The replica's database kept its pre-crash contents; the broadcasts
        it missed are replayed now in arrival order (the register table
        collapses per-item duplicates), so it rejoins with a visible
        re-sync backlog and works it off under its own scheduler.
        """
        handle = self.replicas[index]
        if handle.up:
            return
        now = self.env.now
        handle.up = True
        handle.downtime_ms += now - typing.cast(float, handle.crashed_at)
        handle.crashed_at = None
        self.fault_counters.increment("replica_recoveries")
        handle.server.recover()
        missed, handle.missed_updates = handle.missed_updates, []
        for exec_ms, item, value in missed:
            handle.server.submit_update(
                Update(now, exec_ms, item, value=value))
            self.fault_counters.increment("updates_resynced")

    def _lose_update(self, update: Update, handle: ReplicaHandle) -> None:
        """An in-flight update died with its replica; the source is
        durable, so it is queued for re-push at recovery."""
        update.status = TxnStatus.LOST_CRASH
        update.finish_time = self.env.now
        self.fault_counters.increment("updates_lost_crash")
        handle.missed_updates.append(
            (update.exec_time, update.item, update.value))

    # ------------------------------------------------------------------
    # Query failover
    # ------------------------------------------------------------------
    def _remember_backup(self, query: Query, primary: int) -> None:
        choose_backup = getattr(self.router, "choose_backup", None)
        if choose_backup is None:
            return
        backup = choose_backup(query, self.replicas, primary)
        if backup is not None:
            self._backups[query.txn_id] = backup
        else:
            self._backups.pop(query.txn_id, None)

    def _start_failover(self, query: Query, ledger: ProfitLedger,
                        backup_index: int | None) -> None:
        query.status = TxnStatus.CREATED  # between servers again
        self._retrying[query] = ledger
        self.env.process(self._failover(query, ledger, backup_index),
                         name=f"failover-{query.txn_id}")

    def _failover(self, query: Query, ledger: ProfitLedger,
                  backup_index: int | None):
        # Hedge: the router pre-nominated a backup — resubmit immediately.
        if backup_index is not None and self.replicas[backup_index].up:
            self._adopt(query, backup_index)
            return
        for attempt in range(self.failover_retries):
            yield self.env.timeout(
                self.failover_backoff_ms * (2.0 ** attempt))
            if query.past_lifetime(self.env.now):
                break  # the crash ate the contract's whole lifetime
            try:
                index = self.router.choose(query, self.replicas)
            except NoHealthyReplica:
                continue
            self._adopt(query, index)
            return
        self._lose_query(query, ledger)

    def _adopt(self, query: Query, index: int) -> None:
        """Resubmit a stranded query to replica ``index``."""
        if query.remaining != query.exec_time:
            query.reset_for_restart()  # partial work died with the crash
        del self._retrying[query]
        self.routed_counts[index] += 1
        self.fault_counters.increment("query_retries")
        self.replicas[index].server.adopt_query(query)
        if query.alive:
            self._remember_backup(query, index)

    def _lose_query(self, query: Query, ledger: ProfitLedger) -> None:
        del self._retrying[query]
        self._backups.pop(query.txn_id, None)
        query.status = TxnStatus.LOST_CRASH
        query.finish_time = self.env.now
        ledger.on_query_lost_to_crash(query, self.env.now)

    # ------------------------------------------------------------------
    def finalize(self) -> None:
        now = self.env.now
        for replica in self.replicas:
            if not replica.up and replica.crashed_at is not None:
                replica.downtime_ms += now - replica.crashed_at
                replica.crashed_at = now  # keep a second finalize additive
        # Queries parked in a backoff when the horizon hit: lost, not
        # vanished — their contracts stay in the denominators.
        for query, ledger in list(self._retrying.items()):
            self._lose_query(query, ledger)
        for replica in self.replicas:
            replica.server.finalize()

    # ------------------------------------------------------------------
    # Cluster-level aggregates
    # ------------------------------------------------------------------
    @property
    def total_max(self) -> float:
        return sum(r.ledger.total_max for r in self.replicas)

    @property
    def total_gained(self) -> float:
        return sum(r.ledger.total_gained for r in self.replicas)

    @property
    def total_percent(self) -> float:
        total_max = self.total_max
        return self.total_gained / total_max if total_max else 0.0

    @property
    def qos_percent(self) -> float:
        total_max = self.total_max
        if not total_max:
            return 0.0
        return sum(r.ledger.qos_gained for r in self.replicas) / total_max

    @property
    def qod_percent(self) -> float:
        total_max = self.total_max
        if not total_max:
            return 0.0
        return sum(r.ledger.qod_gained for r in self.replicas) / total_max

    @property
    def total_downtime_ms(self) -> float:
        """Replica-milliseconds of unavailability accrued so far."""
        now = self.env.now
        total = 0.0
        for replica in self.replicas:
            total += replica.downtime_ms
            if not replica.up and replica.crashed_at is not None:
                total += now - replica.crashed_at
        return total

    def mean_response_time(self) -> float:
        """Committed-query mean over the whole cluster."""
        count = sum(r.ledger.response_time.count for r in self.replicas)
        if not count:
            return 0.0
        return sum(r.ledger.response_time.total
                   for r in self.replicas) / count

    def counters(self) -> dict[str, int]:
        combined: dict[str, int] = dict(self.fault_counters.as_dict())
        for replica in self.replicas:
            for key, value in replica.ledger.counters.as_dict().items():
                combined[key] = combined.get(key, 0) + value
        return combined
