"""Query routing policies for a replicated web-database (extension).

The paper's related work applies the QC framework to *replica selection*
(Xu & Labrinidis, WebDB 2006 [17]): with several replicas each applying
the same update stream under its own scheduler, an incoming query can be
routed by what its contract values.

* :class:`RoundRobinRouter` — the baseline: ignore everything;
* :class:`LeastLoadedRouter` — route to the replica with the fewest
  pending queries (classic load balancing, QoS-oriented);
* :class:`QCAwareRouter` — read the contract: QoD-leaning queries go to
  the *freshest* replica (fewest pending updates), QoS-leaning queries to
  the least query-loaded one.

Routers see only cheap aggregate state (queue lengths), mirroring what a
front-end dispatcher could realistically know.
"""

from __future__ import annotations

import typing

from repro.db.transactions import Query

if typing.TYPE_CHECKING:  # pragma: no cover
    from .portal import ReplicaHandle


class Router:
    """Chooses the replica that will serve an incoming query."""

    name = "base"

    def choose(self, query: Query,
               replicas: "typing.Sequence[ReplicaHandle]") -> int:
        """Index of the chosen replica."""
        raise NotImplementedError


class RoundRobinRouter(Router):
    """Cycle through replicas regardless of contracts or load."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def choose(self, query: Query, replicas) -> int:
        index = self._next % len(replicas)
        self._next += 1
        return index


class LeastLoadedRouter(Router):
    """Fewest pending queries wins (ties: lowest index)."""

    name = "least-loaded"

    def choose(self, query: Query, replicas) -> int:
        return min(range(len(replicas)),
                   key=lambda i: (replicas[i].pending_queries(), i))


class QCAwareRouter(Router):
    """Route by what the contract pays for.

    A query whose QoD share exceeds ``qod_threshold`` of its total value
    is freshness-critical: send it to the replica with the smallest
    update backlog.  Everything else is latency-critical: send it to the
    replica with the fewest pending queries.
    """

    name = "qc-aware"

    def __init__(self, qod_threshold: float = 0.5) -> None:
        if not 0.0 <= qod_threshold <= 1.0:
            raise ValueError("qod_threshold must be in [0, 1]")
        self.qod_threshold = qod_threshold

    def choose(self, query: Query, replicas) -> int:
        total = query.qc.total_max
        qod_share = query.qc.qod_max / total if total > 0 else 0.0
        if qod_share >= self.qod_threshold:
            return min(range(len(replicas)),
                       key=lambda i: (replicas[i].pending_updates(), i))
        return min(range(len(replicas)),
                   key=lambda i: (replicas[i].pending_queries(), i))
