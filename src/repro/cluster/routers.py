"""Query routing policies for a replicated web-database (extension).

The paper's related work applies the QC framework to *replica selection*
(Xu & Labrinidis, WebDB 2006 [17]): with several replicas each applying
the same update stream under its own scheduler, an incoming query can be
routed by what its contract values.

* :class:`RoundRobinRouter` — the baseline: ignore everything;
* :class:`LeastLoadedRouter` — route to the replica with the fewest
  pending queries (classic load balancing, QoS-oriented);
* :class:`QCAwareRouter` — read the contract: QoD-leaning queries go to
  the *freshest* replica (fewest pending updates), QoS-leaning queries to
  the least query-loaded one;
* :class:`HedgedRouter` — wraps another router and additionally nominates
  a *backup* replica per query; the portal's failover path resubmits a
  query stranded by a crash to its backup immediately (no backoff).

Routers see only cheap aggregate state (queue lengths plus the up/down
health bit), mirroring what a front-end dispatcher could realistically
know.  **Every** router is failure-aware: a replica that is down is never
chosen, and routing with zero healthy replicas raises
:class:`NoHealthyReplica` (the portal turns that into retry-with-backoff
rather than an error).

Gray-failure awareness rides on the same interface: when the portal runs
with a :class:`~.health.HealthConfig`, each replica handle carries a
circuit breaker, and routers prefer replicas whose breaker admits
traffic.  The preference **fails open**: if every up replica's breaker
is refusing (all tripped at once), routers fall back to the plain
up/down view rather than declaring the cluster dead — a paranoid
detector must never cause an outage the fault didn't.
"""

from __future__ import annotations

import typing

from repro.db.transactions import Query

if typing.TYPE_CHECKING:  # pragma: no cover
    from .portal import ReplicaHandle


class NoHealthyReplica(RuntimeError):
    """Raised when a router must choose but every replica is down."""


def _is_up(replica: "ReplicaHandle") -> bool:
    # Health is an optional attribute so that plain stand-ins (tests,
    # other deployment shapes) without a lifecycle still route.
    return getattr(replica, "up", True)


def _breaker_allows(replica: "ReplicaHandle") -> bool:
    """True when the replica's circuit breaker (if any) admits traffic."""
    breaker = getattr(replica, "breaker", None)
    if breaker is None:
        return True
    return breaker.routable(replica.server.env.now)


# ----------------------------------------------------------------------
# The shared freshness metric
# ----------------------------------------------------------------------
# Freshness-sensitive routing scores a replica by two views of the same
# underlying state (the update register + per-item arrival bookkeeping):
#
# * the *count* half — how many updates are queued but unapplied
#   (:func:`update_backlog`, what :class:`QCAwareRouter` has always
#   ordered by);
# * the *age* half — for how long a read set has been stale in simulated
#   time (:func:`staleness_age`, the ``td``-style signal the
#   staleness-aware shard router scores by, per the Dynamo staleness
#   model in PAPERS.md).
#
# Both are thin accessors over :meth:`repro.db.database.Database` state
# so every router prices freshness off one metric source.

def update_backlog(replica: "ReplicaHandle") -> int:
    """Count half of the shared freshness metric: pending updates."""
    return replica.pending_updates()


def staleness_age(replica: "ReplicaHandle", keys: typing.Iterable[str],
                  now: float) -> float:
    """Age half of the shared freshness metric.

    The worst (oldest) unapplied-update age over ``keys`` on this
    replica, in simulated ms; 0.0 when the replica is caught up on all
    of them.  Non-creating — probing never materialises items.
    """
    database = replica.server.database
    worst = 0.0
    for key in keys:
        age = database.staleness_age(key, now)
        if age > worst:
            worst = age
    return worst


class Router:
    """Chooses the replica that will serve an incoming query."""

    name = "base"

    def choose(self, query: Query,
               replicas: "typing.Sequence[ReplicaHandle]") -> int:
        """Index of the chosen replica (never a dead one)."""
        raise NotImplementedError

    @staticmethod
    def healthy_indices(
            replicas: "typing.Sequence[ReplicaHandle]") -> list[int]:
        """Indices of the routable replicas; raises when none are up.

        Prefers up replicas whose breaker admits traffic; falls back to
        all up replicas when every breaker is refusing (fail open).
        """
        up = [i for i, replica in enumerate(replicas) if _is_up(replica)]
        if not up:
            raise NoHealthyReplica("all replicas are down")
        routable = [i for i in up if _breaker_allows(replicas[i])]
        return routable or up


class RoundRobinRouter(Router):
    """Cycle through replicas regardless of contracts or load.

    Dead replicas are skipped; the cycle position advances past the chosen
    replica, so the healthy subset is still visited evenly.  Replicas
    whose circuit breaker is refusing are skipped on a first pass and
    reconsidered only if that leaves nothing (fail open).
    """

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def choose(self, query: Query,
               replicas: "typing.Sequence[ReplicaHandle]") -> int:
        n = len(replicas)
        fallback: int | None = None
        for offset in range(n):
            index = (self._next + offset) % n
            if not _is_up(replicas[index]):
                continue
            if _breaker_allows(replicas[index]):
                self._next = index + 1
                return index
            if fallback is None:
                fallback = index
        if fallback is not None:  # every up replica's breaker refused
            self._next = fallback + 1
            return fallback
        raise NoHealthyReplica("all replicas are down")


class LeastLoadedRouter(Router):
    """Fewest pending queries wins (ties: lowest index)."""

    name = "least-loaded"

    def choose(self, query: Query,
               replicas: "typing.Sequence[ReplicaHandle]") -> int:
        return min(self.healthy_indices(replicas),
                   key=lambda i: (replicas[i].pending_queries(), i))


class QCAwareRouter(Router):
    """Route by what the contract pays for.

    A query whose QoD share exceeds ``qod_threshold`` of its total value
    is freshness-critical: send it to the replica with the smallest
    update backlog.  Everything else is latency-critical: send it to the
    replica with the fewest pending queries.

    Both views naturally penalise a replica that just recovered from a
    crash: it rejoins with the re-sync backlog queued, so freshness-
    critical queries avoid it until it has caught up.
    """

    name = "qc-aware"

    def __init__(self, qod_threshold: float = 0.5) -> None:
        if not 0.0 <= qod_threshold <= 1.0:
            raise ValueError("qod_threshold must be in [0, 1]")
        self.qod_threshold = qod_threshold

    def choose(self, query: Query,
               replicas: "typing.Sequence[ReplicaHandle]") -> int:
        healthy = self.healthy_indices(replicas)
        total = query.qc.total_max
        qod_share = query.qc.qod_max / total if total > 0 else 0.0
        if qod_share >= self.qod_threshold:
            return min(healthy,
                       key=lambda i: (update_backlog(replicas[i]), i))
        return min(healthy,
                   key=lambda i: (replicas[i].pending_queries(), i))


class HedgedRouter(Router):
    """Primary choice by an inner router, plus a pre-computed backup.

    The hedge pays off when the primary crashes while the query is in
    flight: the portal resubmits the stranded query to the backup
    *immediately*, skipping the first backoff period of the generic
    failover path.  The backup is the least query-loaded healthy replica
    other than the primary (``None`` when the primary is the only healthy
    replica — then only backoff retries remain).
    """

    name = "hedged"

    def __init__(self, inner: Router | None = None) -> None:
        self.inner = inner or QCAwareRouter()
        self.name = f"hedged({self.inner.name})"

    def choose(self, query: Query,
               replicas: "typing.Sequence[ReplicaHandle]") -> int:
        return self.inner.choose(query, replicas)

    def choose_backup(self, query: Query,
                      replicas: "typing.Sequence[ReplicaHandle]",
                      primary: int) -> int | None:
        alternatives = [i for i in range(len(replicas))
                        if i != primary and _is_up(replicas[i])]
        if not alternatives:
            return None
        preferred = [i for i in alternatives
                     if _breaker_allows(replicas[i])]
        return min(preferred or alternatives,
                   key=lambda i: (replicas[i].pending_queries(), i))
