"""Gray-failure defense: suspicion scoring and per-replica breakers.

Fail-stop faults flip the replica health bit and every router already
honours it.  *Gray* failures do not: a limping replica still answers
(slowly), a lossy broadcast link still delivers (some of) the update
stream, and a replica with a corrupt WAL looks healthy until it next
restarts.  This module supplies the two defense primitives the portal
wires in when a :class:`HealthConfig` is attached:

* :class:`FailureDetector` — an accrual-style suspicion score per
  replica, computed purely from *simulated-clock* observations: an EWMA
  of committed-query response times compared against the cluster-wide
  EWMA (a replica that is consistently slower than its peers becomes
  suspect), plus a half-life-decayed penalty for missed/out-of-order
  broadcast sequence numbers, late deliveries, and dropped queries.

* :class:`CircuitBreaker` — the classic closed → open → half-open
  automaton, one per replica, consulted by every router *alongside* the
  health bit.  Opening uses deterministic jittered backoff drawn from a
  named :class:`~repro.sim.rng.RandomStream`, so probe storms
  de-synchronise across replicas while runs stay bit-identical.

Both objects are pure state machines on the simulated clock: they never
read the host clock, never draw from unseeded randomness, and are only
mutated from portal callbacks (which execute at deterministic event
times).  A portal constructed without a :class:`HealthConfig` creates
neither, so the fault-free fast path is unchanged.
"""

from __future__ import annotations

import dataclasses
import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.rng import RandomStream

#: Circuit-breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


@dataclasses.dataclass(frozen=True)
class HealthConfig:
    """Tuning knobs for the detector + breaker pair (plain, picklable).

    The defaults are deliberately conservative: a replica must look
    ~2.5x slower than the cluster mean (suspicion ≥ ``trip_suspicion``),
    or rack up several gap/drop observations, before its breaker trips.
    """

    #: EWMA weight for fresh response-time samples (0 < alpha <= 1).
    rt_alpha: float = 0.2
    #: Suspicion at/above which a CLOSED breaker trips.
    trip_suspicion: float = 1.5
    #: Suspicion below which a HALF_OPEN probe is allowed to re-close.
    clear_suspicion: float = 0.75
    #: Suspicion points per missed/out-of-order broadcast observation.
    gap_points: float = 0.25
    #: Suspicion points per failed (dropped/expired-on-server) query.
    failure_points: float = 0.5
    #: Half-life of the event-score decay, simulated milliseconds.
    gap_halflife_ms: float = 10_000.0
    #: Initial OPEN dwell before the first half-open probe.
    open_ms: float = 2_000.0
    #: OPEN dwell multiplier after each failed probe.
    probe_backoff: float = 2.0
    #: Cap on the OPEN dwell (keeps probe cadence bounded).
    max_open_ms: float = 30_000.0
    #: Probe-delay jitter: dwell is scaled by U[1-jitter, 1+jitter].
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 < self.rt_alpha <= 1.0:
            raise ValueError(f"rt_alpha must be in (0, 1], got "
                             f"{self.rt_alpha}")
        if self.clear_suspicion >= self.trip_suspicion:
            raise ValueError(
                f"clear_suspicion ({self.clear_suspicion}) must be below "
                f"trip_suspicion ({self.trip_suspicion})")
        if self.open_ms <= 0 or self.max_open_ms < self.open_ms:
            raise ValueError(
                f"need 0 < open_ms <= max_open_ms, got "
                f"{self.open_ms} / {self.max_open_ms}")
        if self.probe_backoff < 1.0:
            raise ValueError(f"probe_backoff must be >= 1, got "
                             f"{self.probe_backoff}")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")
        if self.gap_halflife_ms <= 0:
            raise ValueError(f"gap_halflife_ms must be positive, got "
                             f"{self.gap_halflife_ms}")


class FailureDetector:
    """Per-replica suspicion from response times and broadcast gaps.

    ``suspicion(i, now)`` combines two signals:

    * *relative slowness* — ``max(0, ewma_i / ewma_cluster - 1)``: zero
      while the replica tracks its peers, 1.0 when it is twice as slow;
    * *event score* — gap/late/drop observations each add fixed points
      which decay with half-life :attr:`HealthConfig.gap_halflife_ms`,
      so a healed link is forgiven after a few half-lives.
    """

    __slots__ = ("config", "_rt", "_cluster_rt", "_events", "_stamps")

    def __init__(self, n_replicas: int, config: HealthConfig) -> None:
        if n_replicas <= 0:
            raise ValueError(f"n_replicas must be positive, got "
                             f"{n_replicas}")
        self.config = config
        self._rt: list[float | None] = [None] * n_replicas
        self._cluster_rt: float | None = None
        self._events = [0.0] * n_replicas
        self._stamps = [0.0] * n_replicas

    def __repr__(self) -> str:
        return (f"<FailureDetector rt={self._rt} "
                f"events={[round(e, 3) for e in self._events]}>")

    def _decayed(self, index: int, now: float) -> float:
        score = self._events[index]
        if score == 0.0:
            return 0.0
        age = now - self._stamps[index]
        if age <= 0.0:
            return score
        return score * 0.5 ** (age / self.config.gap_halflife_ms)

    def _bump(self, index: int, points: float, now: float) -> None:
        self._events[index] = self._decayed(index, now) + points
        self._stamps[index] = now

    # -- observations ---------------------------------------------------
    def observe_response(self, index: int, rt_ms: float,
                         now: float) -> None:
        """A query committed on ``index`` with response time ``rt_ms``."""
        alpha = self.config.rt_alpha
        current = self._rt[index]
        self._rt[index] = (rt_ms if current is None
                           else current + alpha * (rt_ms - current))
        cluster = self._cluster_rt
        self._cluster_rt = (rt_ms if cluster is None
                            else cluster + alpha * (rt_ms - cluster))

    def observe_failure(self, index: int, now: float) -> None:
        """A query routed to ``index`` died there (dropped/expired)."""
        self._bump(index, self.config.failure_points, now)

    def observe_gap(self, index: int, missed: int, now: float) -> None:
        """``missed`` broadcast sequence numbers never reached ``index``
        (or arrived out of order / late)."""
        if missed > 0:
            self._bump(index, self.config.gap_points * missed, now)

    # -- the score ------------------------------------------------------
    def suspicion(self, index: int, now: float) -> float:
        slowness = 0.0
        rt = self._rt[index]
        cluster = self._cluster_rt
        if rt is not None and cluster is not None and cluster > 0.0:
            slowness = max(0.0, rt / cluster - 1.0)
        return slowness + self._decayed(index, now)


class CircuitBreaker:
    """Closed → open → half-open, with deterministic jittered probes.

    Routers call :meth:`routable` when picking a replica; the portal
    calls :meth:`record_routed` when a query actually lands (consuming
    the half-open probe slot) and :meth:`observe` with each query
    outcome plus the detector's current suspicion.  All breakers of one
    portal share a single named random stream; draws happen only when a
    breaker opens, in deterministic event order.
    """

    __slots__ = ("config", "state", "retry_at", "trips", "probes",
                 "_rng", "_open_ms")

    def __init__(self, config: HealthConfig, rng: "RandomStream") -> None:
        self.config = config
        self.state = CLOSED
        #: Simulated time of the next allowed half-open probe (only
        #: meaningful while OPEN).
        self.retry_at = 0.0
        self.trips = 0
        self.probes = 0
        self._rng = rng
        self._open_ms = config.open_ms

    def __repr__(self) -> str:
        return (f"<CircuitBreaker {self.state} trips={self.trips} "
                f"retry_at={self.retry_at:.0f}>")

    def routable(self, now: float) -> bool:
        """May a router send a query here right now?

        CLOSED always; OPEN only once the jittered dwell has elapsed
        (that query *is* the probe); HALF_OPEN never — exactly one probe
        is in flight and its outcome decides the next state.
        """
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            return now >= self.retry_at
        return False

    def record_routed(self, now: float) -> None:
        """A query was actually dispatched to this replica."""
        if self.state == OPEN and now >= self.retry_at:
            self.state = HALF_OPEN
            self.probes += 1

    def observe(self, now: float, ok: bool, suspicion: float) -> None:
        """Fold one query outcome (and the current suspicion) in."""
        if self.state == CLOSED:
            if suspicion >= self.config.trip_suspicion:
                self.trip(now)
        elif self.state == HALF_OPEN:
            if ok and suspicion < self.config.clear_suspicion:
                self._close()
            else:
                self.trip(now)
        # OPEN: stragglers routed before the trip resolve here; their
        # outcomes are already priced into the suspicion score.

    def note_suspicion(self, now: float, suspicion: float) -> None:
        """Non-query evidence (broadcast gaps) — may trip, never closes."""
        if self.state == CLOSED and suspicion >= self.config.trip_suspicion:
            self.trip(now)

    def trip(self, now: float) -> None:
        """Open (or re-open), scheduling the next jittered probe."""
        self.state = OPEN
        self.trips += 1
        jitter = self.config.jitter
        scale = self._rng.uniform(1.0 - jitter, 1.0 + jitter)
        self.retry_at = now + self._open_ms * scale
        self._open_ms = min(self._open_ms * self.config.probe_backoff,
                            self.config.max_open_ms)

    def _close(self) -> None:
        self.state = CLOSED
        self.retry_at = 0.0
        self._open_ms = self.config.open_ms
