"""The ``repro trace`` subcommand: run one instrumented simulation.

``repro trace figures --fig 5 --out trace.json`` replays the selected
figure's workload under a telemetry session and writes a Chrome
``trace_event`` JSON file — load it at https://ui.perfetto.dev (or
``chrome://tracing``) to see per-queue tracks for ρ, queue depths, CPU
occupancy, and every transaction's lifecycle instants.

The figure number picks the *workload configuration*, mirroring the
figure drivers: Figure 1 runs without quality contracts (the free
contract), Figures 9/10 run the flip-flopping preference phases that
exercise ρ adaptation, everything else uses the balanced QC mix.  The
default scale is ``smoke`` (1 simulated minute): tracing is verbose, and
a smoke run already produces hundreds of thousands of records.

This module is dispatched from :mod:`repro.cli` before the experiment
parser (it has its own grammar, like ``repro lint``) and is imported
lazily so plain experiment runs never pay for it.
"""

from __future__ import annotations

import argparse
import os
import typing

from repro.experiments import FIG9_PHASE_MS, FIG9_RATIOS, ExperimentConfig
from repro.experiments.config import chosen_scale
from repro.experiments.runner import QCSource, free_qc_source, run_simulation
from repro.qc.generator import PhasedQCFactory, QCFactory
from repro.scheduling import make_scheduler
from repro.workload.traces import Trace

from .events import CATEGORIES
from .export import summary_report, write_chrome_trace, write_series_csv
from .hooks import TelemetrySession
from .tracer import DEFAULT_BUFFER_SIZE, TelemetryConfig

#: Figures whose workload configurations ``repro trace figures`` replays.
TRACEABLE_FIGS = (1, 5, 6, 7, 8, 9, 10)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro trace",
        description="Run one instrumented simulation and export a "
                    "Chrome trace_event JSON (Perfetto-loadable)")
    parser.add_argument("experiment", choices=("figures", "run"),
                        help="'figures' replays a figure's workload "
                             "configuration; 'run' is the plain "
                             "balanced-QC single run")
    parser.add_argument("--fig", type=int, default=8,
                        choices=TRACEABLE_FIGS,
                        help="which figure's workload to trace "
                             "(default: 8)")
    parser.add_argument("--policy", default="QUTS",
                        help="scheduling policy (FIFO/UH/QH/QUTS/...)")
    parser.add_argument("--seed", type=int, default=None,
                        help="simulation master seed (default: the "
                             "experiment config's run seed)")
    parser.add_argument("--scale", default=None,
                        choices=("smoke", "standard", "full"),
                        help="workload scale (default: $REPRO_SCALE or "
                             "'smoke' — traces are verbose)")
    parser.add_argument("--out", default="trace.json",
                        help="Chrome trace output path "
                             "(default: trace.json)")
    parser.add_argument("--csv", default=None, metavar="PATH",
                        help="also dump the metrics registry's time "
                             "series as CSV")
    parser.add_argument("--summary", action="store_true",
                        help="print a terminal summary of the trace")
    parser.add_argument("--buffer", type=int, default=DEFAULT_BUFFER_SIZE,
                        help="trace ring-buffer capacity in records "
                             f"(default: {DEFAULT_BUFFER_SIZE}; oldest "
                             "records are evicted beyond it)")
    parser.add_argument("--categories", default=None,
                        help="comma-separated category filter "
                             f"(subset of {sorted(CATEGORIES)}; "
                             "default: all)")
    return parser


def _qc_source(fig: int, trace: Trace) -> QCSource:
    """The figure's contract mix (mirrors the figure drivers)."""
    if fig == 1:
        return free_qc_source()  # Figure 1 is the no-QC triangle
    if fig in (9, 10):
        # The flip-flopping preference phases that drive ρ adaptation.
        n_phases = max(1, round(trace.duration_ms / FIG9_PHASE_MS))
        ratios = [FIG9_RATIOS[i % len(FIG9_RATIOS)]
                  for i in range(n_phases)]
        return PhasedQCFactory.flip_flop(FIG9_PHASE_MS, ratios)
    return QCFactory.balanced()


def _parse_categories(raw: str | None) -> tuple[str, ...]:
    if raw is None:
        return tuple(sorted(CATEGORIES))
    wanted = {part.strip() for part in raw.split(",") if part.strip()}
    unknown = wanted - CATEGORIES
    if unknown:
        raise SystemExit(f"unknown trace categories {sorted(unknown)}; "
                         f"choose from {sorted(CATEGORIES)}")
    if not wanted:
        raise SystemExit("--categories must name at least one category")
    return tuple(sorted(wanted))


def main(argv: typing.Sequence[str]) -> int:
    args = build_parser().parse_args(list(argv))
    scale = args.scale or os.environ.get("REPRO_SCALE") or "smoke"
    config = ExperimentConfig(scale=chosen_scale(scale))
    seed = config.run_seed if args.seed is None else args.seed
    trace = config.trace()
    fig = args.fig if args.experiment == "figures" else 8
    telemetry = TelemetryConfig(categories=_parse_categories(args.categories),
                                buffer_size=args.buffer)

    result = run_simulation(make_scheduler(args.policy), trace,
                            _qc_source(fig, trace), master_seed=seed,
                            telemetry=telemetry)
    session = typing.cast(TelemetrySession, result.telemetry)
    tracer = session.tracer

    metadata = {
        "experiment": args.experiment,
        "fig": fig,
        "policy": result.scheduler_name,
        "scale": config.scale,
        "seed": seed,
        "trace": trace.name,
        "total_percent": result.total_percent,
        "qos_percent": result.qos_percent,
        "qod_percent": result.qod_percent,
    }
    write_chrome_trace(tracer, args.out, metadata=metadata)
    dropped = (f", {tracer.dropped} evicted (raise --buffer)"
               if tracer.dropped else "")
    print(f"wrote {args.out} ({len(tracer)} records{dropped}) — "
          f"load it at https://ui.perfetto.dev")
    if args.csv is not None:
        write_series_csv(session.registry, args.csv)
        print(f"wrote {args.csv}")
    if args.summary:
        print()
        print(summary_report(tracer, session.registry))
    return 0
