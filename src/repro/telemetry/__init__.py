"""``repro.telemetry`` — structured tracing and metrics for the simulator.

The observability layer the QUTS experiments debug against: typed trace
records stamped with simulated time, a bounded-memory tracer, a
hierarchical metrics registry, and exporters for Chrome
``trace_event`` JSON (``chrome://tracing`` / Perfetto), CSV time
series, and a terminal summary.

Quickstart::

    from repro.experiments.runner import run_simulation
    from repro.scheduling import QUTSScheduler
    from repro.telemetry import TelemetryConfig, write_chrome_trace

    result = run_simulation(QUTSScheduler(), trace, factory,
                            telemetry=TelemetryConfig())
    session = result.telemetry
    write_chrome_trace(session.tracer, "trace.json")

or, from the command line::

    repro trace figures --fig 5 --out trace.json

Everything here is a pure observer: no randomness, no event-loop
perturbation, no host-clock reads — results are byte-identical with
telemetry on or off, and a run without it never touches this package.
"""

from __future__ import annotations

from . import events
from .events import (CAT_CLUSTER, CAT_KERNEL, CAT_SCHED, CAT_TXN,
                     CATEGORIES, CounterRecord, InstantRecord, SpanRecord,
                     TraceRecord, TXN_ARRIVE, TXN_TERMINALS)
from .export import (chrome_trace_events, series_rows, summary_report,
                     to_chrome_trace, write_chrome_trace, write_series_csv)
from .hooks import (ClusterProbe, KernelProbe, SchedulerProbe, ServerProbe,
                    TelemetryKnob, TelemetrySession)
from .registry import Histogram, MetricsRegistry, ScopedRegistry
from .tracer import DEFAULT_BUFFER_SIZE, TelemetryConfig, Tracer

__all__ = [
    "CATEGORIES",
    "CAT_CLUSTER",
    "CAT_KERNEL",
    "CAT_SCHED",
    "CAT_TXN",
    "ClusterProbe",
    "CounterRecord",
    "DEFAULT_BUFFER_SIZE",
    "Histogram",
    "InstantRecord",
    "KernelProbe",
    "MetricsRegistry",
    "SchedulerProbe",
    "ScopedRegistry",
    "ServerProbe",
    "SpanRecord",
    "TXN_ARRIVE",
    "TXN_TERMINALS",
    "TelemetryConfig",
    "TelemetryKnob",
    "TelemetrySession",
    "TraceRecord",
    "Tracer",
    "chrome_trace_events",
    "events",
    "series_rows",
    "summary_report",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_series_csv",
]
