"""Exporters: Chrome ``trace_event`` JSON, CSV series, terminal summary.

The Chrome exporter emits the stable subset of the `trace_event format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
that both ``chrome://tracing`` and Perfetto load:

* ``"X"`` complete events for spans (CPU slices, switch overhead);
* ``"i"`` instant events for lifecycle / scheduler / cluster marks;
* ``"C"`` counter events for ρ and queue depths;
* ``"M"`` metadata events naming processes and threads.

Tracks map onto the viewer's process/thread tree: a record's
``"scope/lane"`` track becomes process ``scope`` (one per server /
replica / portal) and thread ``lane`` (cpu, lifecycle, sched, queues),
so each queue and each replica gets its own named row.  Timestamps are
simulated milliseconds; Chrome wants microseconds, so values are scaled
by 1000 on the way out.
"""

from __future__ import annotations

import json
import pathlib
import typing

from .events import CounterRecord, InstantRecord, SpanRecord
from .registry import MetricsRegistry
from .tracer import Tracer

#: Chrome trace timestamps are microseconds; the simulator's are ms.
_US_PER_MS = 1000.0


def _split_track(track: str) -> tuple[str, str]:
    scope, _, lane = track.partition("/")
    return scope, lane or "main"


def chrome_trace_events(tracer: Tracer) -> list[dict[str, typing.Any]]:
    """The ``traceEvents`` array for the tracer's retained records."""
    pids: dict[str, int] = {}
    tids: dict[tuple[str, str], int] = {}
    events: list[dict[str, typing.Any]] = []
    records = tracer.records()

    # Stable process/thread ids: sorted track names, not arrival order,
    # so the export is deterministic for a given set of tracks.
    for scope, lane in sorted({_split_track(r.track) for r in records}):
        if scope not in pids:
            pids[scope] = len(pids) + 1
            events.append({"ph": "M", "pid": pids[scope], "tid": 0,
                           "name": "process_name",
                           "args": {"name": scope}})
        key = (scope, lane)
        tids[key] = tids.get(key, len(tids) + 1)
        events.append({"ph": "M", "pid": pids[scope], "tid": tids[key],
                       "name": "thread_name", "args": {"name": lane}})

    for record in records:
        scope, lane = _split_track(record.track)
        base: dict[str, typing.Any] = {
            "pid": pids[scope],
            "tid": tids[(scope, lane)],
            "ts": record.ts * _US_PER_MS,
            "cat": record.category,
            "name": record.name,
        }
        if isinstance(record, SpanRecord):
            base["ph"] = "X"
            base["dur"] = record.dur * _US_PER_MS
            if record.args:
                base["args"] = record.args
        elif isinstance(record, CounterRecord):
            base["ph"] = "C"
            base["args"] = {"value": record.value}
        elif isinstance(record, InstantRecord):
            base["ph"] = "i"
            base["s"] = "t"  # thread-scoped instant
            args = dict(record.args) if record.args else {}
            if record.txn_id >= 0:
                args.setdefault("txn", record.txn_id)
            if args:
                base["args"] = args
        else:  # pragma: no cover - defensive
            continue
        events.append(base)
    return events


def to_chrome_trace(tracer: Tracer,
                    metadata: dict[str, typing.Any] | None = None,
                    ) -> dict[str, typing.Any]:
    """The complete JSON-object-format payload Perfetto loads."""
    other: dict[str, typing.Any] = {
        "recorded": len(tracer),
        "emitted": tracer.emitted,
        "dropped": tracer.dropped,
        "clock": "simulated-ms",
    }
    if metadata:
        other.update(metadata)
    return {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def write_chrome_trace(tracer: Tracer, path: str | pathlib.Path,
                       metadata: dict[str, typing.Any] | None = None,
                       ) -> pathlib.Path:
    """Write the Chrome-trace JSON file; returns the path written."""
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    payload = to_chrome_trace(tracer, metadata)
    target.write_text(json.dumps(payload) + "\n")
    return target


# ----------------------------------------------------------------------
# CSV time series
# ----------------------------------------------------------------------
def series_rows(registry: MetricsRegistry,
                ) -> list[dict[str, typing.Any]]:
    """Every registry gauge flattened to (series, t_ms, value) rows."""
    rows: list[dict[str, typing.Any]] = []
    for name, series in registry.gauges().items():
        for t, v in series.items():
            rows.append({"series": name, "t_ms": t, "value": v})
    return rows


def write_series_csv(registry: MetricsRegistry,
                     path: str | pathlib.Path) -> pathlib.Path:
    """Long-format CSV of every gauge (one row per retained sample)."""
    from repro.experiments.report import save_csv

    target = pathlib.Path(path)
    save_csv(series_rows(registry), target,
             columns=("series", "t_ms", "value"))
    return target


# ----------------------------------------------------------------------
# Terminal summary
# ----------------------------------------------------------------------
def summary_report(tracer: Tracer,
                   registry: MetricsRegistry | None = None) -> str:
    """A human-readable digest: event counts, span time, drop stats."""
    lines = ["telemetry summary", "================="]
    lines.append(f"records retained : {len(tracer)} "
                 f"(emitted {tracer.emitted}, dropped {tracer.dropped})")
    by_key: dict[tuple[str, str], int] = {}
    span_ms: dict[str, float] = {}
    for record in tracer.records():
        key = (record.category, record.name)
        by_key[key] = by_key.get(key, 0) + 1
        if isinstance(record, SpanRecord):
            span_ms[record.name] = span_ms.get(record.name, 0.0) + record.dur
    if by_key:
        lines.append("")
        lines.append("events by category/name:")
        for (category, name), count in sorted(by_key.items()):
            lines.append(f"  {category:>8}:{name:<16} {count}")
    if span_ms:
        lines.append("")
        lines.append("busy time by span name (simulated ms):")
        for name, total in sorted(span_ms.items()):
            lines.append(f"  {name:<16} {total:.3f}")
    if registry is not None:
        counters = registry.counter_values()
        if counters:
            lines.append("")
            lines.append("registry counters:")
            for name, value in counters.items():
                lines.append(f"  {name:<40} {value}")
        gauges = registry.gauges()
        if gauges:
            lines.append("")
            lines.append("registry gauges (bounded series):")
            for name, series in gauges.items():
                mean = series.time_weighted_mean()
                lines.append(f"  {name:<40} n={len(series)} "
                             f"(offered {series.offered}) "
                             f"tw-mean={mean:.4g}")
    return "\n".join(lines)
