"""Typed trace records and the telemetry event taxonomy.

Every record is stamped with *simulated* time only (milliseconds, the
:class:`~repro.sim.environment.Environment` clock) — telemetry observes
the run, it never reads the host clock and never perturbs the event
loop, so results are byte-identical with tracing on or off.

Records come in three shapes, mirroring the Chrome ``trace_event``
phases the exporter targets:

* :class:`SpanRecord` — a duration on a track (a CPU slice, a
  class-switch overhead charge);
* :class:`InstantRecord` — a point event (a transaction lifecycle
  transition, a scheduler decision, a cluster incident);
* :class:`CounterRecord` — a sampled numeric signal (ρ, queue depth).

All three are ``__slots__``-based: a full-scale run emits millions of
records into the tracer's ring buffer, and the per-record footprint is
what bounds tracing overhead when enabled.

The taxonomy below is the complete event vocabulary; the golden
lifecycle test in ``tests/test_telemetry.py`` asserts that every
terminal transaction emits exactly one ``arrive`` → terminal chain.
"""

from __future__ import annotations

import typing

# ----------------------------------------------------------------------
# Categories (per-category enable flags on the Tracer)
# ----------------------------------------------------------------------
#: Transaction lifecycle: arrive → queue → start → ... → terminal.
CAT_TXN = "txn"
#: Scheduler internals: quantum draws, ρ updates, queue switches.
CAT_SCHED = "sched"
#: Cluster incidents: crash, recovery, failover, replay, checkpoint.
CAT_CLUSTER = "cluster"
#: Kernel statistics: events processed per kind.
CAT_KERNEL = "kernel"
#: Shard layer: fan-out/merge chains, migrations, ring rebalances.
CAT_SHARD = "shard"

#: Every known category (the Tracer default enables all of them).
CATEGORIES: frozenset[str] = frozenset(
    {CAT_TXN, CAT_SCHED, CAT_CLUSTER, CAT_KERNEL, CAT_SHARD})

# ----------------------------------------------------------------------
# Transaction lifecycle event names (category "txn")
# ----------------------------------------------------------------------
TXN_ARRIVE = "arrive"          #: submitted to a server
TXN_QUEUE = "queue"            #: entered a scheduler queue
TXN_REJECT = "reject"          #: declined by admission control (terminal)
TXN_START = "start"            #: first time on the CPU
TXN_RESUME = "resume"          #: back on the CPU after suspend/block
TXN_PREEMPT = "preempt"        #: kicked off the CPU by an arrival
TXN_SUSPEND = "suspend"        #: quantum expired, progress kept
TXN_BLOCK = "block"            #: waiting on a 2PL-HP lock
TXN_RESTART = "restart"        #: 2PL-HP abort, progress lost
TXN_COMMIT = "commit"          #: finished successfully (terminal)
TXN_EXPIRE = "expire"          #: query past its QC lifetime (terminal)
TXN_SUPERSEDE = "supersede"    #: update invalidated by newer (terminal)
TXN_LOST = "lost"              #: died with a crashed replica (terminal)
TXN_UNFINISHED = "unfinished"  #: left in the system at the horizon (terminal)

#: The terminal lifecycle transitions: a traced transaction emits exactly
#: one of these, after exactly one ``arrive``.
TXN_TERMINALS: frozenset[str] = frozenset(
    {TXN_REJECT, TXN_COMMIT, TXN_EXPIRE, TXN_SUPERSEDE, TXN_LOST,
     TXN_UNFINISHED})

# ----------------------------------------------------------------------
# Scheduler event names (category "sched")
# ----------------------------------------------------------------------
SCHED_QUANTUM_DRAW = "quantum_draw"  #: QUTS drew a fresh slot owner (ξ vs ρ)
SCHED_QUEUE_SWITCH = "queue_switch"  #: the CPU's serving class changed
SCHED_RHO_UPDATE = "rho_update"      #: ρ re-optimised at an ω boundary
SCHED_PREEMPTION = "preemption"      #: an arrival preempted the running txn

# ----------------------------------------------------------------------
# Cluster event names (category "cluster")
# ----------------------------------------------------------------------
CLUSTER_CRASH = "crash"            #: a replica (or the portal) fail-stopped
CLUSTER_RECOVER = "recover"        #: a replica rejoined (stale)
CLUSTER_FAILOVER = "failover"      #: a stranded query entered failover
CLUSTER_ADOPT = "adopt"            #: a failed-over query found a new home
CLUSTER_REPLAY = "replay"          #: missed updates replayed at recovery
CLUSTER_CHECKPOINT = "checkpoint"  #: a crash-consistent snapshot was taken

# Gray-failure vocabulary (still category "cluster"):
CLUSTER_SLOW = "slow"              #: a replica's service rate changed
CLUSTER_GAP = "gap"                #: a broadcast sequence gap was detected
CLUSTER_WINDOW = "loss_window"     #: a lossy update window opened
CLUSTER_HEAL = "heal"              #: a lossy window closed + re-sync ran
CLUSTER_BREAKER = "breaker"        #: a circuit breaker changed state
CLUSTER_WAL_CORRUPT = "wal_corrupt"  #: recovery refused a damaged WAL tail

# ----------------------------------------------------------------------
# Shard event names (category "shard")
# ----------------------------------------------------------------------
SHARD_ROUTE = "route"              #: a single-shard query routed to its owner
SHARD_FANOUT = "fanout"            #: a multi-shard query split into subs
SHARD_MERGE = "merge"              #: a fan-out parent resolved (span end)
SHARD_MIGRATE_START = "migrate_start"  #: a key range froze for migration
SHARD_MIGRATE_COPY = "migrate_copy"    #: drained + snapshot copied
SHARD_CUTOVER = "cutover"          #: buffer replayed, ownership flipped
SHARD_REBALANCE = "rebalance"      #: the controller moved ring weight

#: Args payload type: small, JSON-serialisable mappings only.
Args = typing.Optional[typing.Dict[str, typing.Any]]


class TraceRecord:
    """Base record: a named happening on a track at a simulated time.

    ``track`` is a ``"scope/lane"`` path (e.g. ``"replica0/cpu"``); the
    Chrome exporter maps the scope to a process and the lane to a
    thread, which is what gives Perfetto one track per queue / server /
    replica.
    """

    __slots__ = ("ts", "category", "name", "track")

    def __init__(self, ts: float, category: str, name: str,
                 track: str) -> None:
        self.ts = ts
        self.category = category
        self.name = name
        self.track = track

    def __repr__(self) -> str:
        return (f"<{type(self).__name__} {self.category}:{self.name} "
                f"t={self.ts:.3f} track={self.track!r}>")


class InstantRecord(TraceRecord):
    """A point event; ``txn_id`` is -1 for non-transaction events."""

    __slots__ = ("txn_id", "args")

    def __init__(self, ts: float, category: str, name: str, track: str,
                 txn_id: int = -1, args: Args = None) -> None:
        super().__init__(ts, category, name, track)
        self.txn_id = txn_id
        self.args = args


class SpanRecord(TraceRecord):
    """A completed duration (``ts`` .. ``ts + dur``) on a track."""

    __slots__ = ("dur", "txn_id", "args")

    def __init__(self, ts: float, dur: float, category: str, name: str,
                 track: str, txn_id: int = -1, args: Args = None) -> None:
        super().__init__(ts, category, name, track)
        self.dur = dur
        self.txn_id = txn_id
        self.args = args


class CounterRecord(TraceRecord):
    """One sample of a numeric signal (ρ, queue depth, backlog, ...)."""

    __slots__ = ("value",)

    def __init__(self, ts: float, category: str, name: str, track: str,
                 value: float) -> None:
        super().__init__(ts, category, name, track)
        self.value = value
