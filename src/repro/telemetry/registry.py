"""A hierarchical registry of counters, gauges, histograms, and series.

The registry *wraps* the measurement primitives the simulator already
trusts (:mod:`repro.sim.monitor`'s ``Counter``/``Tally``/``TimeSeries``)
behind slash-separated hierarchical names — ``"replica0/txn/commit"``,
``"server/sched/rho"`` — so one object aggregates everything a run
produces and the exporters can walk it uniformly.

Time series are *bounded* (``TimeSeries(max_points=...)``'s
fixed-interval downsampling), so week-long simulated runs keep O(1)
memory per signal.  ``Histogram`` adds fixed-boundary bucket counts on
top of ``Tally``'s streaming moments, cheap enough for per-commit
latencies.
"""

from __future__ import annotations

import bisect
import typing

from repro.sim.monitor import Counter, Tally, TimeSeries

#: Default bound on retained points per registry series.
DEFAULT_SERIES_POINTS = 4_096

#: Default histogram boundaries (ms-ish scale: latencies, staleness).
DEFAULT_BUCKETS = (0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0,
                   500.0, 1_000.0, 2_000.0, 5_000.0, 10_000.0)


class Histogram:
    """A ``Tally`` plus fixed-boundary bucket counts.

    Bucket ``i`` counts observations ``<= boundaries[i]``; the final
    implicit bucket counts the overflow.  Boundaries are fixed at
    construction so histograms from parallel workers can be merged
    bucket-wise.
    """

    __slots__ = ("name", "boundaries", "counts", "tally")

    def __init__(self, name: str = "",
                 boundaries: typing.Sequence[float] = DEFAULT_BUCKETS,
                 ) -> None:
        if list(boundaries) != sorted(boundaries):
            raise ValueError("histogram boundaries must be sorted")
        self.name = name
        self.boundaries = tuple(boundaries)
        self.counts = [0] * (len(self.boundaries) + 1)
        self.tally = Tally(name)

    def __repr__(self) -> str:
        return (f"<Histogram {self.name!r} n={self.tally.count} "
                f"mean={self.tally.mean:.4g}>")

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.boundaries, value)] += 1
        self.tally.observe(value)

    def merge(self, other: "Histogram") -> "Histogram":
        if other.boundaries != self.boundaries:
            raise ValueError(
                f"cannot merge histograms with different boundaries "
                f"({self.name!r} vs {other.name!r})")
        for i, count in enumerate(other.counts):
            self.counts[i] += count
        self.tally.merge(other.tally)
        return self


class MetricsRegistry:
    """Lazily-created, name-addressed metrics with hierarchical scoping.

    All four metric kinds share one flat namespace keyed by the full
    slash path; :meth:`scoped` returns a view that prefixes every name,
    which is how each replica (or the portal, or the kernel) gets its
    own subtree without threading path strings everywhere.
    """

    def __init__(self, *,
                 series_points: int = DEFAULT_SERIES_POINTS) -> None:
        if series_points < 2:
            raise ValueError(
                f"series_points must be >= 2, got {series_points}")
        self.series_points = series_points
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, TimeSeries] = {}
        self._histograms: dict[str, Histogram] = {}

    def __repr__(self) -> str:
        return (f"<MetricsRegistry counters={len(self._counters)} "
                f"gauges={len(self._gauges)} "
                f"histograms={len(self._histograms)}>")

    # ------------------------------------------------------------------
    # Metric accessors (create on first use)
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = Counter(name)
            self._counters[name] = counter
        return counter

    def gauge(self, name: str) -> TimeSeries:
        """A bounded (time, value) series — ρ, queue depth, backlog."""
        series = self._gauges.get(name)
        if series is None:
            series = TimeSeries(name, max_points=self.series_points)
            self._gauges[name] = series
        return series

    def histogram(self, name: str,
                  boundaries: typing.Sequence[float] = DEFAULT_BUCKETS,
                  ) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = Histogram(name, boundaries)
            self._histograms[name] = histogram
        return histogram

    def scoped(self, prefix: str) -> "ScopedRegistry":
        """A view registering every metric under ``prefix/``."""
        return ScopedRegistry(self, prefix)

    # ------------------------------------------------------------------
    # Iteration / aggregation
    # ------------------------------------------------------------------
    def counter_values(self) -> dict[str, int]:
        return {name: c.value
                for name, c in sorted(self._counters.items())}

    def gauges(self) -> dict[str, TimeSeries]:
        return dict(sorted(self._gauges.items()))

    def histograms(self) -> dict[str, Histogram]:
        return dict(sorted(self._histograms.items()))

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold another registry in (combining parallel-worker results).

        Counters add, histograms merge bucket-wise, and gauges are
        *kept* from whichever side has them (time series from different
        workers describe different runs and cannot be interleaved
        meaningfully; first writer wins, later duplicates are ignored).
        """
        for name, counter in other._counters.items():
            self.counter(name).increment(counter.value)
        for name, histogram in other._histograms.items():
            self.histogram(name, histogram.boundaries).merge(histogram)
        for name, series in other._gauges.items():
            self._gauges.setdefault(name, series)
        return self


class ScopedRegistry:
    """A prefixing view over a :class:`MetricsRegistry`."""

    __slots__ = ("_registry", "prefix")

    def __init__(self, registry: MetricsRegistry, prefix: str) -> None:
        if not prefix or prefix.endswith("/"):
            raise ValueError(f"bad scope prefix {prefix!r}")
        self._registry = registry
        self.prefix = prefix

    def __repr__(self) -> str:
        return f"<ScopedRegistry {self.prefix!r}>"

    def counter(self, name: str) -> Counter:
        return self._registry.counter(f"{self.prefix}/{name}")

    def gauge(self, name: str) -> TimeSeries:
        return self._registry.gauge(f"{self.prefix}/{name}")

    def histogram(self, name: str,
                  boundaries: typing.Sequence[float] = DEFAULT_BUCKETS,
                  ) -> Histogram:
        return self._registry.histogram(f"{self.prefix}/{name}",
                                        boundaries)

    def scoped(self, prefix: str) -> "ScopedRegistry":
        return ScopedRegistry(self._registry, f"{self.prefix}/{prefix}")
