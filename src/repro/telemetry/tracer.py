"""The tracer: a bounded ring buffer of typed trace records.

Design constraints, in priority order:

1. **Determinism** — the tracer is a pure observer.  It never draws
   randomness, never schedules events, and stamps records with simulated
   time handed in by the caller; simulation results are byte-identical
   with tracing enabled or disabled.
2. **Zero overhead when off** — instrumentation points hold a
   ``Tracer | None`` and guard with ``if tracer is not None``; a
   disabled run never constructs a tracer, so the hot paths pay one
   pointer comparison at most (and the kernel loop pays nothing at all —
   see :meth:`repro.sim.environment.Environment.run`).
3. **Bounded memory when on** — records land in a ring buffer of
   ``buffer_size`` slots; once full, the oldest records are overwritten
   and counted in :attr:`Tracer.dropped` (the summary report surfaces
   the loss instead of silently truncating).
"""

from __future__ import annotations

import dataclasses
import typing

from .events import (CATEGORIES, CounterRecord, InstantRecord, SpanRecord,
                     TraceRecord)

#: Default ring capacity: ~1M records covers a standard-scale run with
#: every category on, at roughly 100 bytes/record of retained memory.
DEFAULT_BUFFER_SIZE = 1_000_000


@dataclasses.dataclass(frozen=True)
class TelemetryConfig:
    """The ``telemetry=`` knob on server / experiment configs.

    A plain, picklable value object so parallel sweep tasks can carry it
    to worker processes.  ``categories`` is the per-category enable set;
    the default traces everything.

    ``sample_rate`` keeps only a deterministic fraction of a category's
    records: a mapping (or tuple of pairs) ``{category: rate}`` with
    rates in ``(0, 1]``.  Sampling is stride-based — rate 0.1 keeps
    every 10th record of that category, counted per category — so it
    draws no randomness and the kept subset is identical run-to-run.
    Categories absent from the mapping keep everything.
    """

    enabled: bool = True
    categories: tuple[str, ...] = tuple(sorted(CATEGORIES))
    buffer_size: int = DEFAULT_BUFFER_SIZE
    #: Per-category keep fraction; normalised to a sorted tuple of
    #: ``(category, rate)`` pairs so the config stays hashable/picklable.
    sample_rate: typing.Any = ()

    def __post_init__(self) -> None:
        if self.buffer_size <= 0:
            raise ValueError(
                f"buffer_size must be positive, got {self.buffer_size}")
        unknown = set(self.categories) - CATEGORIES
        if unknown:
            raise ValueError(
                f"unknown telemetry categories {sorted(unknown)}; "
                f"choose from {sorted(CATEGORIES)}")
        pairs = (self.sample_rate.items()
                 if isinstance(self.sample_rate, dict)
                 else self.sample_rate)
        normalised = tuple(sorted((str(cat), float(rate))
                                  for cat, rate in pairs))
        for cat, rate in normalised:
            if cat not in CATEGORIES:
                raise ValueError(
                    f"unknown telemetry category {cat!r} in sample_rate; "
                    f"choose from {sorted(CATEGORIES)}")
            if not 0.0 < rate <= 1.0:
                raise ValueError(
                    f"sample_rate for {cat!r} must be in (0, 1], "
                    f"got {rate}")
        object.__setattr__(self, "sample_rate", normalised)


class Tracer:
    """Ring-buffered trace sink with per-category enable flags."""

    __slots__ = ("categories", "capacity", "dropped", "emitted", "sampled",
                 "_buffer", "_head", "_stride_state")

    def __init__(self, categories: typing.Iterable[str] | None = None,
                 buffer_size: int = DEFAULT_BUFFER_SIZE,
                 sample_rate: typing.Iterable[tuple[str, float]] = (),
                 ) -> None:
        if buffer_size <= 0:
            raise ValueError(
                f"buffer_size must be positive, got {buffer_size}")
        chosen = CATEGORIES if categories is None else frozenset(categories)
        unknown = chosen - CATEGORIES
        if unknown:
            raise ValueError(
                f"unknown telemetry categories {sorted(unknown)}; "
                f"choose from {sorted(CATEGORIES)}")
        #: Enabled categories; emits outside this set are dropped early.
        self.categories = chosen
        self.capacity = buffer_size
        #: Records overwritten by ring wrap-around (oldest-first loss).
        self.dropped = 0
        #: Records accepted (retained + dropped).
        self.emitted = 0
        #: Records skipped by per-category stride sampling.
        self.sampled = 0
        self._buffer: list[TraceRecord] = []
        self._head = 0  # next write position once the ring is full
        #: Per-category stride state, ``category -> [phase, stride]``:
        #: keep every Nth record.  Deterministic — a modulo counter, no
        #: randomness (determinism rule 1 above).  One dict so the gate
        #: pays a single hash lookup per sampled-out record.
        self._stride_state: dict[str, list[int]] = {}
        for category, rate in sample_rate:
            stride = max(1, round(1.0 / rate))
            if stride > 1:
                self._stride_state[category] = [0, stride]

    @classmethod
    def from_config(cls, config: TelemetryConfig | None) -> "Tracer | None":
        """A tracer per ``config`` — or None for off (the no-op path)."""
        if config is None or not config.enabled:
            return None
        return cls(categories=config.categories,
                   buffer_size=config.buffer_size,
                   sample_rate=config.sample_rate)

    def __len__(self) -> int:
        return len(self._buffer)

    def __repr__(self) -> str:
        return (f"<Tracer n={len(self._buffer)}/{self.capacity} "
                f"dropped={self.dropped} "
                f"categories={sorted(self.categories)}>")

    def enabled_for(self, category: str) -> bool:
        return category in self.categories

    # ------------------------------------------------------------------
    # Emission (hot when tracing is on; callers guard the None case)
    # ------------------------------------------------------------------
    def _push(self, record: TraceRecord) -> None:
        self.emitted += 1
        buffer = self._buffer
        if len(buffer) < self.capacity:
            buffer.append(record)
            return
        buffer[self._head] = record
        self._head = (self._head + 1) % self.capacity
        self.dropped += 1

    def _keep(self, category: str) -> bool:
        """Stride sampling: keep the 1st of every ``stride`` records.

        Checked *before* the record object is built, so a sampled-out
        emit costs one dict probe and an integer bump — that is where
        the overhead reduction comes from.
        """
        state = self._stride_state.get(category)
        if state is None:
            return True
        phase = state[0]
        state[0] = (phase + 1) % state[1]
        if phase:
            self.sampled += 1
            return False
        return True

    def gate(self, category: str) -> bool:
        """Category filter + stride gate in one call, for hot probes.

        Probes whose emit sites build ``args`` dicts call this *first*
        and only construct the record payload (and call the ``emit_*``
        fast paths) when it returns True — a sampled-out emit then costs
        one call and two dict probes, nothing more.  Each call advances
        the category's stride phase, exactly like an emit would.
        """
        if category not in self.categories:
            return False
        # _keep() inlined: this is the hottest call in a sampled run.
        state = self._stride_state.get(category)
        if state is None:
            return True
        phase = state[0]
        state[0] = (phase + 1) % state[1]
        if phase:
            self.sampled += 1
            return False
        return True

    def gater(self, category: str) -> typing.Callable[[], bool]:
        """A zero-argument :meth:`gate` bound to one category.

        Probes that gate the same category on every call resolve the
        category membership and stride state once, here, and keep the
        returned closure — the per-record cost drops to a single call
        with no dict lookups.  Stride accounting is shared with
        :meth:`gate` (both advance the same phase counter).
        """
        if category not in self.categories:
            return lambda: False
        state = self._stride_state.get(category)
        if state is None:
            return lambda: True

        def gate() -> bool:
            phase = state[0]
            state[0] = (phase + 1) % state[1]
            if phase:
                self.sampled += 1
                return False
            return True

        return gate

    # Fast paths for pre-gated callers: no filter, no stride — the
    # caller already consumed :meth:`gate` for this record.
    def emit_instant(self, ts: float, category: str, name: str,
                     track: str, txn_id: int = -1,
                     args: dict[str, typing.Any] | None = None) -> None:
        self._push(InstantRecord(ts, category, name, track, txn_id, args))

    def emit_span(self, ts: float, dur: float, category: str, name: str,
                  track: str, txn_id: int = -1,
                  args: dict[str, typing.Any] | None = None) -> None:
        self._push(SpanRecord(ts, dur, category, name, track, txn_id,
                              args))

    def emit_counter(self, ts: float, category: str, name: str,
                     track: str, value: float) -> None:
        self._push(CounterRecord(ts, category, name, track, value))

    def instant(self, ts: float, category: str, name: str, track: str,
                txn_id: int = -1,
                args: dict[str, typing.Any] | None = None) -> None:
        if category in self.categories and self._keep(category):
            self._push(InstantRecord(ts, category, name, track, txn_id,
                                     args))

    def span(self, ts: float, dur: float, category: str, name: str,
             track: str, txn_id: int = -1,
             args: dict[str, typing.Any] | None = None) -> None:
        if category in self.categories and self._keep(category):
            self._push(SpanRecord(ts, dur, category, name, track, txn_id,
                                  args))

    def counter(self, ts: float, category: str, name: str, track: str,
                value: float) -> None:
        if category in self.categories and self._keep(category):
            self._push(CounterRecord(ts, category, name, track, value))

    # ------------------------------------------------------------------
    # Reading (exporters and tests)
    # ------------------------------------------------------------------
    def records(self) -> list[TraceRecord]:
        """All retained records, oldest first (unwraps the ring)."""
        buffer = self._buffer
        if len(buffer) < self.capacity or self._head == 0:
            return list(buffer)
        return buffer[self._head:] + buffer[:self._head]

    def instants(self) -> list[InstantRecord]:
        return [r for r in self.records() if isinstance(r, InstantRecord)]

    def spans(self) -> list[SpanRecord]:
        return [r for r in self.records() if isinstance(r, SpanRecord)]

    def counters(self) -> list[CounterRecord]:
        return [r for r in self.records() if isinstance(r, CounterRecord)]
