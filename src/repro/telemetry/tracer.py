"""The tracer: a bounded ring buffer of typed trace records.

Design constraints, in priority order:

1. **Determinism** — the tracer is a pure observer.  It never draws
   randomness, never schedules events, and stamps records with simulated
   time handed in by the caller; simulation results are byte-identical
   with tracing enabled or disabled.
2. **Zero overhead when off** — instrumentation points hold a
   ``Tracer | None`` and guard with ``if tracer is not None``; a
   disabled run never constructs a tracer, so the hot paths pay one
   pointer comparison at most (and the kernel loop pays nothing at all —
   see :meth:`repro.sim.environment.Environment.run`).
3. **Bounded memory when on** — records land in a ring buffer of
   ``buffer_size`` slots; once full, the oldest records are overwritten
   and counted in :attr:`Tracer.dropped` (the summary report surfaces
   the loss instead of silently truncating).
"""

from __future__ import annotations

import dataclasses
import typing

from .events import (CATEGORIES, CounterRecord, InstantRecord, SpanRecord,
                     TraceRecord)

#: Default ring capacity: ~1M records covers a standard-scale run with
#: every category on, at roughly 100 bytes/record of retained memory.
DEFAULT_BUFFER_SIZE = 1_000_000


@dataclasses.dataclass(frozen=True)
class TelemetryConfig:
    """The ``telemetry=`` knob on server / experiment configs.

    A plain, picklable value object so parallel sweep tasks can carry it
    to worker processes.  ``categories`` is the per-category enable set;
    the default traces everything.
    """

    enabled: bool = True
    categories: tuple[str, ...] = tuple(sorted(CATEGORIES))
    buffer_size: int = DEFAULT_BUFFER_SIZE

    def __post_init__(self) -> None:
        if self.buffer_size <= 0:
            raise ValueError(
                f"buffer_size must be positive, got {self.buffer_size}")
        unknown = set(self.categories) - CATEGORIES
        if unknown:
            raise ValueError(
                f"unknown telemetry categories {sorted(unknown)}; "
                f"choose from {sorted(CATEGORIES)}")


class Tracer:
    """Ring-buffered trace sink with per-category enable flags."""

    __slots__ = ("categories", "capacity", "dropped", "emitted",
                 "_buffer", "_head")

    def __init__(self, categories: typing.Iterable[str] | None = None,
                 buffer_size: int = DEFAULT_BUFFER_SIZE) -> None:
        if buffer_size <= 0:
            raise ValueError(
                f"buffer_size must be positive, got {buffer_size}")
        chosen = CATEGORIES if categories is None else frozenset(categories)
        unknown = chosen - CATEGORIES
        if unknown:
            raise ValueError(
                f"unknown telemetry categories {sorted(unknown)}; "
                f"choose from {sorted(CATEGORIES)}")
        #: Enabled categories; emits outside this set are dropped early.
        self.categories = chosen
        self.capacity = buffer_size
        #: Records overwritten by ring wrap-around (oldest-first loss).
        self.dropped = 0
        #: Records accepted (retained + dropped).
        self.emitted = 0
        self._buffer: list[TraceRecord] = []
        self._head = 0  # next write position once the ring is full

    @classmethod
    def from_config(cls, config: TelemetryConfig | None) -> "Tracer | None":
        """A tracer per ``config`` — or None for off (the no-op path)."""
        if config is None or not config.enabled:
            return None
        return cls(categories=config.categories,
                   buffer_size=config.buffer_size)

    def __len__(self) -> int:
        return len(self._buffer)

    def __repr__(self) -> str:
        return (f"<Tracer n={len(self._buffer)}/{self.capacity} "
                f"dropped={self.dropped} "
                f"categories={sorted(self.categories)}>")

    def enabled_for(self, category: str) -> bool:
        return category in self.categories

    # ------------------------------------------------------------------
    # Emission (hot when tracing is on; callers guard the None case)
    # ------------------------------------------------------------------
    def _push(self, record: TraceRecord) -> None:
        self.emitted += 1
        buffer = self._buffer
        if len(buffer) < self.capacity:
            buffer.append(record)
            return
        buffer[self._head] = record
        self._head = (self._head + 1) % self.capacity
        self.dropped += 1

    def instant(self, ts: float, category: str, name: str, track: str,
                txn_id: int = -1,
                args: dict[str, typing.Any] | None = None) -> None:
        if category in self.categories:
            self._push(InstantRecord(ts, category, name, track, txn_id,
                                     args))

    def span(self, ts: float, dur: float, category: str, name: str,
             track: str, txn_id: int = -1,
             args: dict[str, typing.Any] | None = None) -> None:
        if category in self.categories:
            self._push(SpanRecord(ts, dur, category, name, track, txn_id,
                                  args))

    def counter(self, ts: float, category: str, name: str, track: str,
                value: float) -> None:
        if category in self.categories:
            self._push(CounterRecord(ts, category, name, track, value))

    # ------------------------------------------------------------------
    # Reading (exporters and tests)
    # ------------------------------------------------------------------
    def records(self) -> list[TraceRecord]:
        """All retained records, oldest first (unwraps the ring)."""
        buffer = self._buffer
        if len(buffer) < self.capacity or self._head == 0:
            return list(buffer)
        return buffer[self._head:] + buffer[:self._head]

    def instants(self) -> list[InstantRecord]:
        return [r for r in self.records() if isinstance(r, InstantRecord)]

    def spans(self) -> list[SpanRecord]:
        return [r for r in self.records() if isinstance(r, SpanRecord)]

    def counters(self) -> list[CounterRecord]:
        return [r for r in self.records() if isinstance(r, CounterRecord)]
