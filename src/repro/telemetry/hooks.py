"""Instrumentation points: probes the simulator's layers call into.

A :class:`TelemetrySession` bundles one :class:`~.tracer.Tracer` and one
:class:`~.registry.MetricsRegistry` for a run, and hands out *probes* —
small ``__slots__`` objects bound to a scope (``"server"``,
``"replica0"``, ``"portal"``, ``"kernel"``) that translate simulator
happenings into trace records and registry updates.

The calling convention everywhere is::

    if self._probe is not None:
        self._probe.commit(now, txn)

so a run without telemetry pays exactly one pointer comparison per
instrumentation point (and none at all in the kernel event loop, which
switches to the instrumented variant only when a probe is attached).
Probes never mutate simulator state and never consume randomness:
results are byte-identical with telemetry on or off.
"""

from __future__ import annotations

import typing

from repro.sim.events import Event

from . import events as ev
from .registry import MetricsRegistry, ScopedRegistry
from .tracer import TelemetryConfig, Tracer

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.db.transactions import Query, Transaction


class TelemetrySession:
    """One run's telemetry: the tracer, the registry, and probe factory."""

    __slots__ = ("config", "tracer", "registry")

    def __init__(self, config: TelemetryConfig | None = None) -> None:
        self.config = config or TelemetryConfig()
        tracer = Tracer.from_config(self.config)
        if tracer is None:
            raise ValueError(
                "TelemetrySession requires an enabled TelemetryConfig; "
                "pass telemetry=None to run without instrumentation")
        self.tracer = tracer
        self.registry = MetricsRegistry()

    @classmethod
    def from_knob(cls, telemetry: "TelemetryKnob",
                  ) -> "TelemetrySession | None":
        """Coerce the user-facing ``telemetry=`` knob into a session.

        Accepts ``None``/``False`` (off), ``True`` (defaults), a
        :class:`TelemetryConfig`, or an existing session (shared across
        replicas / reused by the caller).
        """
        if telemetry is None or telemetry is False:
            return None
        if telemetry is True:
            return cls(TelemetryConfig())
        if isinstance(telemetry, TelemetryConfig):
            return cls(telemetry) if telemetry.enabled else None
        if isinstance(telemetry, TelemetrySession):
            return telemetry
        raise TypeError(
            f"telemetry must be None, bool, TelemetryConfig, or "
            f"TelemetrySession, got {telemetry!r}")

    def __repr__(self) -> str:
        return f"<TelemetrySession {self.tracer!r}>"

    # ------------------------------------------------------------------
    # Probe factory
    # ------------------------------------------------------------------
    def server_probe(self, scope: str = "server") -> "ServerProbe":
        return ServerProbe(self.tracer, self.registry.scoped(scope), scope)

    def scheduler_probe(self, scope: str = "server") -> "SchedulerProbe":
        return SchedulerProbe(self.tracer, self.registry.scoped(scope),
                              scope)

    def cluster_probe(self, scope: str = "portal") -> "ClusterProbe":
        return ClusterProbe(self.tracer, self.registry.scoped(scope),
                            scope)

    def kernel_probe(self, scope: str = "kernel") -> "KernelProbe":
        return KernelProbe(self.registry.scoped(scope))

    def shard_probe(self, scope: str = "shard") -> "ShardProbe":
        return ShardProbe(self.tracer, self.registry.scoped(scope), scope)


#: What the ``telemetry=`` keyword accepts throughout the stack.
TelemetryKnob = typing.Union[None, bool, TelemetryConfig, TelemetrySession]


def _txn_kind(txn: "Transaction") -> str:
    return "query" if txn.is_query else "update"


class ServerProbe:
    """Transaction lifecycle + CPU occupancy for one database server."""

    __slots__ = ("tracer", "metrics", "scope", "_lifecycle", "_cpu",
                 "_counters", "_h_response", "_h_staleness", "_h_slice",
                 "_gate_txn", "_gate_sched")

    def __init__(self, tracer: Tracer, metrics: ScopedRegistry,
                 scope: str) -> None:
        self.tracer = tracer
        self.metrics = metrics
        self.scope = scope
        self._lifecycle = f"{scope}/lifecycle"
        self._cpu = f"{scope}/cpu"
        #: Bound ``Counter.increment`` methods keyed by event name.  The
        #: lifecycle path fires per transaction per transition; caching
        #: skips the f-string build, the registry dict probe, and the
        #: attribute lookup on the hot path.
        self._counters: dict[str, typing.Any] = {}
        # Histogram handles, lazily resolved like the counters above.
        self._h_response = None
        self._h_staleness = None
        self._h_slice = None
        # Bound per-category gates (see Tracer.gater): the lifecycle
        # hooks fire several times per transaction, so the membership
        # and stride lookups are resolved once here.
        self._gate_txn = tracer.gater(ev.CAT_TXN)
        self._gate_sched = tracer.gater(ev.CAT_SCHED)

    # -- lifecycle instants --------------------------------------------
    def _count(self, name: str) -> None:
        """Exact lifecycle counters — never sampled (they must match
        the ledger bit-for-bit; only trace *records* are sampled)."""
        increment = self._counters.get(name)
        if increment is None:
            increment = self.metrics.counter(f"txn/{name}").increment
            self._counters[name] = increment
        increment()

    def _mark(self, now: float, name: str, txn: "Transaction",
              args: dict[str, typing.Any] | None = None) -> None:
        if self._gate_txn():
            self.tracer.emit_instant(now, ev.CAT_TXN, name,
                                     self._lifecycle, txn.txn_id, args)
        # _count() inlined — this is the hottest lifecycle path.
        increment = self._counters.get(name)
        if increment is None:
            increment = self.metrics.counter(f"txn/{name}").increment
            self._counters[name] = increment
        increment()

    def arrive(self, now: float, txn: "Transaction") -> None:
        if self._gate_txn():
            self.tracer.emit_instant(now, ev.CAT_TXN, ev.TXN_ARRIVE,
                                     self._lifecycle, txn.txn_id,
                                     {"kind": _txn_kind(txn),
                                      "exec_ms": txn.exec_time})
        self._count(ev.TXN_ARRIVE)

    def queued(self, now: float, txn: "Transaction") -> None:
        self._mark(now, ev.TXN_QUEUE, txn)

    def reject(self, now: float, txn: "Transaction") -> None:
        self._mark(now, ev.TXN_REJECT, txn)

    def running(self, now: float, txn: "Transaction",
                resumed: bool) -> None:
        self._mark(now, ev.TXN_RESUME if resumed else ev.TXN_START, txn)

    def preempt(self, now: float, txn: "Transaction",
                by: "Transaction") -> None:
        if self._gate_txn():
            self.tracer.emit_instant(now, ev.CAT_TXN, ev.TXN_PREEMPT,
                                     self._lifecycle, txn.txn_id,
                                     {"by": by.txn_id})
        self._count(ev.TXN_PREEMPT)
        if self._gate_sched():
            self.tracer.emit_instant(now, ev.CAT_SCHED,
                                     ev.SCHED_PREEMPTION,
                                     f"{self.scope}/sched", txn.txn_id,
                                     {"by": by.txn_id})

    def suspend(self, now: float, txn: "Transaction") -> None:
        self._mark(now, ev.TXN_SUSPEND, txn)

    def block(self, now: float, txn: "Transaction") -> None:
        self._mark(now, ev.TXN_BLOCK, txn)

    def restart(self, now: float, txn: "Transaction") -> None:
        self._mark(now, ev.TXN_RESTART, txn)

    def commit(self, now: float, txn: "Transaction") -> None:
        # Histograms are exact (never sampled); the args dict is only
        # built when the stride gate keeps this record.
        if txn.is_query:
            query = typing.cast("Query", txn)
            hist = self._h_response
            if hist is None:
                hist = self._h_response = self.metrics.histogram(
                    "txn/response_time_ms")
            hist.observe(query.response_time())
            if query.staleness is not None:
                hist = self._h_staleness
                if hist is None:
                    hist = self._h_staleness = self.metrics.histogram(
                        "txn/staleness")
                hist.observe(query.staleness)
        if self._gate_txn():
            tracer = self.tracer
            args: dict[str, typing.Any] = {"kind": _txn_kind(txn)}
            if txn.is_query:
                query = typing.cast("Query", txn)
                args["rt_ms"] = query.response_time()
                args["staleness"] = query.staleness
                args["profit"] = query.total_profit
            tracer.emit_instant(now, ev.CAT_TXN, ev.TXN_COMMIT,
                                self._lifecycle, txn.txn_id, args)
        self._count(ev.TXN_COMMIT)

    def expire(self, now: float, txn: "Transaction") -> None:
        self._mark(now, ev.TXN_EXPIRE, txn)

    def supersede(self, now: float, txn: "Transaction",
                  by: "Transaction") -> None:
        if self._gate_txn():
            self.tracer.emit_instant(now, ev.CAT_TXN, ev.TXN_SUPERSEDE,
                                     self._lifecycle, txn.txn_id,
                                     {"by": by.txn_id})
        self._count(ev.TXN_SUPERSEDE)

    def unfinished(self, now: float, txn: "Transaction") -> None:
        self._mark(now, ev.TXN_UNFINISHED, txn)

    # -- CPU occupancy spans -------------------------------------------
    def cpu_slice(self, start: float, end: float,
                  txn: "Transaction") -> None:
        if end <= start:
            return  # zero-length slice (e.g. interrupted at dispatch)
        if self._gate_txn():
            self.tracer.emit_span(start, end - start, ev.CAT_TXN,
                                  _txn_kind(txn), self._cpu, txn.txn_id,
                                  {"id": txn.txn_id})
        hist = self._h_slice
        if hist is None:
            hist = self._h_slice = self.metrics.histogram("cpu/slice_ms")
        hist.observe(end - start)

    def overhead(self, start: float, end: float) -> None:
        if end <= start:
            return
        self.tracer.span(start, end - start, ev.CAT_SCHED, "class_switch",
                         self._cpu)
        self.metrics.counter("cpu/class_switches").increment()


class SchedulerProbe:
    """Scheduler internals: slot draws, ρ updates, queue depths."""

    __slots__ = ("tracer", "metrics", "scope", "_sched", "_queues",
                 "_draws", "_switches", "_rho_gauge", "_depth_gauges",
                 "_gate_sched", "_sched_on")

    def __init__(self, tracer: Tracer, metrics: ScopedRegistry,
                 scope: str) -> None:
        self.tracer = tracer
        self.metrics = metrics
        self.scope = scope
        self._sched = f"{scope}/sched"
        self._queues = f"{scope}/queues"
        # Metric handles, resolved lazily on first use (so an idle probe
        # registers nothing) and cached — the depth/ρ paths fire per
        # scheduling decision and the registry lookup shows up in
        # profiles.
        self._draws = None
        self._switches = None
        self._rho_gauge = None
        self._depth_gauges: tuple[typing.Any, typing.Any] | None = None
        # Bound gate + membership flag, resolved once (see Tracer.gater).
        self._gate_sched = tracer.gater(ev.CAT_SCHED)
        self._sched_on = tracer.enabled_for(ev.CAT_SCHED)

    def quantum_draw(self, now: float, xi: float, state: str) -> None:
        if self._gate_sched():
            self.tracer.emit_instant(now, ev.CAT_SCHED,
                                     ev.SCHED_QUANTUM_DRAW, self._sched,
                                     -1, {"xi": xi, "state": state})
        counter = self._draws
        if counter is None:
            counter = self._draws = self.metrics.counter(
                "sched/quantum_draws")
        counter.increment()

    def queue_switch(self, now: float, state: str) -> None:
        if self._gate_sched():
            self.tracer.emit_instant(now, ev.CAT_SCHED,
                                     ev.SCHED_QUEUE_SWITCH, self._sched,
                                     -1, {"state": state})
        counter = self._switches
        if counter is None:
            counter = self._switches = self.metrics.counter(
                "sched/queue_switches")
        counter.increment()

    def rho_update(self, now: float, rho: float, qos_max: float,
                   qod_max: float) -> None:
        tracer = self.tracer
        # One gate for the ρ instant + counter pair: they describe the
        # same observation, so sampling keeps or drops them together.
        # The gauge time series rides the same stride — it is a
        # monitoring view, not a ledger, so decimating it with the
        # trace records is exactly what ``sample_rate`` promises
        # (ledger counters and histograms stay exact).  With the
        # category disabled outright the gauge keeps every point, as
        # it always has.
        if self._gate_sched():
            tracer.emit_instant(now, ev.CAT_SCHED, ev.SCHED_RHO_UPDATE,
                                self._sched, -1,
                                {"rho": rho, "qos_max": qos_max,
                                 "qod_max": qod_max})
            tracer.emit_counter(now, ev.CAT_SCHED, "rho", self._sched,
                                rho)
        elif self._sched_on:
            return  # sampled out: skip the gauge point on this stride
        gauge = self._rho_gauge
        if gauge is None:
            gauge = self._rho_gauge = self.metrics.gauge("sched/rho")
        gauge.record(now, rho)

    def wants_depths(self) -> bool:
        """One stride draw for the next queue-depth snapshot.

        False means this snapshot is sampled out and the caller can skip
        computing the depths entirely — the scheduler's ``len()`` sums
        fire per decision, so skipping them is part of the sampling win.
        A True consumes the stride slot; follow it with exactly one
        :meth:`record_depths`.
        """
        return self._gate_sched() or not self._sched_on

    def record_depths(self, now: float, queries: int,
                      updates: int) -> None:
        """Emit one pre-gated depth snapshot (see :meth:`wants_depths`).

        The two counters are a single snapshot of the scheduler's
        queues, kept or dropped together; the gauge time series rides
        the same stride (decimation rule as :meth:`rho_update`).
        """
        if self._sched_on:
            tracer = self.tracer
            tracer.emit_counter(now, ev.CAT_SCHED, "queue_depth_queries",
                                self._queues, queries)
            tracer.emit_counter(now, ev.CAT_SCHED, "queue_depth_updates",
                                self._queues, updates)
        gauges = self._depth_gauges
        if gauges is None:
            gauges = self._depth_gauges = (
                self.metrics.gauge("sched/queue_depth_queries").record,
                self.metrics.gauge("sched/queue_depth_updates").record)
        gauges[0](now, queries)
        gauges[1](now, updates)

    def queue_depths(self, now: float, queries: int,
                     updates: int) -> None:
        if self.wants_depths():
            self.record_depths(now, queries, updates)


class ClusterProbe:
    """Portal-level incidents: crashes, recoveries, failover, replay."""

    __slots__ = ("tracer", "metrics", "scope", "_track")

    def __init__(self, tracer: Tracer, metrics: ScopedRegistry,
                 scope: str) -> None:
        self.tracer = tracer
        self.metrics = metrics
        self.scope = scope
        self._track = f"{scope}/cluster"

    def _mark(self, now: float, name: str, txn_id: int = -1,
              args: dict[str, typing.Any] | None = None) -> None:
        self.tracer.instant(now, ev.CAT_CLUSTER, name, self._track,
                            txn_id, args)
        self.metrics.counter(f"cluster/{name}").increment()

    def crash(self, now: float, replica: int | None) -> None:
        self._mark(now, ev.CLUSTER_CRASH, -1, {"replica": replica})

    def recover(self, now: float, replica: int | None,
                resynced: int) -> None:
        self._mark(now, ev.CLUSTER_RECOVER, -1,
                   {"replica": replica, "resynced": resynced})

    def failover(self, now: float, txn: "Transaction") -> None:
        self._mark(now, ev.CLUSTER_FAILOVER, txn.txn_id)

    def adopt(self, now: float, txn: "Transaction", replica: int) -> None:
        self._mark(now, ev.CLUSTER_ADOPT, txn.txn_id,
                   {"replica": replica})

    def lost(self, now: float, txn: "Transaction") -> None:
        """A transaction died with a crash (the ``lost`` txn terminal
        lives on the cluster track: no single server owns it)."""
        self.tracer.instant(now, ev.CAT_TXN, ev.TXN_LOST, self._track,
                            txn.txn_id, {"kind": _txn_kind(txn)})
        self.metrics.counter(f"txn/{ev.TXN_LOST}").increment()

    def replay(self, now: float, replica: int, records: int) -> None:
        self._mark(now, ev.CLUSTER_REPLAY, -1,
                   {"replica": replica, "records": records})

    def checkpoint(self, now: float, replica: int) -> None:
        self._mark(now, ev.CLUSTER_CHECKPOINT, -1, {"replica": replica})

    # -- gray failures -------------------------------------------------
    def slow(self, now: float, replica: int, factor: float) -> None:
        self._mark(now, ev.CLUSTER_SLOW, -1,
                   {"replica": replica, "factor": factor})

    def gap(self, now: float, replica: int, missed: int,
            out_of_order: bool) -> None:
        self._mark(now, ev.CLUSTER_GAP, -1,
                   {"replica": replica, "missed": missed,
                    "out_of_order": out_of_order})

    def window(self, now: float, replica: int, mode: str) -> None:
        self._mark(now, ev.CLUSTER_WINDOW, -1,
                   {"replica": replica, "mode": mode})

    def heal(self, now: float, replica: int, mode: str,
             resynced: int) -> None:
        self._mark(now, ev.CLUSTER_HEAL, -1,
                   {"replica": replica, "mode": mode,
                    "resynced": resynced})

    def breaker(self, now: float, replica: int, state: str) -> None:
        self._mark(now, ev.CLUSTER_BREAKER, -1,
                   {"replica": replica, "state": state})

    def corrupt(self, now: float, replica: int, records: int) -> None:
        self._mark(now, ev.CLUSTER_WAL_CORRUPT, -1,
                   {"replica": replica, "records": records})


class ShardProbe:
    """Shard-layer happenings: routing, fan-out chains, migrations.

    Point events land on the ``<scope>/planner`` lane (routing and
    rebalancing decisions) while each resolved fan-out additionally
    emits a *span* covering submit → merge on ``<scope>/fanout`` — in
    Perfetto the fan-out lane reads as a chain of scatter-gather
    windows, one per multi-shard query, with the sub-query lifecycle
    events nested on the per-shard ``shardN/replicaM`` tracks below.
    """

    __slots__ = ("tracer", "metrics", "scope", "_track", "_fanout_track")

    def __init__(self, tracer: Tracer, metrics: ScopedRegistry,
                 scope: str) -> None:
        self.tracer = tracer
        self.metrics = metrics
        self.scope = scope
        self._track = f"{scope}/planner"
        self._fanout_track = f"{scope}/fanout"

    def _mark(self, now: float, name: str, txn_id: int = -1,
              args: dict[str, typing.Any] | None = None) -> None:
        self.tracer.instant(now, ev.CAT_SHARD, name, self._track,
                            txn_id, args)
        self.metrics.counter(f"shard/{name}").increment()

    def route(self, now: float, txn: "Transaction", shard: int) -> None:
        self._mark(now, ev.SHARD_ROUTE, txn.txn_id, {"shard": shard})

    def fanout(self, now: float, txn: "Transaction",
               shards: list[int]) -> None:
        self._mark(now, ev.SHARD_FANOUT, txn.txn_id,
                   {"shards": shards, "width": len(shards)})

    def merge(self, now: float, txn: "Transaction", submitted: float,
              committed: int, failed: int, degraded: bool) -> None:
        self._mark(now, ev.SHARD_MERGE, txn.txn_id,
                   {"committed": committed, "failed": failed,
                    "degraded": degraded})
        self.tracer.span(submitted, now - submitted, ev.CAT_SHARD,
                         "fanout_window", self._fanout_track, txn.txn_id,
                         {"committed": committed, "failed": failed})

    def migrate_start(self, now: float, source: int, dest: int,
                      keys: int) -> None:
        self._mark(now, ev.SHARD_MIGRATE_START, -1,
                   {"source": source, "dest": dest, "keys": keys})

    def migrate_copy(self, now: float, source: int, dest: int,
                     items: int) -> None:
        self._mark(now, ev.SHARD_MIGRATE_COPY, -1,
                   {"source": source, "dest": dest, "items": items})

    def cutover(self, now: float, source: int, dest: int,
                replayed: int) -> None:
        self._mark(now, ev.SHARD_CUTOVER, -1,
                   {"source": source, "dest": dest, "replayed": replayed})

    def rebalance(self, now: float, hot: int, cold: int,
                  moved_keys: int) -> None:
        self._mark(now, ev.SHARD_REBALANCE, -1,
                   {"hot": hot, "cold": cold, "moved_keys": moved_keys})


class KernelProbe:
    """Per-kind event counts from the instrumented kernel loop.

    The loop calls :meth:`on_event` once per processed event; counts
    are keyed by event *class* (one dict operation per event — the kind
    name is a pure function of the class, so translating via
    :func:`event_kind` waits until :meth:`flush` folds the totals into
    the registry after the run).  Satisfies
    :class:`repro.sim.environment.EventObserver`.
    """

    __slots__ = ("metrics", "_by_class")

    def __init__(self, metrics: ScopedRegistry) -> None:
        self.metrics = metrics
        self._by_class: dict[type, int] = {}

    @property
    def counts(self) -> dict[str, int]:
        """Per-kind totals (classes sharing a kind name are summed)."""
        counts: dict[str, int] = {}
        for cls, count in self._by_class.items():
            kind = cls.__name__.lower()  # event_kind(), sans instance
            counts[kind] = counts.get(kind, 0) + count
        return counts

    def on_event(self, event: Event) -> None:
        by_class = self._by_class
        cls = type(event)
        by_class[cls] = by_class.get(cls, 0) + 1

    def flush(self) -> None:
        for kind, count in sorted(self.counts.items()):
            self.metrics.counter(f"events_{kind}").increment(count)
