"""Instrumentation points: probes the simulator's layers call into.

A :class:`TelemetrySession` bundles one :class:`~.tracer.Tracer` and one
:class:`~.registry.MetricsRegistry` for a run, and hands out *probes* —
small ``__slots__`` objects bound to a scope (``"server"``,
``"replica0"``, ``"portal"``, ``"kernel"``) that translate simulator
happenings into trace records and registry updates.

The calling convention everywhere is::

    if self._probe is not None:
        self._probe.commit(now, txn)

so a run without telemetry pays exactly one pointer comparison per
instrumentation point (and none at all in the kernel event loop, which
switches to the instrumented variant only when a probe is attached).
Probes never mutate simulator state and never consume randomness:
results are byte-identical with telemetry on or off.
"""

from __future__ import annotations

import typing

from repro.sim.events import Event, event_kind

from . import events as ev
from .registry import MetricsRegistry, ScopedRegistry
from .tracer import TelemetryConfig, Tracer

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.db.transactions import Query, Transaction


class TelemetrySession:
    """One run's telemetry: the tracer, the registry, and probe factory."""

    __slots__ = ("config", "tracer", "registry")

    def __init__(self, config: TelemetryConfig | None = None) -> None:
        self.config = config or TelemetryConfig()
        tracer = Tracer.from_config(self.config)
        if tracer is None:
            raise ValueError(
                "TelemetrySession requires an enabled TelemetryConfig; "
                "pass telemetry=None to run without instrumentation")
        self.tracer = tracer
        self.registry = MetricsRegistry()

    @classmethod
    def from_knob(cls, telemetry: "TelemetryKnob",
                  ) -> "TelemetrySession | None":
        """Coerce the user-facing ``telemetry=`` knob into a session.

        Accepts ``None``/``False`` (off), ``True`` (defaults), a
        :class:`TelemetryConfig`, or an existing session (shared across
        replicas / reused by the caller).
        """
        if telemetry is None or telemetry is False:
            return None
        if telemetry is True:
            return cls(TelemetryConfig())
        if isinstance(telemetry, TelemetryConfig):
            return cls(telemetry) if telemetry.enabled else None
        if isinstance(telemetry, TelemetrySession):
            return telemetry
        raise TypeError(
            f"telemetry must be None, bool, TelemetryConfig, or "
            f"TelemetrySession, got {telemetry!r}")

    def __repr__(self) -> str:
        return f"<TelemetrySession {self.tracer!r}>"

    # ------------------------------------------------------------------
    # Probe factory
    # ------------------------------------------------------------------
    def server_probe(self, scope: str = "server") -> "ServerProbe":
        return ServerProbe(self.tracer, self.registry.scoped(scope), scope)

    def scheduler_probe(self, scope: str = "server") -> "SchedulerProbe":
        return SchedulerProbe(self.tracer, self.registry.scoped(scope),
                              scope)

    def cluster_probe(self, scope: str = "portal") -> "ClusterProbe":
        return ClusterProbe(self.tracer, self.registry.scoped(scope),
                            scope)

    def kernel_probe(self, scope: str = "kernel") -> "KernelProbe":
        return KernelProbe(self.registry.scoped(scope))


#: What the ``telemetry=`` keyword accepts throughout the stack.
TelemetryKnob = typing.Union[None, bool, TelemetryConfig, TelemetrySession]


def _txn_kind(txn: "Transaction") -> str:
    return "query" if txn.is_query else "update"


class ServerProbe:
    """Transaction lifecycle + CPU occupancy for one database server."""

    __slots__ = ("tracer", "metrics", "scope", "_lifecycle", "_cpu")

    def __init__(self, tracer: Tracer, metrics: ScopedRegistry,
                 scope: str) -> None:
        self.tracer = tracer
        self.metrics = metrics
        self.scope = scope
        self._lifecycle = f"{scope}/lifecycle"
        self._cpu = f"{scope}/cpu"

    # -- lifecycle instants --------------------------------------------
    def _mark(self, now: float, name: str, txn: "Transaction",
              args: dict[str, typing.Any] | None = None) -> None:
        self.tracer.instant(now, ev.CAT_TXN, name, self._lifecycle,
                            txn.txn_id, args)
        self.metrics.counter(f"txn/{name}").increment()

    def arrive(self, now: float, txn: "Transaction") -> None:
        self._mark(now, ev.TXN_ARRIVE, txn,
                   {"kind": _txn_kind(txn), "exec_ms": txn.exec_time})

    def queued(self, now: float, txn: "Transaction") -> None:
        self._mark(now, ev.TXN_QUEUE, txn)

    def reject(self, now: float, txn: "Transaction") -> None:
        self._mark(now, ev.TXN_REJECT, txn)

    def running(self, now: float, txn: "Transaction",
                resumed: bool) -> None:
        self._mark(now, ev.TXN_RESUME if resumed else ev.TXN_START, txn)

    def preempt(self, now: float, txn: "Transaction",
                by: "Transaction") -> None:
        self._mark(now, ev.TXN_PREEMPT, txn, {"by": by.txn_id})
        self.tracer.instant(now, ev.CAT_SCHED, ev.SCHED_PREEMPTION,
                            f"{self.scope}/sched", txn.txn_id,
                            {"by": by.txn_id})

    def suspend(self, now: float, txn: "Transaction") -> None:
        self._mark(now, ev.TXN_SUSPEND, txn)

    def block(self, now: float, txn: "Transaction") -> None:
        self._mark(now, ev.TXN_BLOCK, txn)

    def restart(self, now: float, txn: "Transaction") -> None:
        self._mark(now, ev.TXN_RESTART, txn)

    def commit(self, now: float, txn: "Transaction") -> None:
        args: dict[str, typing.Any] = {"kind": _txn_kind(txn)}
        if txn.is_query:
            query = typing.cast("Query", txn)
            response = query.response_time()
            args["rt_ms"] = response
            args["staleness"] = query.staleness
            args["profit"] = query.total_profit
            self.metrics.histogram("txn/response_time_ms").observe(response)
            if query.staleness is not None:
                self.metrics.histogram("txn/staleness").observe(
                    query.staleness)
        self._mark(now, ev.TXN_COMMIT, txn, args)

    def expire(self, now: float, txn: "Transaction") -> None:
        self._mark(now, ev.TXN_EXPIRE, txn)

    def supersede(self, now: float, txn: "Transaction",
                  by: "Transaction") -> None:
        self._mark(now, ev.TXN_SUPERSEDE, txn, {"by": by.txn_id})

    def unfinished(self, now: float, txn: "Transaction") -> None:
        self._mark(now, ev.TXN_UNFINISHED, txn)

    # -- CPU occupancy spans -------------------------------------------
    def cpu_slice(self, start: float, end: float,
                  txn: "Transaction") -> None:
        if end <= start:
            return  # zero-length slice (e.g. interrupted at dispatch)
        self.tracer.span(start, end - start, ev.CAT_TXN, _txn_kind(txn),
                         self._cpu, txn.txn_id, {"id": txn.txn_id})
        self.metrics.histogram("cpu/slice_ms").observe(end - start)

    def overhead(self, start: float, end: float) -> None:
        if end <= start:
            return
        self.tracer.span(start, end - start, ev.CAT_SCHED, "class_switch",
                         self._cpu)
        self.metrics.counter("cpu/class_switches").increment()


class SchedulerProbe:
    """Scheduler internals: slot draws, ρ updates, queue depths."""

    __slots__ = ("tracer", "metrics", "scope", "_sched", "_queues")

    def __init__(self, tracer: Tracer, metrics: ScopedRegistry,
                 scope: str) -> None:
        self.tracer = tracer
        self.metrics = metrics
        self.scope = scope
        self._sched = f"{scope}/sched"
        self._queues = f"{scope}/queues"

    def quantum_draw(self, now: float, xi: float, state: str) -> None:
        self.tracer.instant(now, ev.CAT_SCHED, ev.SCHED_QUANTUM_DRAW,
                            self._sched, -1, {"xi": xi, "state": state})
        self.metrics.counter("sched/quantum_draws").increment()

    def queue_switch(self, now: float, state: str) -> None:
        self.tracer.instant(now, ev.CAT_SCHED, ev.SCHED_QUEUE_SWITCH,
                            self._sched, -1, {"state": state})
        self.metrics.counter("sched/queue_switches").increment()

    def rho_update(self, now: float, rho: float, qos_max: float,
                   qod_max: float) -> None:
        self.tracer.instant(now, ev.CAT_SCHED, ev.SCHED_RHO_UPDATE,
                            self._sched, -1,
                            {"rho": rho, "qos_max": qos_max,
                             "qod_max": qod_max})
        self.tracer.counter(now, ev.CAT_SCHED, "rho", self._sched, rho)
        self.metrics.gauge("sched/rho").record(now, rho)

    def queue_depths(self, now: float, queries: int,
                     updates: int) -> None:
        tracer = self.tracer
        tracer.counter(now, ev.CAT_SCHED, "queue_depth_queries",
                       self._queues, queries)
        tracer.counter(now, ev.CAT_SCHED, "queue_depth_updates",
                       self._queues, updates)
        self.metrics.gauge("sched/queue_depth_queries").record(now, queries)
        self.metrics.gauge("sched/queue_depth_updates").record(now, updates)


class ClusterProbe:
    """Portal-level incidents: crashes, recoveries, failover, replay."""

    __slots__ = ("tracer", "metrics", "scope", "_track")

    def __init__(self, tracer: Tracer, metrics: ScopedRegistry,
                 scope: str) -> None:
        self.tracer = tracer
        self.metrics = metrics
        self.scope = scope
        self._track = f"{scope}/cluster"

    def _mark(self, now: float, name: str, txn_id: int = -1,
              args: dict[str, typing.Any] | None = None) -> None:
        self.tracer.instant(now, ev.CAT_CLUSTER, name, self._track,
                            txn_id, args)
        self.metrics.counter(f"cluster/{name}").increment()

    def crash(self, now: float, replica: int | None) -> None:
        self._mark(now, ev.CLUSTER_CRASH, -1, {"replica": replica})

    def recover(self, now: float, replica: int | None,
                resynced: int) -> None:
        self._mark(now, ev.CLUSTER_RECOVER, -1,
                   {"replica": replica, "resynced": resynced})

    def failover(self, now: float, txn: "Transaction") -> None:
        self._mark(now, ev.CLUSTER_FAILOVER, txn.txn_id)

    def adopt(self, now: float, txn: "Transaction", replica: int) -> None:
        self._mark(now, ev.CLUSTER_ADOPT, txn.txn_id,
                   {"replica": replica})

    def lost(self, now: float, txn: "Transaction") -> None:
        """A transaction died with a crash (the ``lost`` txn terminal
        lives on the cluster track: no single server owns it)."""
        self.tracer.instant(now, ev.CAT_TXN, ev.TXN_LOST, self._track,
                            txn.txn_id, {"kind": _txn_kind(txn)})
        self.metrics.counter(f"txn/{ev.TXN_LOST}").increment()

    def replay(self, now: float, replica: int, records: int) -> None:
        self._mark(now, ev.CLUSTER_REPLAY, -1,
                   {"replica": replica, "records": records})

    def checkpoint(self, now: float, replica: int) -> None:
        self._mark(now, ev.CLUSTER_CHECKPOINT, -1, {"replica": replica})


class KernelProbe:
    """Per-kind event counts from the instrumented kernel loop.

    The loop calls :meth:`on_event` once per processed event; counts
    live in a plain dict (the cheapest thing that works at the loop's
    rate) and are folded into the registry by :meth:`flush` after the
    run.  Satisfies :class:`repro.sim.environment.EventObserver`.
    """

    __slots__ = ("metrics", "counts")

    def __init__(self, metrics: ScopedRegistry) -> None:
        self.metrics = metrics
        self.counts: dict[str, int] = {}

    def on_event(self, event: Event) -> None:
        kind = event_kind(event)
        self.counts[kind] = self.counts.get(kind, 0) + 1

    def flush(self) -> None:
        for kind, count in sorted(self.counts.items()):
            self.metrics.counter(f"events_{kind}").increment(count)
