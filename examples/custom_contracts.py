#!/usr/bin/env python3
"""Beyond the paper's shapes: piecewise-linear QCs, QoS-dependent
composition, and a custom low-level priority plugged into QUTS.

Three extension points of the library, all discussed but not evaluated in
the paper:

1. **Piecewise-linear profit functions** (§2.2 allows any non-increasing
   function): a "patient premium user" who pays full price up to 80 ms,
   then ramps down to a long tail.
2. **QoS-dependent composition** (§2.2): QoD profit only counts if the
   QoS deadline was met.
3. **Pluggable low-level priorities** (§4: "QUTS can utilize any priority
   scheme"): running QUTS with EDF instead of VRD for the query queue.

Run with::

    python examples/custom_contracts.py
"""

from repro import (CompositionMode, PiecewiseLinearProfit, QualityContract,
                   QUTSScheduler, StepProfit, paper_trace, run_simulation)
from repro.qc.generator import QCFactory
from repro.scheduling import EDFPriority
from repro.sim.rng import RandomStream


class PremiumUserContracts:
    """A custom QC source: mostly regular users, some premium users."""

    def __init__(self, premium_fraction: float = 0.2) -> None:
        self.premium_fraction = premium_fraction
        self._regular = QCFactory.balanced()

    def sample(self, rng: RandomStream, now: float = 0.0) -> QualityContract:
        if rng.random() >= self.premium_fraction:
            return self._regular.sample(rng, now)
        # Premium: $80 flat until 80 ms, ramp to $20 at 200 ms, then a
        # long $20 tail out to 1 s — they'd rather wait than get nothing.
        qos = PiecewiseLinearProfit([
            (0.0, 80.0), (80.0, 80.0), (200.0, 20.0), (1000.0, 0.0)])
        # Freshness is paid only if the answer was on time.
        qod = StepProfit(40.0, 1.0, inclusive=False)
        return QualityContract(qos, qod,
                               mode=CompositionMode.QOS_DEPENDENT)


def main() -> None:
    trace = paper_trace(master_seed=7, duration_ms=60_000.0)
    contracts = PremiumUserContracts()

    print(f"workload: {trace}\n")
    print(f"{'configuration':34s} {'QOS%':>7s} {'QOD%':>7s} {'total%':>7s}")
    print("-" * 60)

    # The paper's QUTS configuration (VRD queries).
    result = run_simulation(QUTSScheduler(), trace, contracts,
                            master_seed=1)
    print(f"{'QUTS + VRD (paper default)':34s} {result.qos_percent:7.3f} "
          f"{result.qod_percent:7.3f} {result.total_percent:7.3f}")

    # Demonstrate the two-level pluggability: EDF at the low level.
    result = run_simulation(QUTSScheduler(query_policy=EDFPriority()),
                            trace, contracts, master_seed=1)
    print(f"{'QUTS + EDF query queue':34s} {result.qos_percent:7.3f} "
          f"{result.qod_percent:7.3f} {result.total_percent:7.3f}")

    # Ablation: freeze rho (no adaptation) at the theoretical minimum.
    result = run_simulation(QUTSScheduler(fixed_rho=0.5), trace, contracts,
                            master_seed=1)
    print(f"{'QUTS + fixed rho=0.5 (ablation)':34s} "
          f"{result.qos_percent:7.3f} {result.qod_percent:7.3f} "
          f"{result.total_percent:7.3f}")


if __name__ == "__main__":
    main()
