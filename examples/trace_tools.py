#!/usr/bin/env python3
"""Working with traces: generate, inspect, persist, reload, replay.

The workload substrate is a library in its own right.  This example:

1. generates a 90-second slice of the paper's workload,
2. prints its Table 3 summary and Figure 5 statistics,
3. saves it to CSV, reloads it, and verifies the round trip,
4. replays the reloaded trace under two schedulers to show that results
   are a pure function of (trace, scheduler, seed).

Run with::

    python examples/trace_tools.py
"""

import tempfile
from pathlib import Path

from repro import (QCFactory, StockWorkloadGenerator, Trace, WorkloadSpec,
                   make_scheduler, run_simulation)
from repro.workload import (per_stock_counts, query_rate_series, summarize,
                            update_rate_series)


def main() -> None:
    spec = WorkloadSpec().scaled(90_000.0)
    generator = StockWorkloadGenerator(spec, master_seed=21)
    trace = generator.generate(name="demo-90s")

    print("== Table 3 style summary ==")
    for label, value in summarize(trace).rows():
        print(f"  {label:28s} {value}")

    print("\n== Figure 5 style statistics ==")
    q_rates = query_rate_series(trace)
    u_rates = update_rate_series(trace)
    stocks = per_stock_counts(trace)
    print(f"  query rate   mean {q_rates.mean:6.1f}/s  "
          f"max {q_rates.maximum}/s")
    print(f"  update rate  first half {u_rates.first_half_mean():6.1f}/s  "
          f"second half {u_rates.second_half_mean():6.1f}/s")
    print(f"  stocks with more updates than queries: "
          f"{stocks.fraction_below_diagonal():.0%}")
    print(f"  flash crowds in trace: {len(generator.crowds)}")

    with tempfile.TemporaryDirectory() as tmp:
        target = Path(tmp) / "demo"
        trace.save(target)
        files = sorted(p.name for p in target.iterdir())
        print(f"\nsaved to {target} ({files})")
        reloaded = Trace.load(target)
        assert reloaded.queries == trace.queries
        assert reloaded.updates == trace.updates
        print("round trip verified: identical records")

        print("\n== replaying the reloaded trace ==")
        contracts = QCFactory.balanced()
        for policy in ("QH", "QUTS"):
            result = run_simulation(make_scheduler(policy), reloaded,
                                    contracts, master_seed=1)
            print(f"  {policy:5s} total profit "
                  f"{result.total_percent:.1%}  "
                  f"(rt {result.mean_response_time:6.1f} ms, "
                  f"uu {result.mean_staleness:.2f})")


if __name__ == "__main__":
    main()
