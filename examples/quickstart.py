#!/usr/bin/env python3
"""Quickstart: run the QUTS scheduler on a one-minute stock workload.

This is the smallest end-to-end use of the public API:

1. generate a synthetic Stock.com/NYSE trace (scaled to 60 s),
2. attach balanced step Quality Contracts to every query,
3. simulate the web-database under QUTS,
4. print the gained profit and the classic performance metrics.

Run with::

    python examples/quickstart.py
"""

from repro import QCFactory, QUTSScheduler, paper_trace, run_simulation


def main() -> None:
    # A 60-second slice of the paper's workload: ~2.7k queries and ~17k
    # blind updates over ~4.6k stocks, at the same rates as the full trace.
    trace = paper_trace(master_seed=7, duration_ms=60_000.0)
    print(f"workload: {trace}")

    # Every query gets a step QC with qosmax, qodmax ~ U($10, $50),
    # rtmax ~ U(50 ms, 100 ms) and uumax = 1 (the paper's §5.1.1 setup).
    contracts = QCFactory.balanced(shape="step")

    result = run_simulation(QUTSScheduler(), trace, contracts,
                            master_seed=1)

    ledger = result.ledger
    print(f"\nprofit gained:   ${ledger.total_gained:,.0f} of "
          f"${ledger.total_max:,.0f} submitted "
          f"({result.total_percent:.1%})")
    print(f"  QoS share:     {result.qos_percent:.1%} "
          f"(max {ledger.qos_max_percent:.1%})")
    print(f"  QoD share:     {result.qod_percent:.1%} "
          f"(max {ledger.qod_max_percent:.1%})")
    print(f"\nmean response time: {result.mean_response_time:.1f} ms")
    print(f"mean staleness:     {result.mean_staleness:.3f} unapplied "
          f"updates")
    print(f"\noutcome counters: {result.counters}")


if __name__ == "__main__":
    main()
