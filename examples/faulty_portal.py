#!/usr/bin/env python3
"""A replicated portal surviving crashes mid-workload.

Two scenarios, same 30-second stock workload behind a hedged router:

1. *Replica crash.*  Eighteen seconds in, replica 0 fail-stops for
   eight seconds: its in-flight queries fail over to replica 1,
   broadcasts it misses are logged, and on recovery it rejoins *stale*
   and works off the re-sync backlog.  Compared with the identical
   fault-free deployment to show what the outage cost — and that no
   query ever vanishes from the books.

2. *Portal-wide crash, durable recovery.*  Every replica carries a
   write-ahead log with periodic checkpoints, then the whole portal
   goes dark at once (``portal_crash`` / ``portal_recover``).  Recovery
   restores the last checkpoint, replays the WAL tail, and re-syncs
   whatever the log lost; the incident reports its RPO (unflushed
   records lost) and RTO (time to a drained backlog).  The invariant
   monitor audits the entire run.

Run with::

    python examples/faulty_portal.py
"""

from repro import (DurabilityConfig, FaultPlan, QCFactory,
                   StockWorkloadGenerator, WorkloadSpec)
from repro.cluster import HedgedRouter, run_cluster_simulation
from repro.scheduling import QUTSScheduler

CRASH_AT_MS = 18_000.0
DOWN_MS = 8_000.0


def run(trace, plan, **kwargs):
    # Routers are stateful (cycle position, hedge bookkeeping): use a
    # fresh one per run so both runs route identically.
    return run_cluster_simulation(2, QUTSScheduler, trace,
                                  QCFactory.balanced(),
                                  router=HedgedRouter(), master_seed=1,
                                  fault_plan=plan, **kwargs)


def main() -> None:
    trace = StockWorkloadGenerator(WorkloadSpec().scaled(30_000.0),
                                   master_seed=7).generate()
    print(f"workload: {trace}")

    healthy = run(trace, FaultPlan.none())
    plan = FaultPlan.replica_crash(0, at_ms=CRASH_AT_MS, down_ms=DOWN_MS)
    faulted = run(trace, plan)

    print(f"fault plan: replica 0 down "
          f"{CRASH_AT_MS / 1000:.0f}-{(CRASH_AT_MS + DOWN_MS) / 1000:.0f} s "
          f"of {trace.duration_ms / 1000:.0f} s\n")
    print(f"{'':22s} {'fault-free':>12s} {'crashed':>12s}")
    for label, key in (("total profit %", "total_percent"),
                       ("QoS profit %", "qos_percent"),
                       ("QoD profit %", "qod_percent"),
                       ("availability", "availability")):
        print(f"{label:22s} {getattr(healthy, key):12.3f} "
              f"{getattr(faulted, key):12.3f}")

    c = faulted.counters
    print(f"\nwhat the outage did: {c.get('replica_crashes', 0)} crash, "
          f"{c.get('queries_failed_over', 0)} queries failed over, "
          f"{c.get('query_retries', 0)} resubmitted, "
          f"{c.get('queries_lost_crash', 0)} lost, "
          f"{c.get('updates_resynced', 0)} updates re-synced on recovery")

    accounted = (c.get("queries_committed", 0)
                 + c.get("queries_dropped_lifetime", 0)
                 + c.get("queries_unfinished", 0)
                 + c.get("queries_lost_crash", 0))
    print(f"ledger balance: {c.get('queries_submitted', 0)} submitted = "
          f"{accounted} accounted for "
          f"({'OK' if accounted == c.get('queries_submitted', 0) else 'BROKEN'})")

    portal_outage(trace)


def portal_outage(trace) -> None:
    """Scenario 2: every replica dies at once; the WAL brings them back."""
    plan = FaultPlan.portal_crash(at_ms=CRASH_AT_MS, down_ms=3_000.0)
    durability = DurabilityConfig(checkpoint_interval_ms=6_000.0,
                                  flush_every=8)
    audited = run(trace, plan, durability=durability, invariants=True)

    print(f"\n--- portal-wide crash at {CRASH_AT_MS / 1000:.0f} s, "
          f"checkpoints every {durability.checkpoint_interval_ms / 1000:.0f} s "
          f"---")
    incident = next(i for i in audited.incidents if i["scope"] == "portal")
    print(f"incident: scope={incident['scope']} "
          f"crashed at {incident['crashed_at_ms'] / 1000:.1f} s, "
          f"last checkpoint at {incident['checkpoint_at_ms'] / 1000:.1f} s")
    print(f"  RPO: {incident['rpo_uu']} unflushed WAL records lost "
          f"(group commit every {durability.flush_every})")
    print(f"  replayed {incident['wal_replayed']} WAL records, "
          f"re-synced {incident['resynced']} updates")
    rto = audited.rto_ms_max
    print(f"  RTO: {rto:.1f} ms to a drained re-sync backlog"
          if rto is not None else "  RTO: backlog not drained in-run")
    print(f"profit kept: {audited.total_percent:.3f} %; "
          f"availability {audited.availability:.3f} "
          f"(union of outage spans)")
    print(f"invariant monitor: "
          f"{'all conservation laws held' if audited.invariants_checked else 'off'}")


if __name__ == "__main__":
    main()
