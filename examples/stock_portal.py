#!/usr/bin/env python3
"""A stock-information portal under a flash crowd: comparing all policies.

This example reproduces the paper's motivating scenario (§1): a stock
portal facing the open-of-trading update surge *and* query flash crowds.
It compares the four schedulers on the same 2-minute workload and shows
why no fixed-priority policy wins on both QoS and QoD — and how QUTS
tracks the best of each.

Run with::

    python examples/stock_portal.py
"""

import dataclasses

from repro import (QCFactory, StockWorkloadGenerator, WorkloadSpec,
                   make_scheduler, run_simulation)


def main() -> None:
    # Crank the crowds up: a portal during breaking news.
    spec = dataclasses.replace(
        WorkloadSpec().scaled(120_000.0),
        crowds_per_5min=10.0,          # frequent flash crowds
        crowd_multiplier=(3.5, 5.0),   # ... and sharp ones
    )
    generator = StockWorkloadGenerator(spec, master_seed=42)
    trace = generator.generate()
    crowd_seconds = sum(
        (c.end_ms - c.start_ms) / 1000.0 for c in generator.crowds)
    print(f"workload: {trace}")
    print(f"flash crowds: {len(generator.crowds)} episodes, "
          f"{crowd_seconds:.0f} s total, "
          f"x{spec.crowd_multiplier[0]:.1f}-{spec.crowd_multiplier[1]:.1f} "
          f"query rate\n")

    contracts = QCFactory.balanced()
    header = (f"{'policy':8s} {'QOS%':>7s} {'QOD%':>7s} {'total%':>7s} "
              f"{'mean rt':>10s} {'staleness':>10s}")
    print(header)
    print("-" * len(header))
    results = {}
    for name in ("FIFO", "UH", "QH", "QUTS"):
        result = run_simulation(make_scheduler(name), trace, contracts,
                                master_seed=1)
        results[name] = result
        print(f"{name:8s} {result.qos_percent:7.3f} "
              f"{result.qod_percent:7.3f} {result.total_percent:7.3f} "
              f"{result.mean_response_time:8.1f}ms "
              f"{result.mean_staleness:10.3f}")

    best_fixed = max(("FIFO", "UH", "QH"),
                     key=lambda n: results[n].total_percent)
    quts = results["QUTS"].total_percent
    print(f"\nQUTS vs best fixed policy ({best_fixed}): "
          f"{quts:.3f} vs {results[best_fixed].total_percent:.3f} "
          f"({(quts / results[best_fixed].total_percent - 1) * 100:+.1f}%)")


if __name__ == "__main__":
    main()
