#!/usr/bin/env python3
"""Watch QUTS adapt when user preferences flip (the Figure 9 scenario).

User preferences change over time: for 75 s users value freshness five
times more than speed (qosmax:qodmax = 1:5), then the ratio flips to 5:1,
and so on.  QUTS re-optimises its CPU split ρ every adaptation period; this
example prints the ρ trajectory so you can watch it chase the preference
signal, exactly like Figure 9d.

Run with::

    python examples/preference_shift.py
"""

import statistics

from repro import (PhasedQCFactory, QUTSScheduler, paper_trace,
                   run_simulation)

PHASE_MS = 75_000.0
RATIOS = (0.2, 5.0, 0.2, 5.0)  # qosmax : qodmax per 75 s phase


def main() -> None:
    trace = paper_trace(master_seed=7, duration_ms=PHASE_MS * len(RATIOS))
    contracts = PhasedQCFactory.flip_flop(PHASE_MS, RATIOS)
    scheduler = QUTSScheduler()  # tau=10 ms, omega=1 s, the defaults

    result = run_simulation(scheduler, trace, contracts, master_seed=1)

    print(f"workload: {trace}")
    print(f"profit: total={result.total_percent:.1%} "
          f"(QoS {result.qos_percent:.1%}, QoD {result.qod_percent:.1%})\n")

    rho = result.rho_series
    assert rho is not None
    print("rho per adaptation period (one '#' per 0.02 above 0.5):")
    for phase_index, ratio in enumerate(RATIOS):
        start = phase_index * PHASE_MS
        end = start + PHASE_MS
        values = [v for t, v in rho.items() if start <= t < end]
        mean_rho = statistics.fmean(values)
        label = "QoS-heavy (5:1)" if ratio > 1 else "QoD-heavy (1:5)"
        print(f"\nphase {phase_index} [{start / 1000:.0f}s-"
              f"{end / 1000:.0f}s] {label}: mean rho = {mean_rho:.3f}")
        # Sample a few periods inside the phase to show the transient.
        for t, v in list(zip(*_thin(values, times=[
                t for t, __ in rho.items() if start <= t < end]))):
            bars = "#" * int(max(0.0, v - 0.5) / 0.02)
            print(f"  t={t / 1000:6.1f}s rho={v:.3f} {bars}")


def _thin(values, times, every=15):
    """Every ``every``-th sample, so the transient after each flip shows."""
    return ([times[i] for i in range(0, len(times), every)],
            [values[i] for i in range(0, len(values), every)])


if __name__ == "__main__":
    main()
