"""Property tests for the consistent-hash ring (repro.shard.ring).

The three properties the rebalancer's correctness rests on:

* **bijective ownership** — every key has exactly one owner, stable
  across calls and across reconstructed rings with the same seed;
* **balance** — at the paper's keyspace size (4,608 stocks) no shard
  owns more than a small factor of its fair share;
* **minimal movement** — growing the ring (new shard / raised weight)
  only moves keys *onto* the new arcs; shrinking a shard's weight only
  moves keys *off* that shard.  This is what makes a weight decrement a
  targeted hot-shard drain.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.shard.ring import HashRing

#: The paper's stock universe, as the workload generator names it.
STOCKS = [f"S{i}" for i in range(4_608)]


class TestConstruction:
    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            HashRing(0, seed=1)
        with pytest.raises(ValueError):
            HashRing(2, seed=1, vnodes_per_weight=0)
        with pytest.raises(ValueError):
            HashRing(2, seed=1, weights={5: 1})
        with pytest.raises(ValueError):
            HashRing(2, seed=1, weights={0: 0})

    def test_same_seed_same_ring(self):
        a = HashRing(4, seed=42)
        b = HashRing(4, seed=42)
        assert all(a.owner(k) == b.owner(k) for k in STOCKS)

    def test_different_seeds_differ(self):
        a = HashRing(4, seed=1)
        b = HashRing(4, seed=2)
        assert any(a.owner(k) != b.owner(k) for k in STOCKS)


class TestOwnership:
    @given(st.integers(min_value=1, max_value=9),
           st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=25, deadline=None)
    def test_assign_is_a_partition(self, n_shards, seed):
        ring = HashRing(n_shards, seed)
        assigned = ring.assign(STOCKS)
        flat = [key for keys in assigned.values() for key in keys]
        assert sorted(flat) == sorted(STOCKS)  # every key exactly once
        for shard, keys in assigned.items():
            assert all(ring.owner(k) == shard for k in keys)

    @given(st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=25, deadline=None)
    def test_owner_in_range(self, seed):
        ring = HashRing(5, seed)
        assert all(0 <= ring.owner(k) < 5 for k in STOCKS[:256])


class TestBalance:
    @given(st.sampled_from([2, 4, 8]),
           st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=15, deadline=None)
    def test_max_share_bounded(self, n_shards, seed):
        """No shard owns more than 2x its fair share of the 4,608
        stocks (the vnode count is chosen to keep this comfortably)."""
        ring = HashRing(n_shards, seed)
        counts = [len(keys) for keys in ring.assign(STOCKS).values()]
        fair = len(STOCKS) / n_shards
        assert max(counts) <= 2.0 * fair
        assert min(counts) > 0

    def test_weight_shifts_share(self):
        """Doubling one shard's weight should grow its share."""
        seed = 7
        even = HashRing(4, seed)
        skewed = HashRing(4, seed, weights={0: 2})
        even_share = len(even.assign(STOCKS)[0])
        skewed_share = len(skewed.assign(STOCKS)[0])
        assert skewed_share > even_share


class TestMinimalMovement:
    @given(st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=15, deadline=None)
    def test_add_shard_only_moves_to_new_shard(self, seed):
        ring = HashRing(4, seed)
        grown = ring.with_shard()
        moved = ring.moved_keys(grown, STOCKS)
        assert moved  # the new shard claims *something*
        for old, new in moved.values():
            assert new == 4  # ...and only the new shard gains keys
            assert old != new

    @given(st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=15, deadline=None)
    def test_weight_decrement_drains_only_that_shard(self, seed):
        """The rebalancer's core assumption: dropping a hot shard's
        weight moves keys exclusively *off* the hot shard."""
        ring = HashRing(4, seed, weights={s: 4 for s in range(4)})
        shrunk = ring.with_weight(2, 3)
        moved = ring.moved_keys(shrunk, STOCKS)
        assert moved
        for old, new in moved.values():
            assert old == 2
            assert new != 2

    @given(st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=15, deadline=None)
    def test_weight_increment_fills_only_that_shard(self, seed):
        ring = HashRing(4, seed, weights={s: 4 for s in range(4)})
        grown = ring.with_weight(1, 5)
        for _old, new in ring.moved_keys(grown, STOCKS).values():
            assert new == 1

    def test_movement_is_a_small_fraction(self):
        """One weight step at weight 4 moves roughly 1/16 of one
        shard's keys' worth — far from a full reshuffle."""
        ring = HashRing(4, seed=11, weights={s: 4 for s in range(4)})
        shrunk = ring.with_weight(3, 3)
        moved = ring.moved_keys(shrunk, STOCKS)
        assert 0 < len(moved) < len(STOCKS) * 0.15

    def test_unchanged_ring_moves_nothing(self):
        ring = HashRing(4, seed=3)
        assert ring.moved_keys(ring.with_weight(0, 1), STOCKS) == {}
