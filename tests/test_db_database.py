"""Unit tests for the Database: register table, invalidation, staleness."""

import pytest

from repro.db.database import Database
from repro.db.transactions import Query, TxnStatus, Update
from repro.qc.contracts import QualityContract


def make_update(item="IBM", at=0.0, value=1.0):
    return Update(arrival_time=at, exec_time=2.0, item=item, value=value)


def make_query(items=("IBM",), at=0.0):
    return Query(arrival_time=at, exec_time=7.0, items=items,
                 qc=QualityContract.free())


class TestItemAccess:
    def test_items_created_on_demand(self):
        db = Database()
        assert "IBM" not in db
        item = db.item("IBM")
        assert "IBM" in db
        assert db.item("IBM") is item
        assert len(db) == 1

    def test_prepopulated_keys(self):
        db = Database(keys=["A", "B"])
        assert len(db) == 2
        assert "A" in db and "B" in db

    def test_read_returns_replica_value(self):
        db = Database()
        update = make_update(value=42.0)
        db.register_update(update, now=1.0)
        assert db.read("IBM") == 0.0  # not applied yet
        db.apply_update(update, now=2.0)
        assert db.read("IBM") == 42.0

    def test_invalid_aggregation_rejected(self):
        with pytest.raises(ValueError):
            Database(staleness_aggregation="median")  # type: ignore


class TestRegisterTable:
    def test_first_update_registers_without_invalidation(self):
        db = Database()
        update = make_update()
        assert db.register_update(update, now=1.0) is None
        assert db.pending_update("IBM") is update
        assert update.seq == 1

    def test_newer_update_invalidates_pending(self):
        db = Database()
        old = make_update(at=1.0, value=1.0)
        new = make_update(at=2.0, value=2.0)
        db.register_update(old, now=1.0)
        superseded = db.register_update(new, now=2.0)
        assert superseded is old
        assert old.status is TxnStatus.DROPPED_SUPERSEDED
        assert old.finish_time == 2.0
        assert db.pending_update("IBM") is new

    def test_invalidation_is_per_item(self):
        db = Database()
        a = make_update(item="A")
        b = make_update(item="B")
        db.register_update(a, now=1.0)
        assert db.register_update(b, now=2.0) is None
        assert db.pending_count() == 2

    def test_apply_clears_register(self):
        db = Database()
        update = make_update()
        db.register_update(update, now=1.0)
        db.apply_update(update, now=2.0)
        assert db.pending_update("IBM") is None
        assert db.pending_count() == 0

    def test_apply_of_superseded_does_not_clear_newer_pending(self):
        db = Database()
        old = make_update(at=1.0, value=1.0)
        new = make_update(at=2.0, value=2.0)
        db.register_update(old, now=1.0)
        db.register_update(new, now=2.0)
        # A race: the old update was mid-execution when superseded and its
        # commit slips through — the register must still point at `new`.
        db.apply_update(old, now=3.0)
        assert db.pending_update("IBM") is new
        assert db.item("IBM").unapplied_updates == 1

    def test_sequence_numbers_increase_per_item(self):
        db = Database()
        u1, u2 = make_update(), make_update()
        other = make_update(item="MSFT")
        db.register_update(u1, now=1.0)
        db.register_update(u2, now=2.0)
        db.register_update(other, now=3.0)
        assert (u1.seq, u2.seq) == (1, 2)
        assert other.seq == 1


class TestQueryStaleness:
    def test_fresh_items_zero(self):
        db = Database()
        assert db.query_staleness(make_query(("A", "B"))) == 0.0

    def test_max_aggregation_default(self):
        db = Database()
        for __ in range(3):
            db.register_update(make_update(item="A"), now=1.0)
        db.register_update(make_update(item="B"), now=1.0)
        query = make_query(("A", "B"))
        assert db.query_staleness(query) == 3.0

    def test_mean_aggregation(self):
        db = Database(staleness_aggregation="mean")
        for __ in range(3):
            db.register_update(make_update(item="A"), now=1.0)
        db.register_update(make_update(item="B"), now=1.0)
        assert db.query_staleness(make_query(("A", "B"))) == pytest.approx(2.0)

    def test_sum_aggregation(self):
        db = Database(staleness_aggregation="sum")
        for __ in range(3):
            db.register_update(make_update(item="A"), now=1.0)
        db.register_update(make_update(item="B"), now=1.0)
        assert db.query_staleness(make_query(("A", "B"))) == 4.0

    def test_time_differential_aggregate(self):
        db = Database()
        db.register_update(make_update(item="A"), now=10.0)
        db.register_update(make_update(item="B"), now=30.0)
        query = make_query(("A", "B"))
        assert db.query_time_differential(query, now=40.0) == 30.0

    def test_value_distance_aggregate(self):
        db = Database()
        db.register_update(make_update(item="A", value=7.0), now=1.0)
        query = make_query(("A",))
        assert db.query_value_distance(query) == pytest.approx(7.0)
