"""Unit tests for the lazy-invalidation transaction queue."""

from repro.db.transactions import Query, TxnStatus, Update
from repro.qc.contracts import QualityContract
from repro.scheduling.priorities import FCFSPriority, VRDPriority
from repro.scheduling.queues import TransactionQueue


def update(at=0.0, item="A"):
    return Update(arrival_time=at, exec_time=1.0, item=item)


def query(at=0.0, qosmax=10.0, rtmax=50.0):
    return Query(arrival_time=at, exec_time=5.0, items=("A",),
                 qc=QualityContract.step(qosmax, rtmax, 0.0, 1.0))


class TestBasicOperations:
    def test_fifo_order(self):
        q = TransactionQueue(FCFSPriority())
        first, second = update(at=1.0), update(at=2.0)
        q.push(second)
        q.push(first)
        assert q.pop() is first
        assert q.pop() is second
        assert q.pop() is None

    def test_peek_does_not_remove(self):
        q = TransactionQueue(FCFSPriority())
        txn = update()
        q.push(txn)
        assert q.peek() is txn
        assert q.peek() is txn
        assert q.pop() is txn

    def test_vrd_order(self):
        q = TransactionQueue(VRDPriority())
        cheap = query(qosmax=1.0, rtmax=100.0)    # VRD 0.01
        valuable = query(qosmax=50.0, rtmax=50.0)  # VRD 1.0
        q.push(cheap)
        q.push(valuable)
        assert q.pop() is valuable

    def test_is_empty(self):
        q = TransactionQueue(FCFSPriority())
        assert q.is_empty()
        q.push(update())
        assert not q.is_empty()


class TestInvalidation:
    def test_dead_transactions_skipped_at_pop(self):
        q = TransactionQueue(FCFSPriority())
        dead, alive = update(at=1.0), update(at=2.0)
        q.push(dead)
        q.push(alive)
        dead.status = TxnStatus.DROPPED_SUPERSEDED
        assert q.pop() is alive

    def test_dead_transactions_skipped_at_peek(self):
        q = TransactionQueue(FCFSPriority())
        dead = update(at=1.0)
        q.push(dead)
        dead.status = TxnStatus.DROPPED_SUPERSEDED
        assert q.peek() is None
        assert q.is_empty()

    def test_len_counts_only_live_members(self):
        q = TransactionQueue(FCFSPriority())
        dead, alive = update(at=1.0), update(at=2.0)
        q.push(dead)
        q.push(alive)
        dead.status = TxnStatus.DROPPED_SUPERSEDED
        assert len(q) == 1

    def test_dead_push_ignored(self):
        q = TransactionQueue(FCFSPriority())
        dead = update()
        dead.status = TxnStatus.COMMITTED
        q.push(dead)
        assert q.pop() is None


class TestMembership:
    def test_double_push_is_single_entry(self):
        q = TransactionQueue(FCFSPriority())
        txn = update()
        q.push(txn)
        q.push(txn)
        assert q.pop() is txn
        assert q.pop() is None

    def test_push_after_pop_reenters(self):
        q = TransactionQueue(FCFSPriority())
        txn = update()
        q.push(txn)
        assert q.pop() is txn
        q.push(txn)
        assert q.pop() is txn

    def test_discard_removes(self):
        q = TransactionQueue(FCFSPriority())
        txn = update()
        q.push(txn)
        q.discard(txn)
        assert q.pop() is None

    def test_discard_unknown_is_noop(self):
        q = TransactionQueue(FCFSPriority())
        q.discard(update())  # must not raise

    def test_approximate_len_includes_dead(self):
        q = TransactionQueue(FCFSPriority())
        dead = update()
        q.push(dead)
        dead.status = TxnStatus.COMMITTED
        assert q.approximate_len() == 1
        assert len(q) == 0


class TestDrain:
    def test_drain_yields_in_priority_order(self):
        q = TransactionQueue(FCFSPriority())
        txns = [update(at=float(k)) for k in range(5)]
        for txn in reversed(txns):
            q.push(txn)
        assert list(q.drain()) == txns
        assert q.is_empty()

    def test_drain_skips_dead(self):
        q = TransactionQueue(FCFSPriority())
        a, b = update(at=1.0), update(at=2.0)
        q.push(a)
        q.push(b)
        a.status = TxnStatus.DROPPED_SUPERSEDED
        assert list(q.drain()) == [b]
