"""Unit tests for the lazy-invalidation transaction queue."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.transactions import Query, TxnStatus, Update
from repro.qc.contracts import QualityContract
from repro.scheduling.priorities import FCFSPriority, VRDPriority
from repro.scheduling.queues import (COMPACT_MIN_ENTRIES,
                                     TransactionQueue)


def update(at=0.0, item="A"):
    return Update(arrival_time=at, exec_time=1.0, item=item)


def query(at=0.0, qosmax=10.0, rtmax=50.0):
    return Query(arrival_time=at, exec_time=5.0, items=("A",),
                 qc=QualityContract.step(qosmax, rtmax, 0.0, 1.0))


class TestBasicOperations:
    def test_fifo_order(self):
        q = TransactionQueue(FCFSPriority())
        first, second = update(at=1.0), update(at=2.0)
        q.push(second)
        q.push(first)
        assert q.pop() is first
        assert q.pop() is second
        assert q.pop() is None

    def test_peek_does_not_remove(self):
        q = TransactionQueue(FCFSPriority())
        txn = update()
        q.push(txn)
        assert q.peek() is txn
        assert q.peek() is txn
        assert q.pop() is txn

    def test_vrd_order(self):
        q = TransactionQueue(VRDPriority())
        cheap = query(qosmax=1.0, rtmax=100.0)    # VRD 0.01
        valuable = query(qosmax=50.0, rtmax=50.0)  # VRD 1.0
        q.push(cheap)
        q.push(valuable)
        assert q.pop() is valuable

    def test_is_empty(self):
        q = TransactionQueue(FCFSPriority())
        assert q.is_empty()
        q.push(update())
        assert not q.is_empty()


class TestInvalidation:
    def test_dead_transactions_skipped_at_pop(self):
        q = TransactionQueue(FCFSPriority())
        dead, alive = update(at=1.0), update(at=2.0)
        q.push(dead)
        q.push(alive)
        dead.status = TxnStatus.DROPPED_SUPERSEDED
        assert q.pop() is alive

    def test_dead_transactions_skipped_at_peek(self):
        q = TransactionQueue(FCFSPriority())
        dead = update(at=1.0)
        q.push(dead)
        dead.status = TxnStatus.DROPPED_SUPERSEDED
        assert q.peek() is None
        assert q.is_empty()

    def test_len_counts_only_live_members(self):
        q = TransactionQueue(FCFSPriority())
        dead, alive = update(at=1.0), update(at=2.0)
        q.push(dead)
        q.push(alive)
        dead.status = TxnStatus.DROPPED_SUPERSEDED
        assert len(q) == 1

    def test_dead_push_ignored(self):
        q = TransactionQueue(FCFSPriority())
        dead = update()
        dead.status = TxnStatus.COMMITTED
        q.push(dead)
        assert q.pop() is None


class TestMembership:
    def test_double_push_is_single_entry(self):
        q = TransactionQueue(FCFSPriority())
        txn = update()
        q.push(txn)
        q.push(txn)
        assert q.pop() is txn
        assert q.pop() is None

    def test_push_after_pop_reenters(self):
        q = TransactionQueue(FCFSPriority())
        txn = update()
        q.push(txn)
        assert q.pop() is txn
        q.push(txn)
        assert q.pop() is txn

    def test_discard_removes(self):
        q = TransactionQueue(FCFSPriority())
        txn = update()
        q.push(txn)
        q.discard(txn)
        assert q.pop() is None

    def test_discard_unknown_is_noop(self):
        q = TransactionQueue(FCFSPriority())
        q.discard(update())  # must not raise

    def test_approximate_len_includes_dead(self):
        q = TransactionQueue(FCFSPriority())
        dead = update()
        q.push(dead)
        dead.status = TxnStatus.COMMITTED
        assert q.approximate_len() == 1
        assert len(q) == 0


class TestLiveCounts:
    """The O(1) counters must agree with an exhaustive scan, always.

    Regression: ``__len__`` used to scan the heap counting entries that
    were members *and* alive, while deaths-in-queue (superseded updates)
    left membership intact — so ``len(q)`` drifted from the membership
    set until the dead entry happened to be popped."""

    @given(st.lists(st.tuples(
        st.sampled_from(["push", "pop", "discard", "kill"]),
        st.integers(min_value=0, max_value=11)), max_size=120))
    @settings(max_examples=200, deadline=None)
    def test_len_matches_exact_scan(self, ops):
        q = TransactionQueue(FCFSPriority())
        pool = [update(at=float(k)) if k % 2 else query(at=float(k))
                for k in range(12)]
        for op, idx in ops:
            txn = pool[idx]
            if op == "push":
                q.push(txn)
            elif op == "pop":
                q.pop()
            elif op == "discard":
                q.discard(txn)
            elif txn.alive:  # kill: death while (possibly) queued
                txn.status = TxnStatus.DROPPED_SUPERSEDED
            live = [t for t in pool if t.txn_id in q._members]
            # Membership implies liveness: deaths retire eagerly.
            assert all(t.alive for t in live)
            assert len(q) == len(live)
            assert q.live_queries == sum(t.is_query for t in live)
            assert q.live_updates == sum(t.is_update for t in live)

    def test_death_in_queue_updates_len_immediately(self):
        q = TransactionQueue(FCFSPriority())
        txns = [update(at=float(k)) for k in range(5)]
        for txn in txns:
            q.push(txn)
        txns[2].status = TxnStatus.DROPPED_SUPERSEDED
        assert len(q) == 4
        assert q.live_updates == 4

    def test_counts_split_by_class(self):
        q = TransactionQueue(FCFSPriority())
        q.push(query(at=0.0))
        q.push(update(at=1.0))
        q.push(update(at=2.0))
        assert (q.live_queries, q.live_updates) == (1, 2)
        assert q.pop().is_query
        assert (q.live_queries, q.live_updates) == (0, 2)


class TestCompaction:
    def test_dead_backlog_is_swept(self):
        q = TransactionQueue(FCFSPriority())
        txns = [update(at=float(k)) for k in range(3 * COMPACT_MIN_ENTRIES)]
        for txn in txns:
            q.push(txn)
        for txn in txns[:-4]:  # kill all but the last four
            txn.status = TxnStatus.DROPPED_SUPERSEDED
        assert len(q) == 4
        # The heap was compacted: the dead backlog cannot exceed the
        # small-heap threshold once the live population collapses.
        assert q.approximate_len() < COMPACT_MIN_ENTRIES

    def test_compaction_preserves_pop_order(self):
        q = TransactionQueue(FCFSPriority())
        txns = [update(at=float(k)) for k in range(2 * COMPACT_MIN_ENTRIES)]
        for txn in txns:
            q.push(txn)
        survivors = txns[::7]
        for txn in txns:
            if txn not in survivors:
                txn.status = TxnStatus.DROPPED_SUPERSEDED
        assert list(q.drain()) == survivors


class TestDrain:
    def test_drain_yields_in_priority_order(self):
        q = TransactionQueue(FCFSPriority())
        txns = [update(at=float(k)) for k in range(5)]
        for txn in reversed(txns):
            q.push(txn)
        assert list(q.drain()) == txns
        assert q.is_empty()

    def test_drain_skips_dead(self):
        q = TransactionQueue(FCFSPriority())
        a, b = update(at=1.0), update(at=2.0)
        q.push(a)
        q.push(b)
        a.status = TxnStatus.DROPPED_SUPERSEDED
        assert list(q.drain()) == [b]
