"""Gray-failure taxonomy: scripted plans, self-healing, and defenses.

Exercises every fault kind beyond fail-stop through full cluster runs:
replica slowdowns, lossy broadcast windows (drop / delay / reorder) with
gap detection and re-sync on heal, silent WAL corruption surfacing at
recovery, the brownout admission response, and the jittered failover
backoff.  Also pins the two determinism contracts the chaos harness
leans on: an empty fault plan is byte-identical to no injector at all,
and identically-seeded gray-failure runs are byte-identical.
"""

import pytest

from repro.cluster import (HealthConfig, HedgedRouter, ReplicatedPortal,
                           RoundRobinRouter, run_cluster_simulation)
from repro.db.admission import BrownoutAdmission
from repro.db.wal import DurabilityConfig
from repro.faults import (DELAY_UPDATES, DROP_UPDATES, REORDER_UPDATES,
                          FaultPlan)
from repro.qc.contracts import QualityContract
from repro.qc.generator import QCFactory
from repro.db.transactions import Query
from repro.scheduling import make_qh, make_scheduler
from repro.sim import Environment
from repro.sim.rng import StreamRegistry
from repro.workload.synthetic import StockWorkloadGenerator, WorkloadSpec

DURATION_MS = 15_000.0
TRACE = StockWorkloadGenerator(WorkloadSpec().scaled(DURATION_MS),
                               master_seed=11).generate()


def run_cluster(*, fault_plan=None, durability=None, invariants=True,
                health=None, admission_factory=None, policy="QUTS",
                master_seed=1, n_replicas=2):
    return run_cluster_simulation(
        n_replicas, lambda: make_scheduler(policy), TRACE,
        QCFactory.balanced(), router=HedgedRouter(),
        master_seed=master_seed, fault_plan=fault_plan,
        durability=durability, invariants=invariants, health=health,
        admission_factory=admission_factory)


def balance_holds(counters) -> bool:
    return counters.get("queries_submitted", 0) == (
        counters.get("queries_committed", 0)
        + counters.get("queries_dropped_lifetime", 0)
        + counters.get("queries_unfinished", 0)
        + counters.get("queries_lost_crash", 0))


def fingerprint(result):
    """Everything that must be bit-identical between equivalent runs."""
    return (result.total_percent, result.qos_percent, result.qod_percent,
            result.mean_response_time, result.counters,
            result.routed_counts, result.state_digests)


# ---------------------------------------------------------------------------
# Scripted plans, one per gray fault kind
# ---------------------------------------------------------------------------
class TestSlowReplica:
    def test_slowdown_window_fires_and_restores(self):
        plan = FaultPlan.slowdown(0, at_ms=2_000.0, duration_ms=6_000.0,
                                  factor=4.0)
        result = run_cluster(fault_plan=plan)
        assert result.fault_counters["replica_slowdowns"] == 1
        assert result.fault_counters["replica_restores"] == 1
        assert balance_holds(result.counters)

    def test_slowdown_costs_response_time(self):
        baseline = run_cluster()
        slowed = run_cluster(fault_plan=FaultPlan.slowdown(
            0, at_ms=1_000.0, duration_ms=10_000.0, factor=8.0))
        assert slowed.mean_response_time > baseline.mean_response_time


class TestLossyBroadcastWindows:
    def test_drop_window_detects_gap_and_resyncs(self):
        plan = FaultPlan.update_loss(0, at_ms=3_000.0,
                                     duration_ms=5_000.0,
                                     mode=DROP_UPDATES)
        result = run_cluster(fault_plan=plan)
        fc = result.fault_counters
        assert fc["update_windows_opened"] == 1
        assert fc["update_windows_healed"] == 1
        assert fc["updates_dropped_window"] > 0
        # The heal re-delivers exactly what the window swallowed (the
        # invariant monitor enforces this too, via ``gap_healed``).
        assert fc["updates_gap_resynced"] == fc["updates_dropped_window"]
        assert fc["broadcast_gaps"] >= 1
        # Self-healing: both replicas converge to the same state.
        assert result.state_digests[0] == result.state_digests[1]
        assert balance_holds(result.counters)

    def test_delay_window_delivers_late_then_heals(self):
        plan = FaultPlan.update_loss(0, at_ms=3_000.0,
                                     duration_ms=5_000.0,
                                     mode=DELAY_UPDATES, delay_ms=800.0)
        result = run_cluster(fault_plan=plan)
        fc = result.fault_counters
        assert fc["updates_delayed"] > 0
        assert fc["update_windows_healed"] == 1
        assert result.state_digests[0] == result.state_digests[1]
        assert balance_holds(result.counters)

    def test_reorder_window_shuffles_then_converges(self):
        plan = FaultPlan.update_loss(0, at_ms=3_000.0,
                                     duration_ms=5_000.0,
                                     mode=REORDER_UPDATES)
        result = run_cluster(fault_plan=plan)
        fc = result.fault_counters
        assert fc["update_windows_opened"] == 1
        assert fc["update_windows_healed"] == 1
        # Out-of-order deliveries are observed, and the heal's
        # newest-wins re-delivery restores register convergence.
        assert fc["broadcast_out_of_order"] >= 1
        assert result.state_digests[0] == result.state_digests[1]
        assert balance_holds(result.counters)


class TestWalCorruption:
    def test_corruption_detected_and_read_repaired_at_recovery(self):
        durability = DurabilityConfig(checkpoint_interval_ms=2_000.0,
                                      flush_every=4)
        plan = FaultPlan.wal_corruption(0, at_ms=8_000.0,
                                        down_ms=1_000.0, records=2)
        result = run_cluster(fault_plan=plan, durability=durability)
        fc = result.fault_counters
        assert fc["wal_records_corrupted"] == 2
        assert fc["wal_corruption_detected"] >= 1
        # A healthy peer exists, so the refused tail is read-repaired.
        assert fc["wal_corrupt_resynced"] > 0
        assert fc.get("wal_corrupt_unrepaired", 0) == 0
        assert result.state_digests[0] == result.state_digests[1]
        assert balance_holds(result.counters)


# ---------------------------------------------------------------------------
# Defenses: breaker + brownout
# ---------------------------------------------------------------------------
class TestDefenses:
    def test_breaker_trips_on_persistent_slowness(self):
        health = HealthConfig(trip_suspicion=0.8, clear_suspicion=0.4,
                              open_ms=500.0)
        plan = FaultPlan.slowdown(0, at_ms=1_000.0,
                                  duration_ms=12_000.0, factor=8.0)
        result = run_cluster(fault_plan=plan, health=health)
        assert result.fault_counters["breaker_trips"] >= 1
        assert balance_holds(result.counters)

    def test_health_layer_off_by_default_is_byte_identical(self):
        # A portal without a HealthConfig builds no detector/breakers;
        # the fault-free fast path must be bit-identical to the seed's.
        assert fingerprint(run_cluster()) == fingerprint(run_cluster())

    def test_brownout_degrades_instead_of_shedding(self):
        factory = lambda: BrownoutAdmission(high_watermark=1,
                                            low_watermark=0,
                                            degrade_factor=0.4)
        result = run_cluster(admission_factory=factory)
        assert result.counters["queries_browned_out"] > 0
        # Brownout admits everything: no shed counter, balance intact.
        assert result.counters.get("queries_shed", 0) == 0
        assert balance_holds(result.counters)

    def test_brownout_keeps_contracts_in_denominator(self):
        factory = lambda: BrownoutAdmission(high_watermark=1,
                                            low_watermark=0)
        browned = run_cluster(admission_factory=factory)
        plain = run_cluster()
        total_max = sum(ledger.total_max
                        for ledger in browned.replica_ledgers)
        plain_max = sum(ledger.total_max
                        for ledger in plain.replica_ledgers)
        assert total_max == pytest.approx(plain_max)


# ---------------------------------------------------------------------------
# Determinism contracts
# ---------------------------------------------------------------------------
class TestDeterminism:
    def test_empty_plan_byte_identical_to_no_injector(self):
        bare = run_cluster(fault_plan=None)
        empty = run_cluster(fault_plan=FaultPlan.none())
        assert fingerprint(bare) == fingerprint(empty)

    def test_gray_failure_run_is_reproducible(self):
        plan = FaultPlan.update_loss(0, at_ms=3_000.0,
                                     duration_ms=4_000.0,
                                     mode=DROP_UPDATES).merged(
            FaultPlan.slowdown(1, at_ms=8_000.0, duration_ms=3_000.0))
        runs = [run_cluster(fault_plan=plan,
                            health=HealthConfig()) for __ in range(2)]
        assert fingerprint(runs[0]) == fingerprint(runs[1])
        assert runs[0].fault_counters == runs[1].fault_counters


# ---------------------------------------------------------------------------
# Jittered failover backoff (named ``cluster.retry-backoff`` stream)
# ---------------------------------------------------------------------------
class TestJitteredFailover:
    def test_retry_timeline_matches_named_stream(self):
        """Pin the exact retry timeline against an identically-seeded
        replay of the ``cluster.retry-backoff`` stream."""
        backoff_ms = 10.0
        recover_at = 100.0
        exec_ms = 7.0
        env = Environment()
        portal = ReplicatedPortal(env, 1, make_qh, StreamRegistry(0),
                                  failover_backoff_ms=backoff_ms)
        query = Query(0.0, exec_ms, ("A",),
                      QualityContract.step(10.0, 50.0, 10.0, 1.0,
                                           lifetime=150_000.0))

        def scenario(env):
            portal.crash_replica(0)
            assert portal.submit_query(query) == -1  # stranded arrival
            yield env.timeout(recover_at)
            portal.recover_replica(0)

        env.process(scenario(env))
        env.run(until=5_000.0)
        portal.finalize()

        # Replay the stream: attempt k sleeps backoff * 2^k * U[0.5,1.5];
        # the query is adopted at the first wakeup past the recovery.
        rng = StreamRegistry(0).stream("cluster.retry-backoff")
        wakeup = 0.0
        attempt = 0
        while True:
            wakeup += backoff_ms * (2.0 ** attempt) * rng.uniform(0.5, 1.5)
            if wakeup >= recover_at:
                break
            attempt += 1
        assert portal.counters()["query_retries"] == 1
        assert query.finish_time == pytest.approx(wakeup + exec_ms)

    def test_retry_delays_are_jittered_not_lockstep(self):
        # Two stranded queries must not wake in the same deterministic
        # lock-step pattern: consecutive draws differ.
        rng = StreamRegistry(0).stream("cluster.retry-backoff")
        draws = [rng.uniform(0.5, 1.5) for __ in range(4)]
        assert len(set(draws)) == len(draws)
        assert all(0.5 <= d <= 1.5 for d in draws)

    def test_failover_under_crash_plan_is_reproducible(self):
        plan = FaultPlan.replica_crash(0, at_ms=4_000.0, down_ms=3_000.0)
        runs = [run_cluster(fault_plan=plan) for __ in range(2)]
        assert fingerprint(runs[0]) == fingerprint(runs[1])
        assert runs[0].fault_counters["replica_crashes"] == 1
