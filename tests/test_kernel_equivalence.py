"""Equivalence of the calendar-queue kernel and its heapq specification.

:class:`~repro.sim.environment.Environment` (calendar queue) and
:class:`~repro.sim.environment.HeapEnvironment` (the previous binary-heap
kernel, kept verbatim as the executable specification) implement one
contract: events dispatch in exact ``(time, priority, eid)`` order.  The
property test here drives both through identical random operation
programs — timeouts with same-millisecond ties, explicit schedules at
every priority, chained timeouts fired *from callbacks* (which land in
the calendar's open bucket mid-drain), single steps, partial
``run(until=...)`` horizons (which exercise the un-dispatched-batch
restore path), and infinite delays (the far-future overflow list) — and
requires the observed dispatch logs to match element for element.

The ledger check then does the same at full-stack fidelity: one fig5
policy run per kernel, compared on every number a figure could hinge on.
"""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.experiments.runner as runner_mod
from repro.experiments.figures import _policy_run_task
from repro.qc.generator import QCFactory
from repro.sim import Environment
from repro.sim.environment import HeapEnvironment
from repro.sim.errors import EventLifecycleError
from repro.sim.events import Event
from repro.workload.synthetic import StockWorkloadGenerator, WorkloadSpec

#: Delays chosen to collide in calendar buckets (same ``int(t)``), to
#: straddle bucket edges, to skip far ahead, and to hit the non-finite
#: overflow path.
DELAYS = st.sampled_from([0.0, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0,
                          999.5, float("inf")])
#: Delay of a timeout scheduled *from the firing callback* (lands in or
#: after the bucket being drained), or None for no chaining.
CHAIN_DELAYS = st.one_of(st.none(), st.sampled_from([0.0, 0.25, 1.0]))
#: Event_URGENT, Event_NORMAL, and the until-stop priority.
PRIORITIES = st.sampled_from([0, 1, 2])

OPERATIONS = st.lists(
    st.one_of(
        st.tuples(st.just("timeout"), DELAYS, CHAIN_DELAYS),
        st.tuples(st.just("schedule"),
                  st.sampled_from([0.0, 0.5, 1.0, 10.0]), PRIORITIES),
        st.tuples(st.just("step")),
        st.tuples(st.just("until"), st.sampled_from([0.5, 1.0, 2.5])),
    ),
    max_size=60,
)


def _execute(env_cls, operations):
    """Run one operation program; return the observed dispatch log.

    Every scheduled event carries a unique tag and appends
    ``(now, tag)`` when dispatched, so two kernels agree on the log iff
    they pop identical (time, priority, eid, event) sequences.
    """
    env = env_cls()
    log: list[tuple[float, object]] = []

    def note(event):
        log.append((env.now, event._value))

    for i, operation in enumerate(operations):
        kind = operation[0]
        if kind == "timeout":
            __, delay, chain_delay = operation
            event = env.timeout(delay, value=("t", i))
            if chain_delay is None:
                event.callbacks.append(note)
            else:
                def fire(event, chain_delay=chain_delay, i=i):
                    note(event)
                    chained = env.timeout(chain_delay, value=("c", i))
                    chained.callbacks.append(note)

                event.callbacks.append(fire)
        elif kind == "schedule":
            __, delay, priority = operation
            event = Event(env)
            event._ok = True
            event._value = ("s", i)
            event.callbacks.append(note)
            env.schedule(event, delay=delay, priority=priority)
        elif kind == "step":
            try:
                env.step()
            except EventLifecycleError:
                pass  # empty queue: legal no-op in the program
        elif env.now != float("inf"):  # "until"
            # (Once an inf-timeout has been stepped, now + dt is NaN —
            # the calendar kernel rejects that loudly where the old
            # heap silently accepted a NaN-timed entry; neither is a
            # dispatch order to compare.)
            env.run(until=env.now + operation[1])
    env.run()
    return log


@given(OPERATIONS)
@settings(max_examples=200, deadline=None)
def test_calendar_and_heap_dispatch_identically(operations):
    assert (_execute(Environment, operations)
            == _execute(HeapEnvironment, operations))


def test_peek_and_step_agree_on_ties():
    """Same-ms ties: peek/step must walk both queues identically."""
    logs = []
    for env_cls in (Environment, HeapEnvironment):
        env = env_cls()
        for delay in (1.25, 1.75, 1.25, 0.5, 1.0):
            env.timeout(delay, value=delay)
        seen = []
        while env.peek() != float("inf"):
            at = env.peek()
            env.step()
            seen.append((at, env.now))
        logs.append(seen)
    assert logs[0] == logs[1]
    assert logs[0] == [(0.5, 0.5), (1.0, 1.0), (1.25, 1.25),
                       (1.25, 1.25), (1.75, 1.75)]


# ----------------------------------------------------------------------
# Full-stack ledger identity (fig5 fidelity)
# ----------------------------------------------------------------------
def _ledger(result) -> bytes:
    rho = (None if result.rho_series is None
           else tuple(result.rho_series.items()))
    return pickle.dumps((result.scheduler_name, result.qos_percent,
                         result.qod_percent, result.total_percent,
                         result.mean_response_time, result.mean_staleness,
                         sorted(result.counters.items()), rho))


@pytest.mark.parametrize("policy", ["QH", "QUTS"])
def test_fig5_ledger_bit_identical_across_kernels(policy, monkeypatch):
    trace = StockWorkloadGenerator(WorkloadSpec().scaled(20_000.0),
                                   master_seed=7).generate()
    factory = QCFactory.balanced()
    new_queue = _policy_run_task(policy, trace, factory, 3)
    monkeypatch.setattr(runner_mod, "Environment", HeapEnvironment)
    old_queue = _policy_run_task(policy, trace, factory, 3)
    assert _ledger(new_queue) == _ledger(old_queue)
