"""Unit tests for the Environment event loop."""

import pytest

from repro.sim import Environment, Infinity
from repro.sim.errors import EventLifecycleError, SchedulingError


class TestClock:
    def test_starts_at_zero(self):
        assert Environment().now == 0.0

    def test_custom_initial_time(self):
        assert Environment(initial_time=500.0).now == 500.0

    def test_run_until_time_advances_clock(self):
        env = Environment()

        def idle(env):
            yield env.timeout(1000)

        env.process(idle(env))
        env.run(until=250.0)
        assert env.now == 250.0

    def test_run_until_past_raises(self):
        env = Environment(initial_time=100.0)
        with pytest.raises(SchedulingError):
            env.run(until=50.0)

    def test_run_until_event_returns_value(self):
        env = Environment()

        def producer(env, done):
            yield env.timeout(5)
            done.succeed("answer")

        done = env.event()
        env.process(producer(env, done))
        assert env.run(until=done) == "answer"
        assert env.now == 5.0

    def test_run_exhausts_queue_without_until(self):
        env = Environment()

        def short(env):
            yield env.timeout(7)

        env.process(short(env))
        env.run()
        assert env.now == 7.0

    def test_events_at_until_time_are_processed(self):
        """Events scheduled exactly at the horizon run before stopping."""
        env = Environment()
        fired = []

        def proc(env):
            yield env.timeout(10)
            fired.append(env.now)

        env.process(proc(env))
        env.run(until=10.0)
        assert fired == [10.0]

    def test_run_until_processed_success_returns_value(self):
        env = Environment()
        done = env.event().succeed("answer")
        env.run()  # processes `done`
        assert env.run(until=done) == "answer"

    def test_run_until_processed_failed_event_reraises(self):
        # Regression: run(until=<already-processed failed event>) used
        # to *return* the exception object as the run value instead of
        # raising it the way the live path does.
        env = Environment()
        exc = RuntimeError("already failed")
        failed = env.event().fail(exc)
        failed.defuse()  # survive the live dispatch...
        env.run()
        failed._defused = False  # ...then present it un-defused
        with pytest.raises(RuntimeError, match="already failed"):
            env.run(until=failed)

    def test_run_until_processed_defused_failure_returns_value(self):
        """A defused failure is a handled outcome: returned, not raised."""
        env = Environment()
        exc = RuntimeError("handled")
        failed = env.event().fail(exc)
        failed.defuse()
        env.run()
        assert env.run(until=failed) is exc


class TestScheduling:
    def test_peek_empty_is_infinity(self):
        assert Environment().peek() == Infinity

    def test_peek_returns_next_event_time(self):
        env = Environment()
        env.timeout(42.0)
        assert env.peek() == 42.0

    def test_step_empty_raises(self):
        with pytest.raises(EventLifecycleError):
            Environment().step()

    def test_nan_delay_rejected(self):
        env = Environment()
        with pytest.raises(SchedulingError, match="non-finite"):
            env.timeout(float("nan"))

    def test_infinite_timeout_dispatches_after_all_finite_events(self):
        env = Environment()
        order = []
        env.timeout(float("inf"), value="far").callbacks.append(
            lambda event: order.append(event._value))
        env.timeout(5.0, value="near").callbacks.append(
            lambda event: order.append(event._value))
        env.run()
        assert order == ["near", "far"]
        assert env.now == Infinity

    def test_negative_delay_rejected(self):
        env = Environment()
        event = env.event()
        event._ok = True
        event._value = None
        with pytest.raises(SchedulingError):
            env.schedule(event, delay=-5.0)

    def test_same_time_fifo_among_equal_priority(self):
        env = Environment()
        order = []

        def waiter(env, tag):
            yield env.timeout(10)
            order.append(tag)

        for tag in ("first", "second", "third"):
            env.process(waiter(env, tag))
        env.run()
        assert order == ["first", "second", "third"]

    def test_active_process_tracking(self):
        env = Environment()
        observed = []

        def proc(env):
            observed.append(env.active_process)
            yield env.timeout(1)

        p = env.process(proc(env))
        assert env.active_process is None
        env.run()
        assert observed == [p]
        assert env.active_process is None

    def test_repr_mentions_time(self):
        env = Environment(initial_time=3.0)
        assert "3.0" in repr(env)
